//! Recovery-path reachability: a function-granular call graph rooted at
//! `// analyze:recovery-root` annotations, transitively flagging panic
//! sites (`.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`) in *any* crate reachable from a root.
//!
//! This replaces the lexical `unwrap-recovery` rule's file-prefix
//! scoping, which could not see a panic two calls deep in a helper
//! living outside the scoped files (e.g. in `simcore` or the kernel):
//! the lexical rule stays as a fast pre-gate, and this pass subsumes it
//! wherever a root reaches.
//!
//! ## Call resolution (documented approximation)
//!
//! No type inference happens; edges are resolved by name with these
//! rules, each an over-approximation in the sound direction (more edges,
//! never fewer, except where noted):
//!
//! - `Type::method(..)` — if `Type` is a workspace type (an `impl`
//!   block exists), edge to every `method` in impls of that type;
//!   `Self::method(..)` resolves against the caller's own impl type.
//!   Unknown qualifiers (std, external) contribute no edge.
//! - `module::func(..)` — if the qualifier names a workspace file stem
//!   or inline module, edge to free functions of that name there.
//! - `func(..)` — free call: edges to same-file free functions first,
//!   else every workspace free function of that name.
//! - `.method(..)` — receiver type unknown: edge to *every* workspace
//!   impl method of that name (this is what catches a panic behind a
//!   `dyn` dispatch or a helper method), restricted to crates the
//!   caller's crate can actually depend on (Cargo.toml closure).
//!
//! `#[cfg(test)]` items never join the graph, the `bench` and `analyze`
//! crates are excluded entirely (host-side tooling, not sim code), and
//! a panic site is suppressed by `// analyze:allow(panic-reach): why`
//! on or above its line — `analyze:allow(unwrap-recovery)` is honored
//! too for `.unwrap()`/`.expect(` sites so the two layers share one
//! suppression vocabulary.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::Path;

use crate::ast::{self, TokenKind};

/// One panic site reachable from a recovery root.
#[derive(Clone, Debug)]
pub struct ReachFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the panic site.
    pub line: usize,
    /// What panics there: `unwrap`, `expect`, `panic!`, ...
    pub what: String,
    /// Function containing the site, as `File::fn` display.
    pub in_fn: String,
    /// Shortest root→site call path, ` -> `-joined fn displays.
    pub path: Vec<String>,
}

impl fmt::Display for ReachFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [panic-reach] {} reachable from recovery root via {}",
            self.file,
            self.line,
            self.what,
            self.path.join(" -> ")
        )
    }
}

/// A suppressed site, kept for the report.
#[derive(Clone, Debug)]
pub struct SuppressedSite {
    pub file: String,
    pub line: usize,
    pub what: String,
    pub in_fn: String,
}

/// Reachability pass outcome.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    pub findings: Vec<ReachFinding>,
    pub suppressed: Vec<SuppressedSite>,
    /// Root functions, as `file::fn` displays, sorted.
    pub roots: Vec<String>,
    /// Number of functions reachable from any root (incl. roots).
    pub reachable: usize,
    /// Total functions in the graph.
    pub functions: usize,
}

#[derive(Clone, Debug)]
enum Callee {
    /// `Type::name(` or `Self::name(`.
    Typed(String, String),
    /// `module::name(` where module is a path qualifier.
    Scoped(String, String),
    /// Bare `name(`.
    Free(String),
    /// `.name(`.
    Method(String),
}

#[derive(Clone, Debug)]
struct PanicSite {
    line: usize,
    what: String,
}

struct FnNode {
    /// Workspace-relative file.
    file: String,
    /// Crate directory name (`servers`, `simcore`, ...).
    krate: String,
    name: String,
    impl_type: Option<String>,
    line: usize,
    root: bool,
    calls: Vec<Callee>,
    panics: Vec<PanicSite>,
}

impl FnNode {
    fn display(&self) -> String {
        let stem = self
            .file
            .rsplit('/')
            .next()
            .unwrap_or(&self.file)
            .trim_end_matches(".rs");
        match &self.impl_type {
            Some(t) => format!("{stem}::{t}::{}", self.name),
            None => format!("{stem}::{}", self.name),
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "match", "return", "loop", "in", "as", "move", "await", "unsafe",
    "let", "fn", "break", "continue",
];

/// Extracts call sites and panic sites from a function body.
fn scan_body(tokens: &[ast::Token], body: std::ops::Range<usize>) -> (Vec<Callee>, Vec<PanicSite>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let TokenKind::Ident(name) = &tokens[i].kind else {
            i += 1;
            continue;
        };
        let next = tokens.get(i + 1).map(|t| &t.kind);
        // Macro invocation `name!(..)` / `name![..]` / `name!{..}`.
        if matches!(next, Some(TokenKind::Bang))
            && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokenKind::Open(_)))
        {
            if PANIC_MACROS.contains(&name.as_str()) {
                panics.push(PanicSite {
                    line: tokens[i].line,
                    what: format!("{name}!"),
                });
            }
            i += 1;
            continue;
        }
        // Call `name(` with context from the previous token.
        if matches!(next, Some(TokenKind::Open('('))) {
            let prev = (i > body.start).then(|| &tokens[i - 1].kind);
            let is_method = matches!(prev, Some(TokenKind::Dot));
            if is_method {
                if PANIC_METHODS.contains(&name.as_str()) {
                    panics.push(PanicSite {
                        line: tokens[i].line,
                        what: format!(".{name}()"),
                    });
                } else {
                    calls.push(Callee::Method(name.clone()));
                }
            } else if matches!(prev, Some(TokenKind::PathSep)) {
                if let Some(TokenKind::Ident(q)) =
                    (i >= body.start + 2).then(|| &tokens[i - 2].kind)
                {
                    let starts_upper = q.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                    let callee_lower = name.chars().next().is_some_and(|c| c.is_ascii_lowercase());
                    if callee_lower {
                        if starts_upper || q == "Self" {
                            calls.push(Callee::Typed(q.clone(), name.clone()));
                        } else {
                            calls.push(Callee::Scoped(q.clone(), name.clone()));
                        }
                    }
                    // `Enum::Variant(..)` and `Type::CONST` are not calls.
                }
            } else if name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && !KEYWORDS.contains(&name.as_str())
            {
                calls.push(Callee::Free(name.clone()));
            }
        }
        i += 1;
    }
    (calls, panics)
}

/// Crate-name → dependency closure (crate directory names), parsed from
/// each crate's `Cargo.toml`. A caller may only have edges into crates
/// it (transitively) depends on, which keeps name-based method
/// resolution from inventing edges the compiler would reject.
fn crate_dep_closure(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    // package name -> dir name, and dir name -> direct dep package names
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let mut direct: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return BTreeMap::new();
    };
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in &dirs {
        let Ok(toml) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let dirname = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut in_deps = false;
        let mut deps = Vec::new();
        for line in toml.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]" || t == "[dev-dependencies]";
                continue;
            }
            if let Some(name) = t.strip_prefix("name = ") {
                if !in_deps {
                    pkg_to_dir.insert(name.trim_matches('"').to_string(), dirname.clone());
                }
                continue;
            }
            if in_deps && t.starts_with("phoenix") {
                if let Some(dep) = t.split(['=', ' ']).next() {
                    deps.push(dep.trim().to_string());
                }
            }
        }
        direct.insert(dirname, deps);
    }
    // Transitive closure over directory names.
    let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for dir in direct.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            if !seen.insert(d.clone()) {
                continue;
            }
            for dep_pkg in direct.get(&d).into_iter().flatten() {
                if let Some(dep_dir) = pkg_to_dir.get(dep_pkg) {
                    stack.push(dep_dir.clone());
                }
            }
        }
        closure.insert(dir.clone(), seen);
    }
    closure
}

/// Crates that never join the call graph: host-side tooling whose code
/// neither runs inside the simulator nor is reachable from it.
const EXCLUDED_CRATES: &[&str] = &["analyze", "bench"];

/// One input file for [`analyze`].
pub struct Input {
    /// Workspace-relative path (used in reports).
    pub rel: String,
    /// Crate directory name, for dependency-closure visibility.
    pub krate: String,
    pub source: String,
}

/// Runs the reachability pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Outcome {
    let closure = crate_dep_closure(root);
    let mut files = Vec::new();
    for path in crate::workspace_sources(root) {
        let rel = crate::rel(root, &path);
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        if EXCLUDED_CRATES.contains(&krate.as_str()) {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        files.push(Input { rel, krate, source });
    }
    analyze(&files, &closure)
}

/// Runs the reachability pass over in-memory sources. An empty `closure`
/// entry for a crate means it sees only itself.
pub fn analyze(files: &[Input], closure: &BTreeMap<String, BTreeSet<String>>) -> Outcome {
    // Parse every graph-eligible source file.
    let mut nodes: Vec<FnNode> = Vec::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    let mut file_stem_of: BTreeMap<usize, String> = BTreeMap::new();
    for input in files {
        let rel = input.rel.clone();
        let krate = input.krate.clone();
        let source = input.source.clone();
        let fast = ast::parse_file(&source);
        for f in &fast.fns {
            if f.cfg_test {
                continue;
            }
            let (calls, panics) = scan_body(&fast.tokens, f.body.clone());
            let idx = nodes.len();
            nodes.push(FnNode {
                file: rel.clone(),
                krate: krate.clone(),
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                line: f.line,
                root: f.recovery_root,
                calls,
                panics,
            });
            let stem = rel
                .rsplit('/')
                .next()
                .unwrap_or("")
                .trim_end_matches(".rs")
                .to_string();
            file_stem_of.insert(idx, stem);
        }
        sources.insert(rel, source);
    }

    // Indices for resolution.
    let mut by_type_method: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut by_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut free_by_file_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut free_by_stem_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        match &n.impl_type {
            Some(t) => {
                by_type_method
                    .entry((t.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
                by_method.entry(n.name.clone()).or_default().push(i);
            }
            None => {
                free_by_file_name
                    .entry((n.file.clone(), n.name.clone()))
                    .or_default()
                    .push(i);
                free_by_name.entry(n.name.clone()).or_default().push(i);
                free_by_stem_name
                    .entry((file_stem_of[&i].clone(), n.name.clone()))
                    .or_default()
                    .push(i);
            }
        }
    }

    let visible = |caller: usize, callee: usize| -> bool {
        let ck = &nodes[caller].krate;
        let tk = &nodes[callee].krate;
        ck == tk || closure.get(ck).is_some_and(|deps| deps.contains(tk))
    };

    // Edges, resolved per the documented rules.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for i in 0..nodes.len() {
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for call in &nodes[i].calls {
            match call {
                Callee::Typed(ty, m) => {
                    let ty = if ty == "Self" {
                        nodes[i].impl_type.clone().unwrap_or_default()
                    } else {
                        ty.clone()
                    };
                    if let Some(c) = by_type_method.get(&(ty, m.clone())) {
                        out.extend(c.iter().copied().filter(|&j| visible(i, j)));
                    }
                }
                Callee::Scoped(q, f) => {
                    if let Some(c) = free_by_stem_name.get(&(q.clone(), f.clone())) {
                        out.extend(c.iter().copied().filter(|&j| visible(i, j)));
                    }
                }
                Callee::Free(f) => {
                    match free_by_file_name.get(&(nodes[i].file.clone(), f.clone())) {
                        Some(c) => out.extend(c.iter().copied()),
                        None => {
                            if let Some(c) = free_by_name.get(f) {
                                out.extend(c.iter().copied().filter(|&j| visible(i, j)));
                            }
                        }
                    }
                }
                Callee::Method(m) => {
                    if let Some(c) = by_method.get(m) {
                        out.extend(c.iter().copied().filter(|&j| visible(i, j)));
                    }
                }
            }
        }
        edges[i] = out.into_iter().collect();
    }

    // BFS from roots (in index order, so parent choice — and therefore
    // the reported shortest path — is deterministic).
    let roots: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].root).collect();
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut seen: Vec<bool> = vec![false; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }

    let path_to = |mut i: usize| -> Vec<String> {
        let mut out = vec![nodes[i].display()];
        while let Some(p) = parent[i] {
            out.push(nodes[p].display());
            i = p;
        }
        out.reverse();
        out
    };

    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        for p in &n.panics {
            let src = sources.get(&n.file).map(String::as_str).unwrap_or("");
            let allowed = ast::allowed_at(src, p.line, "panic-reach")
                || (p.what.starts_with('.') && ast::allowed_at(src, p.line, "unwrap-recovery"));
            if allowed {
                suppressed.push(SuppressedSite {
                    file: n.file.clone(),
                    line: p.line,
                    what: p.what.clone(),
                    in_fn: n.display(),
                });
            } else {
                findings.push(ReachFinding {
                    file: n.file.clone(),
                    line: p.line,
                    what: p.what.clone(),
                    in_fn: n.display(),
                    path: path_to(i),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.what).cmp(&(&b.file, b.line, &b.what)));
    suppressed.sort_by(|a, b| (&a.file, a.line, &a.what).cmp(&(&b.file, b.line, &b.what)));

    Outcome {
        findings,
        suppressed,
        roots: roots
            .iter()
            .map(|&r| format!("{}:{}:{}", nodes[r].file, nodes[r].line, nodes[r].name))
            .collect(),
        reachable: seen.iter().filter(|&&s| s).count(),
        functions: nodes.len(),
    }
}
