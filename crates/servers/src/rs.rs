//! The reincarnation server (§5): defect detection and policy-driven
//! recovery.
//!
//! RS is the parent-of-record for every system service: it asks the
//! process manager to execute service binaries, publishes their endpoints
//! in the data store, and then guards them continuously. Defects reach RS
//! through all six §5.1 inputs:
//!
//! 1. process exit or panic — SIGCHLD report from PM;
//! 2. killed by CPU/MMU exception — SIGCHLD report from PM;
//! 3. killed by user — SIGCHLD report, or an explicit `service restart`;
//! 4. heartbeat missing N consecutive times — RS's own periodic pings;
//! 5. complaint by an authorized component — `rs::COMPLAIN`;
//! 6. dynamic update — `rs::UPDATE` (SIGTERM, escalating to SIGKILL).
//!
//! On a defect RS runs the component's policy script (§5.2) and carries
//! out its decision: restart after (possibly exponential-backoff) delay,
//! restart dependent components, raise alerts, give up, or request a
//! whole-system reboot. After a restart RS publishes the *new* endpoint in
//! the data store before dependents learn about it (§5.3).
//!
//! # Hardening against a hostile IPC fabric
//!
//! The recovery machinery itself must survive lost, delayed, duplicated and
//! corrupted messages, and crashes *during* recovery:
//!
//! * **Start-call timeouts** — a PM_START whose reply never arrives is
//!   retried; a late reply to an abandoned attempt reveals a *ghost*
//!   incarnation, which RS has PM kill.
//! * **Early-death reconciliation** — a SIGCHLD for an endpoint RS has not
//!   yet bound to a service is remembered; if a later START_REPLY names that
//!   endpoint, the fresh incarnation died mid-recovery and recovery re-runs.
//! * **Kill-reply reconciliation** — PM answering `NO_PROCESS` to an RS
//!   kill while RS still thinks the service is up means the exit report was
//!   lost; the defect is synthesized on the spot.
//! * **Liveness audit** — a periodic sweep asks the kernel whether each
//!   supposedly-up endpoint is still alive, catching any remaining lost
//!   exit notifications.
//! * **Verified publish** — DS publishes are acknowledged; a missing or
//!   failed acknowledgement triggers bounded re-publish with an alert when
//!   the budget is exhausted.
//! * **Restart budgets + storm escalation** — each service has a sliding-
//!   window restart budget; exceeding it escalates restart → restart with
//!   dependents → alert with extended cool-down → give up, instead of
//!   flapping forever. Restart delays carry deterministic jitter so herds
//!   of failing services do not thunder back in lock-step.
//!
//! # Self-tuning policies and hot standby
//!
//! Two closed-loop extensions sit on top of the static machinery:
//!
//! * **Adapt controllers** — a policy script's `adapt` rules bind live
//!   [`PolicyParams`] entries (heartbeat period, backoff base/cap,
//!   restart budget and window, complaint quorum) to deterministic
//!   bang-bang controllers driven by observed failure rate, complaint
//!   rate, or repair-MTTR percentiles. Every step is clamped to the
//!   rule's declared band and surfaced as an `rs.adapt.*` gauge.
//! * **Hot-standby failover** — a service marked `hot_standby` gets a
//!   warm spare incarnation (`standby.<program>`) that continuously
//!   tails the primary's checkpoint record in DS. At defect time RS
//!   *promotes* the spare — re-frames the checkpoint record for the new
//!   incarnation, tells the spare to go live, publishes — instead of
//!   paying fork+exec+restore, collapsing the repair phase to a publish
//!   round-trip.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use phoenix_ckpt::proto::{ckpt, ckpt_status};
use phoenix_drivers::proto::drv;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, ExitReason, Message, Signal};
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::policy::{
    reason, AdaptParam, AdaptSignal, PolicyDecision, PolicyInput, PolicyParams, PolicyScript,
};
use crate::proto::{ds, evidence, pm, rs as rsp, unpack_endpoint};

/// Configuration of one guarded service, as passed to the `service`
/// utility in MINIX (§5: "the driver's binary, a stable name, the process'
/// precise privileges, a heartbeat period, and, optionally, a parametrized
/// policy script").
///
/// Privileges live in the kernel's program registry (bound to the binary),
/// so they are not repeated here.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Program name in the kernel registry; doubles as the stable name.
    pub program: String,
    /// Key published in the data store (e.g. `eth.rtl8139`, `blk.sata`).
    pub publish_key: String,
    /// Heartbeat period; `None` disables heartbeats for this service.
    pub heartbeat_period: Option<SimDuration>,
    /// Consecutive missed heartbeats before recovery is initiated
    /// ("failing to respond N consecutive times", §5.1).
    pub heartbeat_misses: u32,
    /// Recovery policy; `None` means a direct restart with no script
    /// (like disk drivers, whose script could not be read from the dead
    /// disk, §6.2).
    pub policy: Option<PolicyScript>,
    /// Parameters passed to the policy script (`$1`, ...).
    pub policy_params: Vec<String>,
    /// Maximum restarts within [`ServiceConfig::budget_window`] before the
    /// storm-escalation ladder engages.
    pub restart_budget: u32,
    /// Sliding window over which restarts are counted.
    pub budget_window: SimDuration,
    /// Components restarted alongside this one when the recursive ladder
    /// escalates to a dependency-group reboot, or when a restart storm
    /// escalates to restart-with-dependents.
    pub deps: Vec<String>,
    /// Server-class component (VFS, MFS, INET, ...): crash-only with
    /// externalized session state. Server-class services get the recursive
    /// escalation ladder (microreboot first, dependency-group reboot on
    /// recurrence), are audited for progress stalls even without
    /// heartbeats, and may be accused by any live caller, not only the
    /// configured complainants.
    pub server: bool,
    /// Keep a warm spare incarnation (`standby.<program>`) continuously
    /// tailing this service's checkpoint record, and promote it at defect
    /// time instead of cold-restarting. Requires a `standby.<program>`
    /// entry in the kernel program registry; RS disables the flag at run
    /// time if PM reports none.
    pub hot_standby: bool,
}

impl ServiceConfig {
    /// A driver config with the generic Fig. 2 policy and the baseline
    /// heartbeat/budget parameters from [`PolicyParams::BASELINE`].
    pub fn driver(program: &str, publish_key: &str) -> Self {
        let base = PolicyParams::BASELINE;
        ServiceConfig {
            program: program.to_string(),
            publish_key: publish_key.to_string(),
            heartbeat_period: Some(base.heartbeat_period),
            heartbeat_misses: base.heartbeat_misses,
            policy: Some(PolicyScript::generic()),
            policy_params: Vec::new(),
            restart_budget: base.restart_budget,
            budget_window: base.budget_window,
            deps: Vec::new(),
            server: false,
            hot_standby: false,
        }
    }

    /// A crash-only system-server config: no heartbeats (servers
    /// legitimately block on their drivers), direct-restart policy, and
    /// the recursive microreboot ladder enabled.
    pub fn server(program: &str, publish_key: &str) -> Self {
        let base = PolicyParams::BASELINE;
        ServiceConfig {
            program: program.to_string(),
            publish_key: publish_key.to_string(),
            heartbeat_period: None,
            heartbeat_misses: base.heartbeat_misses,
            policy: Some(PolicyScript::direct_restart()),
            policy_params: Vec::new(),
            restart_budget: base.restart_budget,
            budget_window: base.budget_window,
            deps: Vec::new(),
            server: true,
            hot_standby: false,
        }
    }

    /// Replaces the policy script (builder style).
    pub fn with_policy(mut self, policy: PolicyScript) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Disables the policy script: direct restart (§6.2 disk drivers).
    pub fn without_policy(mut self) -> Self {
        self.policy = None;
        self
    }

    /// Sets the policy parameters (builder style).
    pub fn with_params(mut self, params: Vec<String>) -> Self {
        self.policy_params = params;
        self
    }

    /// Sets the heartbeat period (builder style).
    pub fn with_heartbeat(mut self, period: SimDuration, misses: u32) -> Self {
        self.heartbeat_period = Some(period);
        self.heartbeat_misses = misses;
        self
    }

    /// Disables heartbeats (builder style).
    pub fn without_heartbeat(mut self) -> Self {
        self.heartbeat_period = None;
        self
    }

    /// Sets the restart budget: at most `budget` restarts per `window`
    /// before storm escalation (builder style).
    pub fn with_budget(mut self, budget: u32, window: SimDuration) -> Self {
        self.restart_budget = budget;
        self.budget_window = window;
        self
    }

    /// Sets the components restarted with this one when a storm escalates
    /// (builder style).
    pub fn with_deps(mut self, deps: Vec<String>) -> Self {
        self.deps = deps;
        self
    }

    /// Enables hot-standby failover (builder style): RS keeps a warm
    /// spare tailing the checkpoint record and promotes it at defect
    /// time instead of cold-restarting.
    pub fn with_hot_standby(mut self) -> Self {
        self.hot_standby = true;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SvcState {
    /// Not running, no restart scheduled.
    Down,
    /// PM_START in flight.
    Starting,
    /// Running and guarded.
    Up,
    /// Dead; restart alarm armed.
    WaitRestart,
    /// Policy gave up (or administrative down); no automatic recovery.
    GivenUp,
}

/// An unacknowledged DS publish being verified.
#[derive(Debug, Clone, Copy)]
struct PendingPublish {
    ep: Endpoint,
    attempts: u32,
}

struct Service {
    cfg: ServiceConfig,
    state: SvcState,
    endpoint: Option<Endpoint>,
    /// Failure count fed to the policy as `repetition`.
    failures: u32,
    /// Defect class RS already knows (set before RS-initiated kills).
    pending_reason: Option<u8>,
    /// Program version to use for the next start (None = latest).
    next_version: Option<u32>,
    hb_nonce: u64,
    hb_outstanding: u32,
    /// Heartbeat chain epoch; stale chains from before a restart carry an
    /// old epoch and are ignored.
    hb_epoch: u16,
    died_at: Option<SimTime>,
    admin_down: bool,
    /// The PM_START call currently awaited, with its attempt number.
    current_start: Option<(CallId, u16)>,
    start_attempt: u16,
    /// Restart timestamps inside the sliding budget window.
    restart_times: VecDeque<SimTime>,
    /// Storm-escalation ladder position (0 = calm).
    storm_level: u32,
    pending_publish: Option<PendingPublish>,
    /// Correlation token of the recovery episode in flight (minted at
    /// defect detection, overwritten by the next defect). Carried on every
    /// RS trace event of the episode and threaded to DS on publish.
    recovery: Option<RecoveryId>,
    /// Root span of the episode (the defect event); RS events and the DS
    /// publish parent-link to it.
    span: Option<SpanId>,
    /// The warm spare incarnation tailing this service's checkpoint
    /// record, if hot standby is on and the spare is up.
    spare: Option<Endpoint>,
    /// A spare PM_START is in flight.
    spare_pending: bool,
}

/// Minimum time between a service's death and its restarted incarnation
/// (fork + exec + image load).
const EXEC_LATENCY: SimDuration = SimDuration::from_millis(10);

/// How long RS waits for a PM_START reply before assuming the request or
/// its reply was lost and retrying.
const START_TIMEOUT: SimDuration = SimDuration::from_millis(50);

/// How long RS waits for a DS publish acknowledgement before re-publishing.
const PUBLISH_TIMEOUT: SimDuration = SimDuration::from_millis(10);

/// Re-publish attempts before RS raises an alert and stops trying.
const MAX_PUBLISH_RETRIES: u32 = 3;

/// Period of the liveness audit that catches lost exit notifications.
/// Deliberately off-cycle from the 1 s heartbeat default.
const AUDIT_PERIOD: SimDuration = SimDuration::from_millis(750);

/// Sliding window over which the adapt controllers count failures and
/// complaints. Wider than the complaint window so slow-burn flapping is
/// visible; narrower than the budget window so controllers react before
/// the storm ladder fires.
const ADAPT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Most recent repair-MTTR samples kept for the `mttr_p95` adapt signal.
const ADAPT_MTTR_SAMPLES: usize = 32;

/// How often a warm spare polls DS for the primary's latest checkpoint
/// frame (the WAL-tail period passed in `drv::STANDBY`).
const SPARE_TAIL_PERIOD: SimDuration = SimDuration::from_millis(100);

/// Age beyond which an open request against a heartbeat-guarded driver
/// counts as a progress stall. Deliberately longer than the servers' own
/// 5 s driver deadlines, so the kernel watchdog is the second line, not
/// the first.
const STALL_AGE: SimDuration = SimDuration::from_secs(8);

// Alarm token layout: kind in the high 32 bits, a 16-bit sequence/epoch in
// bits 16..32, service index in the low 16 bits.
const TOK_HB: u64 = 1;
const TOK_RESTART: u64 = 2;
const TOK_ESCALATE: u64 = 3;
const TOK_START_TIMEOUT: u64 = 4;
const TOK_REPUBLISH: u64 = 5;
const TOK_AUDIT: u64 = 6;
const TOK_PM_RESTART: u64 = 7;
const TOK_SPARE: u64 = 8;

fn token(kind: u64, idx: usize) -> u64 {
    (kind << 32) | idx as u64
}

fn token_seq(kind: u64, seq: u16, idx: usize) -> u64 {
    (kind << 32) | (u64::from(seq) << 16) | idx as u64
}

/// Most unmatched dead endpoints remembered for early-death reconciliation.
const EARLY_DEATHS_CAP: usize = 64;

/// The reincarnation server.
pub struct ReincarnationServer {
    pm: Endpoint,
    ds: Endpoint,
    services: Vec<Service>,
    by_name: BTreeMap<String, usize>,
    /// Service names authorized to file complaints (trusted servers with
    /// `may_complain`).
    complainants: Vec<String>,
    /// In-flight PM_START calls.
    start_calls: BTreeMap<CallId, usize>,
    /// PM_START calls RS timed out on; a late success reply reveals a
    /// ghost incarnation that must be killed.
    orphan_calls: BTreeMap<CallId, usize>,
    /// In-flight PM_KILL calls, for NO_PROCESS reconciliation.
    kill_calls: BTreeMap<CallId, usize>,
    /// In-flight DS publish calls.
    publish_calls: BTreeMap<CallId, usize>,
    /// Dead endpoints from SIGCHLD reports that matched no service (yet).
    early_deaths: VecDeque<Endpoint>,
    /// Deterministic jitter source, forked from the run seed at Start.
    jitter: Option<SimRng>,
    started_boot: bool,
    /// Monotonic source of recovery correlation tokens (ids start at 1;
    /// 0 is the wire encoding of "none").
    next_recovery: u64,
    /// Low-confidence complaint ledger, per accused service: (accuser
    /// stable name, evidence kind, filing time). Pruned to the live
    /// complaint window; cleared when the accused is killed.
    complaint_ledger: BTreeMap<usize, VecDeque<(String, u32, SimTime)>>,
    /// Recent accusation targets per accuser, for the accused-vs-accuser
    /// inversion. Keyed on the accuser's *stable published name* (falling
    /// back to the endpoint rendering for unguarded callers), so a server
    /// that restarts under a new incarnation keeps its accusation history
    /// and the map does not leak one entry per dead incarnation.
    accuser_history: BTreeMap<String, VecDeque<(usize, SimTime)>>,
    /// Whether the audit sweep also polls the kernel babble/progress
    /// guards for heartbeat-guarded services.
    kernel_guards: bool,
    /// Whether complaints can trigger restarts. With arbitration
    /// disarmed, complaints are vetted and counted but never acted on —
    /// the crash-only baseline arm of the fail-silent campaign.
    arbitration: bool,
    /// Program name RS respawns PM under when guarding it (`None`
    /// disables PM guarding). PM is outside the service table — it is the
    /// trusted process *executor* — so its recovery is recursive: RS uses
    /// its own spawn/kill privileges instead of asking PM to act on
    /// itself.
    pm_program: Option<String>,
    /// A PM respawn alarm is armed; suppresses duplicate defect handling
    /// from the audit sweep while the replacement incarnation boots.
    pm_restarting: bool,
    /// When the current PM defect was detected (MTTR accounting).
    pm_died_at: Option<SimTime>,
    /// Correlation token / root span of the PM recovery episode in
    /// flight, so `fold_timeline` attributes the episode like any other.
    pm_recovery: Option<RecoveryId>,
    pm_span: Option<SpanId>,
    /// Liveness pings to PM the pong for which has not come back yet. A
    /// wedged PM with no START/KILL in flight leaves no stalled request
    /// to audit, so RS pings it like a driver heartbeat.
    pm_pong_outstanding: u32,
    /// When the most recent service recovery completed. Client requests
    /// legitimately age while a dependency is being reincarnated, so the
    /// progress watchdog gives server-class components a full stall
    /// window of grace after any recovery before convicting them.
    last_recovery_done: Option<SimTime>,
    /// The live policy-parameter table. Starts at
    /// [`PolicyParams::BASELINE`]; the adapt controllers write through it
    /// and every window/quorum/backoff read goes through it.
    params: PolicyParams,
    /// Admin-editable adapt script: its `adapt` rules are stepped once
    /// per audit sweep against the observed signal windows. `None` keeps
    /// every parameter static.
    adapt_script: Option<PolicyScript>,
    /// Defect detection times inside [`ADAPT_WINDOW`] (failure-rate
    /// signal).
    adapt_defects: VecDeque<SimTime>,
    /// Complaint filing times inside [`ADAPT_WINDOW`] (complaint-rate
    /// signal).
    adapt_complaints: VecDeque<SimTime>,
    /// Most recent repair-MTTR samples in microseconds, capped at
    /// [`ADAPT_MTTR_SAMPLES`] (p95 signal).
    adapt_mttr: VecDeque<u64>,
    /// In-flight PM_START calls for warm spares.
    spare_start_calls: BTreeMap<CallId, usize>,
    /// Outstanding `ckpt::PROMOTE` re-framing calls to DS, by service.
    promote_calls: BTreeMap<CallId, usize>,
}

impl ReincarnationServer {
    /// Creates RS, wired to PM and DS, guarding `services`.
    pub fn new(
        pm: Endpoint,
        ds: Endpoint,
        services: Vec<ServiceConfig>,
        complainants: Vec<String>,
    ) -> Self {
        let mut by_name = BTreeMap::new();
        let services: Vec<Service> = services
            .into_iter()
            .map(|cfg| Service {
                cfg,
                state: SvcState::Down,
                endpoint: None,
                failures: 0,
                pending_reason: None,
                next_version: None,
                hb_nonce: 0,
                hb_outstanding: 0,
                hb_epoch: 0,
                died_at: None,
                admin_down: false,
                current_start: None,
                start_attempt: 0,
                restart_times: VecDeque::new(),
                storm_level: 0,
                pending_publish: None,
                recovery: None,
                span: None,
                spare: None,
                spare_pending: false,
            })
            .collect();
        for (i, s) in services.iter().enumerate() {
            by_name.insert(s.cfg.program.clone(), i);
        }
        ReincarnationServer {
            pm,
            ds,
            services,
            by_name,
            complainants,
            start_calls: BTreeMap::new(),
            orphan_calls: BTreeMap::new(),
            kill_calls: BTreeMap::new(),
            publish_calls: BTreeMap::new(),
            early_deaths: VecDeque::new(),
            jitter: None,
            started_boot: false,
            next_recovery: 0,
            complaint_ledger: BTreeMap::new(),
            accuser_history: BTreeMap::new(),
            kernel_guards: true,
            arbitration: true,
            pm_program: None,
            pm_restarting: false,
            pm_died_at: None,
            pm_recovery: None,
            pm_span: None,
            pm_pong_outstanding: 0,
            last_recovery_done: None,
            params: PolicyParams::BASELINE,
            adapt_script: None,
            adapt_defects: VecDeque::new(),
            adapt_complaints: VecDeque::new(),
            adapt_mttr: VecDeque::new(),
            spare_start_calls: BTreeMap::new(),
            promote_calls: BTreeMap::new(),
        }
    }

    /// Installs the adapt script (builder style): its `adapt` rules are
    /// stepped once per audit sweep, writing through the live
    /// [`PolicyParams`] table within their declared clamp bands.
    pub fn with_adapt(mut self, script: PolicyScript) -> Self {
        self.adapt_script = Some(script);
        self
    }

    /// Enables recursive PM guarding (builder style): RS audits the
    /// process manager itself, vets its replies, and — holding per-
    /// instance spawn/kill privileges — respawns it under `program`,
    /// re-registers as exit-report sink, and re-publishes the `pm` name
    /// so the new incarnation can rehydrate its checkpointed records.
    pub fn with_pm_guard(mut self, program: &str) -> Self {
        self.pm_program = Some(program.to_string());
        self
    }

    /// Enables or disables audit-sweep polling of the kernel babble and
    /// progress guards (builder style).
    pub fn with_kernel_guards(mut self, on: bool) -> Self {
        self.kernel_guards = on;
        self
    }

    /// Enables or disables acting on complaints (builder style). Disarmed
    /// arbitration still vets and counts complaints, so the evidence
    /// stream stays observable in the crash-only baseline.
    pub fn with_arbitration(mut self, on: bool) -> Self {
        self.arbitration = on;
        self
    }

    fn start_service(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let svc = &mut self.services[idx];
        if matches!(svc.state, SvcState::Starting | SvcState::Up) {
            return;
        }
        let version = svc.next_version.take().map_or(0, u64::from);
        let msg = Message::new(pm::START)
            .with_param(0, version)
            .with_data(svc.cfg.program.clone().into_bytes());
        match ctx.sendrec(self.pm, msg) {
            Ok(call) => {
                let svc = &mut self.services[idx];
                svc.state = SvcState::Starting;
                svc.start_attempt = svc.start_attempt.wrapping_add(1);
                svc.current_start = Some((call, svc.start_attempt));
                let attempt = svc.start_attempt;
                let exec_ev = ctx
                    .event(
                        TraceLevel::Info,
                        format!("exec {} (attempt {attempt})", svc.cfg.program),
                    )
                    .with_field("ev", "exec")
                    .with_field("service", svc.cfg.program.as_str())
                    .with_field("attempt", u64::from(attempt))
                    .in_recovery_opt(svc.recovery)
                    .with_parent_opt(svc.span);
                ctx.trace_event(exec_ev);
                self.start_calls.insert(call, idx);
                // If neither the request nor its reply survives the fabric,
                // this alarm notices and retries.
                let _ = ctx.set_alarm(START_TIMEOUT, token_seq(TOK_START_TIMEOUT, attempt, idx));
            }
            Err(e) => {
                let name = self.services[idx].cfg.program.clone();
                if self.pm_program.is_some() {
                    // PM itself is down. Re-arm the start and recover PM
                    // recursively rather than abandoning the service.
                    self.services[idx].state = SvcState::WaitRestart;
                    ctx.trace(
                        TraceLevel::Warn,
                        format!("cannot reach PM to start {name}: {e}; will retry"),
                    );
                    let _ = ctx.set_alarm(EXEC_LATENCY.saturating_mul(4), token(TOK_RESTART, idx));
                    if !ctx.proc_alive(self.pm) {
                        self.recover_pm(ctx, reason::EXIT, true);
                    }
                } else {
                    self.services[idx].state = SvcState::GivenUp;
                    ctx.trace(
                        TraceLevel::Error,
                        format!("cannot reach PM to start {name}: {e}"),
                    );
                }
            }
        }
    }

    fn kill_service(&mut self, ctx: &mut Ctx<'_>, idx: usize, term: bool) {
        let Some(ep) = self.services[idx].endpoint else {
            return;
        };
        // The incarnation under accusation is going away; its successor
        // starts with a clean complaint record.
        self.complaint_ledger.remove(&idx);
        let msg = Message::new(pm::KILL)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_param(2, u64::from(!term));
        if let Ok(call) = ctx.sendrec(self.pm, msg) {
            self.kill_calls.insert(call, idx);
        }
    }

    /// Kills a ghost incarnation discovered through a late START reply.
    /// No reconciliation: if this kill is lost too, the ghost is unknown to
    /// every naming path and eventually exits on its own.
    fn kill_ghost(&mut self, ctx: &mut Ctx<'_>, ep: Endpoint) {
        ctx.metrics().incr("rs.ghost_kills");
        ctx.trace(
            TraceLevel::Warn,
            format!("killing ghost incarnation {ep} from an abandoned start"),
        );
        let msg = Message::new(pm::KILL)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_param(2, 1);
        let _ = ctx.sendrec(self.pm, msg);
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>, idx: usize, ep: Endpoint) {
        let svc = &mut self.services[idx];
        let attempts = match &svc.pending_publish {
            Some(pp) if pp.ep == ep => pp.attempts,
            _ => 0,
        };
        svc.pending_publish = Some(PendingPublish { ep, attempts });
        let key = svc.cfg.publish_key.clone();
        // The correlation token and root span ride in spare parameters so
        // DS — and, through DS's update notifications, every dependent —
        // can tag its own reintegration events with the same episode id.
        let rid_wire = svc.recovery.map_or(0, RecoveryId::as_u64);
        let span_wire = svc.span.map_or(0, SpanId::as_u64);
        let msg = Message::new(ds::PUBLISH)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_param(2, rid_wire)
            .with_param(3, span_wire)
            .with_data(key.into_bytes());
        if let Ok(call) = ctx.sendrec(self.ds, msg) {
            self.publish_calls.insert(call, idx);
        }
        // Verify the acknowledgement arrives; re-publish if it does not.
        let seq = attempts as u16;
        let _ = ctx.set_alarm(PUBLISH_TIMEOUT, token_seq(TOK_REPUBLISH, seq, idx));
    }

    /// Applies deterministic jitter (multiplier in [1.0, 1.25)) to a
    /// restart delay so synchronized failures do not restart in lock-step.
    fn jittered(&mut self, delay: SimDuration) -> SimDuration {
        let Some(rng) = self.jitter.as_mut() else {
            return delay;
        };
        let millis_per_mille = rng.range_u64(0..250);
        SimDuration::from_micros(delay.as_micros() + delay.as_micros() * millis_per_mille / 1000)
    }

    /// The live value of `p` when an adapt controller drives it, `None`
    /// when it is statically configured. A parameter counts as
    /// controller-driven only if the installed script has a rule binding
    /// it — otherwise per-service config keeps full authority.
    fn adapted(&self, p: AdaptParam) -> Option<u64> {
        let script = self.adapt_script.as_ref()?;
        script
            .adapt_rules()
            .iter()
            .any(|r| r.param == p)
            .then(|| p.read(&self.params))
    }

    /// Heartbeat period for service `idx`: the adapt-controller value
    /// when one drives it, the service config otherwise. `None` keeps
    /// heartbeats off for services configured without them.
    fn effective_heartbeat(&self, idx: usize) -> Option<SimDuration> {
        self.services[idx].cfg.heartbeat_period.map(|p| {
            self.adapted(AdaptParam::HeartbeatPeriod)
                .map(SimDuration::from_micros)
                .unwrap_or(p)
        })
    }

    /// Feeds one repair-MTTR sample to the adapt signal window.
    fn note_mttr(&mut self, dt: SimDuration) {
        if self.adapt_script.is_none() {
            return;
        }
        if self.adapt_mttr.len() >= ADAPT_MTTR_SAMPLES {
            self.adapt_mttr.pop_front();
        }
        self.adapt_mttr.push_back(dt.as_micros());
    }

    // [recovery:begin]
    /// Common defect entry point: classify, check the restart budget, run
    /// the policy, act (§5.2).
    fn handle_defect(&mut self, ctx: &mut Ctx<'_>, idx: usize, defect: u8) {
        let now = ctx.now();
        let svc = &mut self.services[idx];
        svc.state = SvcState::Down;
        svc.endpoint = None;
        svc.hb_outstanding = 0;
        svc.pending_publish = None;
        svc.died_at = Some(now);
        if svc.admin_down {
            svc.admin_down = false;
            ctx.trace(
                TraceLevel::Info,
                format!("service {} administratively down", svc.cfg.program),
            );
            return;
        }
        if defect != reason::UPDATE {
            svc.failures += 1;
        }
        let name = svc.cfg.program.clone();
        // Mint the episode's correlation token and root span here, at
        // detection: every event of this recovery chain — RS's own, the
        // data store's publish, and each dependent's reintegration — will
        // carry this id, letting the timeline analyzer reassemble the
        // episode and time its phases.
        self.next_recovery += 1;
        let rid = RecoveryId(self.next_recovery);
        let root = ctx.new_span();
        self.services[idx].recovery = Some(rid);
        self.services[idx].span = Some(root);
        ctx.metrics()
            .incr(&format!("rs.defect.{}", reason::name(defect)));
        let defect_ev = ctx
            .event(
                TraceLevel::Warn,
                format!(
                    "defect in {name}: {} (failure #{})",
                    reason::name(defect),
                    self.services[idx].failures
                ),
            )
            .with_field("ev", "defect")
            .with_field("service", name.as_str())
            .with_field("class", reason::name(defect))
            .with_field("failures", u64::from(self.services[idx].failures))
            .in_recovery(rid)
            .with_span(root);
        ctx.trace_event(defect_ev);
        // Observed-failure signal for the adapt controllers.
        if self.adapt_script.is_some() && defect != reason::UPDATE && defect != reason::KILLED {
            self.adapt_defects.push_back(now);
        }
        // Restart-budget bookkeeping over a sliding window. A long quiet
        // period de-escalates the storm ladder. User-initiated defects
        // (kill, update) are administrative actions, not crash loops, and
        // never count against the budget. The budget and its window come
        // from the adapt controllers when a rule drives them, from the
        // per-service config otherwise.
        let budget_window = self
            .adapted(AdaptParam::BudgetWindow)
            .map(SimDuration::from_micros)
            .unwrap_or(self.services[idx].cfg.budget_window);
        let restart_budget = self
            .adapted(AdaptParam::RestartBudget)
            .map(|v| v as u32)
            .unwrap_or(self.services[idx].cfg.restart_budget);
        let mut storm_level = 0;
        if defect != reason::UPDATE && defect != reason::KILLED {
            let svc = &mut self.services[idx];
            let window_start = if now.as_micros() > budget_window.as_micros() {
                SimTime::from_micros(now.as_micros() - budget_window.as_micros())
            } else {
                SimTime::ZERO
            };
            while svc.restart_times.front().is_some_and(|&t| t < window_start) {
                svc.restart_times.pop_front();
            }
            if svc.restart_times.is_empty() {
                svc.storm_level = 0;
            }
            svc.restart_times.push_back(now);
            if svc.restart_times.len() as u32 > restart_budget {
                svc.storm_level += 1;
                storm_level = svc.storm_level;
                ctx.metrics().incr("rs.storms");
                ctx.metrics().incr("rs.alerts");
                let storm_ev = ctx
                    .event(
                        TraceLevel::Error,
                        format!(
                            "ALERT: restart storm in {name}: {} restarts inside {} (level {})",
                            self.services[idx].restart_times.len(),
                            budget_window,
                            storm_level,
                        ),
                    )
                    .with_field("ev", "escalate")
                    .with_field("service", name.as_str())
                    .with_field("level", u64::from(storm_level))
                    .in_recovery(rid)
                    .with_parent(root);
                ctx.trace_event(storm_ev);
            }
        }
        // Recursive escalation ladder for server-class components: reboot
        // the smallest suspect first. The first defect inside the budget
        // window is a single-server microreboot (level 1); a recurrence
        // escalates to a dependency-group reboot — the server plus its
        // dependent components, in case shared protocol state is what is
        // poisoned (level 2); a full restart storm falls through to the
        // storm ladder's cool-down and give-up (level 3).
        if self.services[idx].cfg.server && defect != reason::UPDATE && defect != reason::KILLED {
            let recurrences = self.services[idx].restart_times.len();
            if storm_level > 0 {
                ctx.metrics().incr("rs.escalations.level3");
            } else if recurrences >= 2 {
                ctx.metrics().incr("rs.escalations.level2");
                // The group reboot fires once per window: later
                // recurrences stay single-server until the storm ladder
                // takes over, so a flapping server cannot amplify into a
                // permanent dependency-restart loop.
                if recurrences == 2 {
                    let group_ev = ctx
                        .event(
                            TraceLevel::Warn,
                            format!(
                                "defect in {name} recurred inside {budget_window}; \
                                 escalating to dependency-group reboot"
                            ),
                        )
                        .with_field("ev", "escalate")
                        .with_field("service", name.as_str())
                        .with_field("level", 2u64)
                        .in_recovery(rid)
                        .with_parent(root);
                    ctx.trace_event(group_ev);
                    for dep in self.services[idx].cfg.deps.clone() {
                        if let Some(&dep_idx) = self.by_name.get(&dep) {
                            if self.services[dep_idx].state == SvcState::Up {
                                ctx.trace(
                                    TraceLevel::Warn,
                                    format!("group reboot: restarting dependent {dep}"),
                                );
                                self.services[dep_idx].pending_reason = Some(reason::KILLED);
                                self.kill_service(ctx, dep_idx, false);
                            }
                        }
                    }
                }
            } else {
                ctx.metrics().incr("rs.escalations.level1");
            }
        }
        if storm_level >= 3 {
            // The ladder is exhausted: restarting, restarting with
            // dependents and cooling down all failed to calm the service.
            self.services[idx].state = SvcState::GivenUp;
            ctx.metrics().incr("rs.gave_up");
            let give_ev = ctx
                .event(
                    TraceLevel::Error,
                    format!("giving up on {name} after sustained restart storm"),
                )
                .with_field("ev", "gave-up")
                .with_field("service", name.as_str())
                .in_recovery(rid)
                .with_parent(root);
            ctx.trace_event(give_ev);
            self.retire_spare(ctx, idx);
            return;
        }
        if storm_level == 1 {
            // First escalation: the service alone keeps failing — restart
            // it together with its dependents in case shared state between
            // them is what is poisoned.
            for dep in self.services[idx].cfg.deps.clone() {
                if let Some(&dep_idx) = self.by_name.get(&dep) {
                    if self.services[dep_idx].state == SvcState::Up {
                        ctx.trace(
                            TraceLevel::Warn,
                            format!("storm escalation: restarting dependent {dep}"),
                        );
                        self.services[dep_idx].pending_reason = Some(reason::KILLED);
                        self.kill_service(ctx, dep_idx, false);
                    }
                }
            }
        }
        // Execute the policy script associated with the component. No
        // script (disk drivers) means a direct restart from the copy in
        // RAM (§6.2).
        let svc = &self.services[idx];
        let input = PolicyInput {
            component: name.clone(),
            reason: defect,
            repetition: svc.failures.max(1),
            params: svc.cfg.policy_params.clone(),
            backoff_base: self
                .adapted(AdaptParam::BackoffBase)
                .map(SimDuration::from_micros),
            backoff_cap: self.adapted(AdaptParam::BackoffCap).map(|v| v as u32),
        };
        let decision = match &svc.cfg.policy {
            Some(script) => script.run(&input),
            None => PolicyDecision {
                restart: true,
                ..PolicyDecision::default()
            },
        };
        for alert in &decision.alerts {
            ctx.metrics().incr("rs.alerts");
            ctx.trace(TraceLevel::Warn, format!("ALERT: {alert}"));
        }
        for line in &decision.logs {
            ctx.trace(TraceLevel::Info, format!("policy log: {line}"));
        }
        for dep in decision.restart_components.clone() {
            if let Some(&dep_idx) = self.by_name.get(&dep) {
                if self.services[dep_idx].state == SvcState::Up {
                    self.services[dep_idx].pending_reason = Some(reason::KILLED);
                    self.kill_service(ctx, dep_idx, false);
                }
            }
        }
        if decision.reboot {
            ctx.metrics().incr("rs.reboot_requested");
            ctx.trace(
                TraceLevel::Error,
                "policy requested system reboot".to_string(),
            );
        }
        if decision.gave_up || !decision.restart {
            self.services[idx].state = SvcState::GivenUp;
            ctx.metrics().incr("rs.gave_up");
            let give_ev = ctx
                .event(TraceLevel::Error, format!("giving up on {name}"))
                .with_field("ev", "gave-up")
                .with_field("service", name.as_str())
                .in_recovery(rid)
                .with_parent(root);
            ctx.trace_event(give_ev);
            self.retire_spare(ctx, idx);
            return;
        }
        self.services[idx].next_version = decision.version;
        // Hot-standby failover: when a warm spare is live, promote it
        // instead of cold-restarting — the repair phase collapses from
        // fork+exec+restore+replay to a publish round-trip. Updates and
        // version-pinned restarts must load a different binary, so they
        // always cold-restart and retire the now-stale spare.
        if defect == reason::UPDATE || self.services[idx].next_version.is_some() {
            self.retire_spare(ctx, idx);
        } else if let Some(spare) = self.services[idx].spare.take() {
            if ctx.proc_alive(spare) {
                self.promote_spare(ctx, idx, spare);
                return;
            }
            // The spare died alongside the primary (correlated fault):
            // fall through to a cold restart; the audit sweep refills
            // the spare slot once the service is back up.
            ctx.metrics().incr("rs.standby.spare_dead_at_promotion");
        }
        // Even a "direct" restart pays the fork+exec+image-load cost; this
        // also keeps a component that dies at initialization from turning
        // into an unthrottled crash loop. Storm level 2 adds an extended
        // cool-down on top of whatever the policy decided.
        let mut delay = decision.delay.max(EXEC_LATENCY);
        if storm_level == 2 {
            delay = delay.saturating_mul(16);
            let cool_ev = ctx
                .event(
                    TraceLevel::Warn,
                    format!("storm escalation: extended cool-down of {delay} for {name}"),
                )
                .with_field("ev", "escalate")
                .with_field("service", name.as_str())
                .with_field("level", 2u64)
                .in_recovery(rid)
                .with_parent(root);
            ctx.trace_event(cool_ev);
        }
        let delay = self.jittered(delay);
        self.services[idx].state = SvcState::WaitRestart;
        if !decision.delay.is_zero() {
            ctx.trace(
                TraceLevel::Info,
                format!("restarting {name} after {}", decision.delay),
            );
        }
        let restart_ev = ctx
            .event(
                TraceLevel::Info,
                format!("restart of {name} armed in {delay}"),
            )
            .with_field("ev", "restart")
            .with_field("service", name.as_str())
            .with_field("delay_us", delay.as_micros())
            .in_recovery(rid)
            .with_parent(root);
        ctx.trace_event(restart_ev);
        let _ = ctx.set_alarm(delay, token(TOK_RESTART, idx));
    }

    fn service_by_endpoint(&self, ep: Endpoint) -> Option<usize> {
        self.services.iter().position(|s| s.endpoint == Some(ep))
    }

    /// Whether some recovery is in flight, or completed less than a full
    /// stall window ago. While that holds, old client requests against a
    /// *server* prove nothing — the server may simply be waiting out a
    /// dependency's reincarnation — so the progress watchdog holds fire.
    fn recovery_in_flight(&self, now: SimTime) -> bool {
        if self.pm_restarting {
            return true;
        }
        if self
            .last_recovery_done
            .is_some_and(|t| now.since(t) <= STALL_AGE)
        {
            return true;
        }
        self.services.iter().any(|s| {
            matches!(
                s.state,
                SvcState::Starting | SvcState::WaitRestart | SvcState::Down
            )
        })
    }

    fn endpoint_is_complainant(&self, ep: Endpoint) -> bool {
        self.complainants.iter().any(|name| {
            self.by_name
                .get(name)
                .is_some_and(|&i| self.services[i].endpoint == Some(ep))
        })
    }

    /// Stable key for budget/accusation maps: the guarded service's
    /// published name when the accuser is one, else the endpoint
    /// rendering (unguarded callers never change incarnation under RS).
    fn accuser_key(&self, ep: Endpoint) -> String {
        self.service_by_endpoint(ep)
            .map(|i| self.services[i].cfg.program.clone())
            .unwrap_or_else(|| ep.to_string())
    }

    /// Convicts service `idx` on a complaint-class defect: records the
    /// evidence, marks the pending reason, and kills it so the policy
    /// restart runs.
    fn restart_on_complaint(&mut self, ctx: &mut Ctx<'_>, idx: usize, why: String) {
        ctx.trace(TraceLevel::Warn, why);
        self.services[idx].pending_reason = Some(reason::COMPLAINT);
        self.kill_service(ctx, idx, false);
    }

    /// Arbitrates an `rs::COMPLAIN` message (defect class 5, §5.1) and
    /// returns the reply status. Complaints carry an evidence kind and the
    /// accused incarnation's endpoint; RS rejects unauthorized, unknown,
    /// self- and ghost complaints, inverts accuser-vs-accused when one
    /// accuser blames too many services, restarts immediately on
    /// high-confidence evidence, and requires a quorum for the rest.
    fn arbitrate_complaint(
        &mut self,
        ctx: &mut Ctx<'_>,
        msg: &Message,
        idx: Option<usize>,
        name: &str,
    ) -> u64 {
        let source = msg.source;
        // Server-class services accept complaints from *any* live caller:
        // their clients are ordinary applications, which are exactly the
        // components positioned to notice a garbled reply. Everything
        // else still requires complainant authorization.
        let accused_is_server = idx.is_some_and(|i| self.services[i].cfg.server);
        if !self.endpoint_is_complainant(source) && !accused_is_server {
            ctx.metrics().incr("rs.complaints.rejected_unauthorized");
            return 13; // EACCES
        }
        let Some(i) = idx else {
            // Counted, not acted on: no defect-table entry is touched.
            ctx.metrics().incr("rs.complaints.rejected_unknown");
            ctx.trace(
                TraceLevel::Warn,
                format!("complaint about unknown service {name:?} from {source}"),
            );
            return 22; // EINVAL
        };
        let kind = msg.param(0) as u32;
        ctx.metrics()
            .incr(&format!("rs.complaints.evidence.{}", evidence::name(kind)));
        // Observed-complaint signal for the adapt controllers (vetted
        // enough to count: authorized accuser, known accused).
        if self.adapt_script.is_some() {
            self.adapt_complaints.push_back(ctx.now());
        }
        if self.services[i].endpoint == Some(source) {
            // A component cannot be witness against itself (and a
            // confused server must not be able to trigger its own
            // restart through the complaint path).
            ctx.metrics().incr("rs.complaints.rejected_self");
            ctx.trace(
                TraceLevel::Warn,
                format!("self-complaint from {name} ({source}) rejected"),
            );
            return 22;
        }
        let accused_ep = match (msg.param(1), msg.param(2)) {
            (0, 0) => None,
            (slot, generation) => Some(unpack_endpoint(slot, generation)),
        };
        if let Some(acc) = accused_ep {
            if self.services[i].endpoint != Some(acc) {
                // Ghost complaint: evidence gathered against an
                // incarnation that has already been replaced says
                // nothing about its successor.
                ctx.metrics().incr("rs.complaints.rejected_ghost");
                ctx.trace(
                    TraceLevel::Info,
                    format!("ghost complaint about {name} incarnation {acc} dropped"),
                );
                return 0;
            }
        }
        if self.services[i].state != SvcState::Up {
            ctx.metrics().incr("rs.complaints.ignored_down");
            return 0;
        }
        if !self.arbitration {
            // Crash-only baseline: the evidence was vetted and counted
            // above, but nothing is restarted on its account.
            ctx.metrics().incr("rs.complaints.disarmed");
            return 0;
        }
        // Accused-vs-accuser inversion: an accuser blaming many distinct
        // services inside one window is the more plausible defect. The
        // history is keyed on the accuser's stable name so it survives
        // the accuser's own microreboots.
        let now = ctx.now();
        let complaint_window = self.params.complaint_window;
        let accuser_name = self.accuser_key(source);
        let hist = self
            .accuser_history
            .entry(accuser_name.clone())
            .or_default();
        hist.push_back((i, now));
        while hist
            .front()
            .is_some_and(|&(_, t)| now.since(t) > complaint_window)
        {
            hist.pop_front();
        }
        let distinct_accused: BTreeSet<usize> = hist.iter().map(|&(j, _)| j).collect();
        if distinct_accused.len() >= self.params.inversion_accused as usize {
            self.accuser_history.remove(&accuser_name);
            ctx.metrics().incr("rs.complaints.inversions");
            let accuser = self.service_by_endpoint(source);
            if let Some(a) = accuser.filter(|&a| self.services[a].state == SvcState::Up) {
                self.restart_on_complaint(
                    ctx,
                    a,
                    format!(
                        "accuser {accuser_name} blamed {} services in {complaint_window}; \
                         inverting suspicion and restarting the accuser",
                        distinct_accused.len()
                    ),
                );
            } else {
                ctx.trace(
                    TraceLevel::Warn,
                    format!("accuser {accuser_name} discredited; complaint dropped"),
                );
            }
            return 0;
        }
        if evidence::high_confidence(kind) {
            ctx.metrics().incr("rs.complaints.accepted");
            self.restart_on_complaint(
                ctx,
                i,
                format!(
                    "complaint about {name} from {source} ({})",
                    evidence::name(kind)
                ),
            );
            return 0;
        }
        // Low-confidence evidence accumulates toward a quorum. Accusers
        // are counted by stable name, so one flapping accuser cannot
        // impersonate a quorum across its own incarnations.
        let entries = self.complaint_ledger.entry(i).or_default();
        entries.push_back((accuser_name, kind, now));
        while entries
            .front()
            .is_some_and(|(_, _, t)| now.since(*t) > complaint_window)
        {
            entries.pop_front();
        }
        let n = entries.len();
        let distinct = entries
            .iter()
            .map(|(a, _, _)| a)
            .collect::<BTreeSet<_>>()
            .len();
        if n >= self.params.quorum_complaints as usize
            || distinct >= self.params.quorum_accusers as usize
        {
            ctx.metrics().incr("rs.complaints.accepted");
            ctx.metrics().incr("rs.complaints.quorum_restarts");
            self.restart_on_complaint(
                ctx,
                i,
                format!(
                    "quorum of {n} complaints ({distinct} accusers) against {name}; restarting"
                ),
            );
        } else {
            ctx.metrics().incr("rs.complaints.below_quorum");
        }
        0
    }

    /// Remembers a dead endpoint that matched no guarded service, so a
    /// later START_REPLY naming it is recognized as an already-dead
    /// incarnation (crash before RS learned the endpoint).
    fn remember_early_death(&mut self, ep: Endpoint) {
        if self.early_deaths.len() >= EARLY_DEATHS_CAP {
            self.early_deaths.pop_front();
        }
        self.early_deaths.push_back(ep);
    }

    /// Kills a retired warm spare (its tailed state is for a binary or
    /// incarnation that will never be promoted).
    fn retire_spare(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        self.services[idx].spare_pending = false;
        let Some(ep) = self.services[idx].spare.take() else {
            return;
        };
        ctx.metrics().incr("rs.standby.spares_retired");
        ctx.trace(
            TraceLevel::Info,
            format!(
                "retiring stale spare {ep} of {}",
                self.services[idx].cfg.program
            ),
        );
        let msg = Message::new(pm::KILL)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_param(2, 1);
        let _ = ctx.sendrec(self.pm, msg);
    }

    /// Spawns the warm spare incarnation for a hot-standby service. The
    /// spare runs the `standby.<program>` registry entry: the same driver
    /// logic in standby mode — no device grab, no fault-port publish —
    /// tailing the primary's checkpoint record until promoted.
    fn start_spare(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let svc = &self.services[idx];
        if !svc.cfg.hot_standby
            || svc.spare.is_some()
            || svc.spare_pending
            || svc.state != SvcState::Up
        {
            return;
        }
        let program = format!("standby.{}", svc.cfg.program);
        let msg = Message::new(pm::START)
            .with_param(0, 0)
            .with_data(program.into_bytes());
        if let Ok(call) = ctx.sendrec(self.pm, msg) {
            self.services[idx].spare_pending = true;
            self.spare_start_calls.insert(call, idx);
        }
    }

    /// Handles the PM reply to a spare spawn.
    fn complete_spare_start(
        &mut self,
        ctx: &mut Ctx<'_>,
        idx: usize,
        result: Result<Message, phoenix_kernel::types::IpcError>,
    ) {
        self.services[idx].spare_pending = false;
        match result {
            Ok(reply) if reply.mtype == pm::START_REPLY && reply.param(0) == 0 => {
                let ep = unpack_endpoint(reply.param(1), reply.param(2));
                let svc = &self.services[idx];
                if !svc.cfg.hot_standby || svc.state != SvcState::Up || svc.spare.is_some() {
                    // The primary died (or the spare slot was filled)
                    // while this spawn was in flight; the incarnation
                    // is a ghost.
                    self.kill_ghost(ctx, ep);
                    return;
                }
                self.services[idx].spare = Some(ep);
                ctx.metrics().incr("rs.standby.spares_started");
                ctx.trace(
                    TraceLevel::Info,
                    format!(
                        "warm spare {ep} tailing for {}",
                        self.services[idx].cfg.program
                    ),
                );
                // Publish the spare under its standby name so DS can
                // owner-authenticate its tail reads against the live
                // endpoint generation, then start the tail loop.
                let standby_key = format!("standby.{}", self.services[idx].cfg.publish_key);
                let msg = Message::new(ds::PUBLISH)
                    .with_param(0, u64::from(ep.slot()))
                    .with_param(1, u64::from(ep.generation()))
                    .with_data(standby_key.into_bytes());
                let _ = ctx.sendrec(self.ds, msg);
                let arm = Message::new(drv::STANDBY).with_param(0, SPARE_TAIL_PERIOD.as_micros());
                let _ = ctx.send(ep, arm);
            }
            Ok(reply) if reply.mtype == pm::START_REPLY => {
                // PM says the standby program cannot run (most likely no
                // `standby.<program>` registry entry): disable hot
                // standby for this service instead of spawn-looping.
                self.services[idx].cfg.hot_standby = false;
                ctx.metrics().incr("rs.standby.unavailable");
                ctx.trace(
                    TraceLevel::Warn,
                    format!(
                        "no standby program for {}; hot standby disabled",
                        self.services[idx].cfg.program
                    ),
                );
            }
            _ => {
                // Garbled or aborted: the audit sweep (and this alarm)
                // retry while the service is up.
                let _ = ctx.set_alarm(EXEC_LATENCY.saturating_mul(4), token(TOK_SPARE, idx));
            }
        }
    }

    /// Promotes the warm spare to primary at defect time — failover, not
    /// restart+replay. Order matters: the checkpoint record is re-framed
    /// first (so the promoted incarnation's own saves pass the store's
    /// ghost check), then the spare is told to go live, then the new
    /// endpoint is published before dependents learn of it (§5.3).
    // analyze:recovery-root
    fn promote_spare(&mut self, ctx: &mut Ctx<'_>, idx: usize, ep: Endpoint) {
        let name = self.services[idx].cfg.program.clone();
        let key = self.services[idx].cfg.publish_key.clone();
        let rid = self.services[idx].recovery;
        let span = self.services[idx].span;
        let svc = &mut self.services[idx];
        svc.state = SvcState::Up;
        svc.endpoint = Some(ep);
        svc.hb_outstanding = 0;
        svc.hb_epoch = svc.hb_epoch.wrapping_add(1);
        let epoch = svc.hb_epoch;
        ctx.metrics().incr("rs.standby.promotions");
        let ev = ctx
            .event(
                TraceLevel::Info,
                format!("promoting warm spare {ep} to {name}"),
            )
            .with_field("ev", "promote")
            .with_field("service", name.as_str())
            .in_recovery_opt(rid)
            .with_parent_opt(span);
        ctx.trace_event(ev);
        // Re-frame the stored snapshot with a clamped incarnation: the
        // spare lives in a younger slot generation than the dead
        // primary, so its first save would otherwise be ghost-rejected.
        let promote = Message::new(ckpt::PROMOTE).with_data(key.into_bytes());
        if let Ok(call) = ctx.sendrec(self.ds, promote) {
            self.promote_calls.insert(call, idx);
        }
        // Tell the spare to go live: deferred device init, fault-port
        // publish under the primary name, stop tailing, adopt the
        // tailed watermark as warm state.
        let go = Message::new(drv::PROMOTE)
            .with_param(0, rid.map_or(0, RecoveryId::as_u64))
            .with_param(1, span.map_or(0, SpanId::as_u64));
        let _ = ctx.send(ep, go);
        // Publish before dependents are notified (§5.3), verified like
        // any other publish.
        self.publish(ctx, idx, ep);
        if let Some(died) = self.services[idx].died_at.take() {
            let dt = ctx.now().since(died);
            self.last_recovery_done = Some(ctx.now());
            self.note_mttr(dt);
            ctx.metrics().incr("rs.recoveries");
            ctx.metrics()
                .histogram_mut("rs.recovery_time")
                .record_duration(dt);
            let alive_ev = ctx
                .event(
                    TraceLevel::Info,
                    format!("recovered {name} by promotion as {ep} in {dt}"),
                )
                .with_field("ev", "alive")
                .with_field("service", name.as_str())
                .with_field("mttr_us", dt.as_micros())
                .with_field("promoted", 1u64)
                .in_recovery_opt(rid)
                .with_parent_opt(span);
            ctx.trace_event(alive_ev);
        }
        if let Some(period) = self.effective_heartbeat(idx) {
            let _ = ctx.set_alarm(period, token_seq(TOK_HB, epoch, idx));
        }
        // Refill the spare slot behind the promoted incarnation.
        let _ = ctx.set_alarm(EXEC_LATENCY, token(TOK_SPARE, idx));
    }

    /// Steps every adapt rule once against the observed signal windows,
    /// writing results through the live [`PolicyParams`] table (each step
    /// clamped to the rule's declared band) and mirroring the values into
    /// `rs.adapt.*` gauges plus a per-parameter trajectory histogram that
    /// campaigns assert stays inside the clamp band.
    // analyze:recovery-root
    fn run_adapt_controllers(&mut self, ctx: &mut Ctx<'_>) {
        let Some(script) = self.adapt_script.take() else {
            return;
        };
        let now = ctx.now();
        while self
            .adapt_defects
            .front()
            .is_some_and(|&t| now.since(t) > ADAPT_WINDOW)
        {
            self.adapt_defects.pop_front();
        }
        while self
            .adapt_complaints
            .front()
            .is_some_and(|&t| now.since(t) > ADAPT_WINDOW)
        {
            self.adapt_complaints.pop_front();
        }
        for rule in script.adapt_rules() {
            let sample = match rule.signal {
                AdaptSignal::Failures => self.adapt_defects.len() as i64,
                AdaptSignal::Complaints => self.adapt_complaints.len() as i64,
                AdaptSignal::MttrP95Ms => {
                    if self.adapt_mttr.is_empty() {
                        0
                    } else {
                        let mut v: Vec<u64> = self.adapt_mttr.iter().copied().collect();
                        v.sort_unstable();
                        (v[(v.len() - 1) * 95 / 100] / 1000) as i64
                    }
                }
            };
            if let Some(new) = rule.step(sample, &mut self.params) {
                ctx.metrics().incr("rs.adapt.updates");
                ctx.metrics().set(rule.param.gauge(), new);
                let ev = ctx
                    .event(
                        TraceLevel::Info,
                        format!(
                            "adapt: {} -> {new} ({} = {sample})",
                            rule.param.name(),
                            rule.signal.name()
                        ),
                    )
                    .with_field("ev", "adapt")
                    .with_field("param", rule.param.name())
                    .with_field("value", new);
                ctx.trace_event(ev);
            }
            ctx.metrics()
                .histogram_mut(&format!("rs.adapt.trace.{}", rule.param.name()))
                .record(rule.param.read(&self.params) as f64);
        }
        self.adapt_script = Some(script);
    }

    /// Handles the successful completion of a tracked PM_START call.
    fn complete_start(&mut self, ctx: &mut Ctx<'_>, idx: usize, ep: Endpoint) {
        let svc_name = self.services[idx].cfg.program.clone();
        self.services[idx].current_start = None;
        if let Some(pos) = self.early_deaths.iter().position(|&d| d == ep) {
            // The fresh incarnation is already dead — it crashed between
            // its spawn and this reply (a mid-recovery kill). Re-enter
            // recovery instead of guarding a corpse.
            self.early_deaths.remove(pos);
            ctx.metrics().incr("rs.early_death_rescues");
            ctx.trace(
                TraceLevel::Warn,
                format!(
                    "{svc_name} incarnation {ep} died before start completed; re-running recovery"
                ),
            );
            self.services[idx].state = SvcState::Up;
            self.services[idx].endpoint = Some(ep);
            let defect = self.services[idx]
                .pending_reason
                .take()
                .unwrap_or(reason::KILLED);
            self.handle_defect(ctx, idx, defect);
            return;
        }
        let svc = &mut self.services[idx];
        svc.state = SvcState::Up;
        svc.endpoint = Some(ep);
        svc.hb_outstanding = 0;
        svc.hb_epoch = svc.hb_epoch.wrapping_add(1);
        let epoch = svc.hb_epoch;
        // Publish the new endpoint *before* dependents are notified — the
        // data store does both atomically from the subscribers' point of
        // view (§5.3) — and verify the acknowledgement comes back.
        self.publish(ctx, idx, ep);
        if let Some(died) = self.services[idx].died_at.take() {
            let dt = ctx.now().since(died);
            self.last_recovery_done = Some(ctx.now());
            self.note_mttr(dt);
            ctx.metrics().incr("rs.recoveries");
            ctx.metrics()
                .histogram_mut("rs.recovery_time")
                .record_duration(dt);
            let alive_ev = ctx
                .event(
                    TraceLevel::Info,
                    format!("recovered {svc_name} as {ep} in {dt}"),
                )
                .with_field("ev", "alive")
                .with_field("service", svc_name.as_str())
                .with_field("mttr_us", dt.as_micros())
                .in_recovery_opt(self.services[idx].recovery)
                .with_parent_opt(self.services[idx].span);
            ctx.trace_event(alive_ev);
        } else {
            ctx.metrics().incr("rs.starts");
            ctx.trace(TraceLevel::Info, format!("started {svc_name} as {ep}"));
        }
        if let Some(period) = self.effective_heartbeat(idx) {
            let _ = ctx.set_alarm(period, token_seq(TOK_HB, epoch, idx));
        }
        // A hot-standby service gets its warm spare as soon as the
        // primary is up (initial start and after every cold restart).
        self.start_spare(ctx, idx);
    }

    /// Publishes the `pm` name in the data store, so dependents can find
    /// the process manager and PM's own checkpoint saves pass DS's
    /// owner authentication. DS is in the never-restarted trusted base,
    /// so this skips the verified-publish ladder used for services.
    fn publish_pm(&mut self, ctx: &mut Ctx<'_>) {
        let rid_wire = self.pm_recovery.map_or(0, RecoveryId::as_u64);
        let span_wire = self.pm_span.map_or(0, SpanId::as_u64);
        let msg = Message::new(ds::PUBLISH)
            .with_param(0, u64::from(self.pm.slot()))
            .with_param(1, u64::from(self.pm.generation()))
            .with_param(2, rid_wire)
            .with_param(3, span_wire)
            .with_data(b"pm".to_vec());
        let _ = ctx.sendrec(self.ds, msg);
    }

    /// PM defect entry point — recursive recovery. RS cannot ask PM to
    /// restart itself, so it falls back on its own per-instance
    /// spawn/kill privileges. `dead` says whether the incarnation is
    /// already gone (audit or exit report) or must be killed first
    /// (stall, garbled replies).
    fn recover_pm(&mut self, ctx: &mut Ctx<'_>, defect: u8, dead: bool) {
        if self.pm_program.is_none() || self.pm_restarting {
            return;
        }
        self.pm_restarting = true;
        self.next_recovery += 1;
        let rid = RecoveryId(self.next_recovery);
        let root = ctx.new_span();
        self.pm_recovery = Some(rid);
        self.pm_span = Some(root);
        self.pm_died_at = Some(ctx.now());
        ctx.metrics().incr("rs.pm_defects");
        ctx.metrics()
            .incr(&format!("rs.defect.{}", reason::name(defect)));
        let defect_ev = ctx
            .event(
                TraceLevel::Warn,
                format!("defect in pm: {}", reason::name(defect)),
            )
            .with_field("ev", "defect")
            .with_field("service", "pm")
            .with_field("class", reason::name(defect))
            .in_recovery(rid)
            .with_span(root);
        ctx.trace_event(defect_ev);
        if !dead {
            let _ = ctx.sys_kill(self.pm, Signal::Kill);
        }
        let _ = ctx.set_alarm(EXEC_LATENCY, token(TOK_PM_RESTART, 0));
    }

    /// Spawns the replacement PM incarnation, re-registers RS as the
    /// exit-report sink, and re-publishes the `pm` name. In-flight
    /// PM_START calls were aborted by the kernel when the old PM died;
    /// their error replies re-arm per-service restart alarms, which
    /// re-drive the starts against the new incarnation.
    fn respawn_pm(&mut self, ctx: &mut Ctx<'_>) {
        let Some(program) = self.pm_program.clone() else {
            return;
        };
        let exec_ev = ctx
            .event(TraceLevel::Info, "exec pm (recursive recovery)".to_string())
            .with_field("ev", "exec")
            .with_field("service", "pm")
            .in_recovery_opt(self.pm_recovery)
            .with_parent_opt(self.pm_span);
        ctx.trace_event(exec_ev);
        match ctx.sys_spawn(&program, None) {
            Ok(ep) => {
                self.pm = ep;
                self.pm_restarting = false;
                self.pm_pong_outstanding = 0;
                // Become the new incarnation's exit-report sink before any
                // child can die, then make the name visible again.
                let _ = ctx.send(ep, Message::new(pm::REGISTER));
                self.publish_pm(ctx);
                if let Some(died) = self.pm_died_at.take() {
                    let dt = ctx.now().since(died);
                    self.last_recovery_done = Some(ctx.now());
                    self.note_mttr(dt);
                    ctx.metrics().incr("rs.pm_recoveries");
                    ctx.metrics()
                        .histogram_mut("rs.recovery_time")
                        .record_duration(dt);
                    let alive_ev = ctx
                        .event(TraceLevel::Info, format!("recovered pm as {ep} in {dt}"))
                        .with_field("ev", "alive")
                        .with_field("service", "pm")
                        .with_field("mttr_us", dt.as_micros())
                        .in_recovery_opt(self.pm_recovery)
                        .with_parent_opt(self.pm_span);
                    ctx.trace_event(alive_ev);
                }
            }
            Err(_) => {
                ctx.metrics().incr("rs.pm_respawn_failed");
                ctx.metrics().incr("rs.alerts");
                ctx.trace(
                    TraceLevel::Error,
                    format!("ALERT: cannot respawn {program}; retrying"),
                );
                let _ = ctx.set_alarm(EXEC_LATENCY.saturating_mul(4), token(TOK_PM_RESTART, 0));
            }
        }
    }
    // [recovery:end]
}

impl Process for ReincarnationServer {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                if self.started_boot {
                    return;
                }
                self.started_boot = true;
                // Forking is a pure function of (seed, domain): jitter gets
                // its own stream without perturbing anyone else's draws.
                self.jitter = Some(ctx.rng().fork("rs-jitter"));
                // Every tunable parameter is a gauge from boot, so
                // campaign digests always show the live table (baseline
                // values until a controller steps).
                for p in AdaptParam::ALL {
                    ctx.metrics().set(p.gauge(), p.read(&self.params));
                }
                // Become PM's exit-report sink before any child can die.
                let _ = ctx.send(self.pm, Message::new(pm::REGISTER));
                if self.pm_program.is_some() {
                    // PM's checkpoint saves are owner-authenticated
                    // against the published `pm` name; publish it before
                    // the first service start can make PM dirty.
                    self.publish_pm(ctx);
                }
                for idx in 0..self.services.len() {
                    self.start_service(ctx, idx);
                }
                // Periodic liveness audit: catches lost exit reports.
                let _ = ctx.set_alarm(AUDIT_PERIOD, token(TOK_AUDIT, 0));
            }
            ProcEvent::Reply { call, result } => {
                if let Some(idx) = self.start_calls.remove(&call) {
                    let svc_name = self.services[idx].cfg.program.clone();
                    match result {
                        Ok(reply) if reply.mtype == pm::START_REPLY && reply.param(0) == 0 => {
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            self.complete_start(ctx, idx, ep);
                        }
                        Ok(reply) if reply.mtype == pm::START_REPLY => {
                            // A well-formed failure status (unknown
                            // program, denied) is PM telling the truth:
                            // the service cannot run.
                            self.services[idx].current_start = None;
                            self.services[idx].state = SvcState::GivenUp;
                            ctx.metrics().incr("rs.gave_up");
                            ctx.trace(
                                TraceLevel::Error,
                                format!("failed to start {svc_name}: status {}", reply.param(0)),
                            );
                        }
                        Ok(reply) => {
                            // Wrong reply type: PM is garbling. The start
                            // outcome is unknown, so retry it, and treat
                            // the garble as a PM defect (high-confidence
                            // evidence — RS observed it firsthand).
                            self.services[idx].current_start = None;
                            self.services[idx].state = SvcState::WaitRestart;
                            ctx.metrics().incr("rs.pm_garbled_replies");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "garbled PM reply (mtype {:#x}) to start of {svc_name}",
                                    reply.mtype
                                ),
                            );
                            let _ = ctx
                                .set_alarm(EXEC_LATENCY.saturating_mul(4), token(TOK_RESTART, idx));
                            self.recover_pm(ctx, reason::COMPLAINT, false);
                        }
                        Err(_) => {
                            // The rendezvous aborted: PM died with the
                            // call open. Re-arm the start; PM recovery
                            // (exit report or audit) runs in parallel.
                            self.services[idx].current_start = None;
                            self.services[idx].state = SvcState::WaitRestart;
                            ctx.metrics().incr("rs.start_aborted");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!("start of {svc_name} aborted by PM death; will retry"),
                            );
                            let _ = ctx
                                .set_alarm(EXEC_LATENCY.saturating_mul(4), token(TOK_RESTART, idx));
                            if self.pm_program.is_some() && !ctx.proc_alive(self.pm) {
                                self.recover_pm(ctx, reason::EXIT, true);
                            }
                        }
                    }
                } else if let Some(idx) = self.orphan_calls.remove(&call) {
                    // A reply to a start attempt RS had given up on. If it
                    // succeeded, a ghost incarnation is running unguarded.
                    if let Ok(reply) = result {
                        if reply.mtype == pm::START_REPLY && reply.param(0) == 0 {
                            let ghost = unpack_endpoint(reply.param(1), reply.param(2));
                            // Never kill the endpoint we currently guard:
                            // the "orphan" may be the very call whose
                            // timeout raced its reply.
                            if self.services[idx].endpoint != Some(ghost) {
                                self.kill_ghost(ctx, ghost);
                            }
                        }
                    }
                } else if let Some(idx) = self.kill_calls.remove(&call) {
                    // PM said NO_PROCESS while RS still thinks the service
                    // is up: the exit report was lost. Synthesize the
                    // defect rather than wait for the audit.
                    if let Ok(reply) = result {
                        if reply.mtype != pm::KILL_REPLY {
                            // Garbled kill reply: a PM defect. The kill's
                            // real outcome is unknown; the liveness audit
                            // reconciles the target either way.
                            ctx.metrics().incr("rs.pm_garbled_replies");
                            self.recover_pm(ctx, reason::COMPLAINT, false);
                        } else if reply.param(0) == crate::pm::pm_status::NO_PROCESS
                            && self.services[idx].state == SvcState::Up
                        {
                            let defect = self.services[idx]
                                .pending_reason
                                .take()
                                .unwrap_or(reason::KILLED);
                            ctx.metrics().incr("rs.lost_sigchld");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "{} already dead at kill time; synthesizing defect",
                                    self.services[idx].cfg.program
                                ),
                            );
                            self.handle_defect(ctx, idx, defect);
                        }
                    }
                } else if let Some(idx) = self.spare_start_calls.remove(&call) {
                    self.complete_spare_start(ctx, idx, result);
                } else if let Some(idx) = self.promote_calls.remove(&call) {
                    match result {
                        Ok(reply)
                            if reply.mtype == ckpt::PROMOTE_REPLY
                                && reply.param(0) == ckpt_status::OK =>
                        {
                            ctx.metrics()
                                .add("rs.standby.records_adopted", reply.param(1));
                        }
                        _ => {
                            // The snapshot re-frame failed (no records,
                            // DS died mid-call). The promoted driver is
                            // live either way — its tailed watermark is
                            // the warm state; only a later cold restore
                            // would have used the DS frames.
                            ctx.metrics().incr("rs.standby.promote_unframed");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "snapshot re-frame for promoted {} not confirmed",
                                    self.services[idx].cfg.program
                                ),
                            );
                        }
                    }
                } else if let Some(idx) = self.publish_calls.remove(&call) {
                    match result {
                        Ok(reply) if reply.mtype == ds::ACK && reply.param(0) == 0 => {
                            let svc = &mut self.services[idx];
                            if svc.pending_publish.is_some() {
                                svc.pending_publish = None;
                                ctx.metrics().incr("rs.publish_verified");
                            }
                        }
                        _ => {
                            // Bad status or aborted call: leave the pending
                            // record; the re-publish alarm will retry.
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "publish of {} not acknowledged cleanly",
                                    self.services[idx].cfg.publish_key
                                ),
                            );
                        }
                    }
                }
            }
            // RS is the parent of any PM incarnation it respawned, so the
            // kernel reports that incarnation's death directly here — no
            // forwarding PM exists to relay it.
            ProcEvent::ChildExited(status)
                if self.pm_program.is_some() && status.endpoint == self.pm =>
            {
                let defect = match status.reason {
                    ExitReason::Exception(_) => reason::EXCEPTION,
                    _ => reason::EXIT,
                };
                self.recover_pm(ctx, defect, true);
            }
            ProcEvent::Message(msg) => match msg.mtype {
                // [recovery:begin]
                pm::SIGCHLD => {
                    let ep = unpack_endpoint(msg.param(0), msg.param(1));
                    let Some(idx) = self.service_by_endpoint(ep) else {
                        if let Some(i) = self.services.iter().position(|s| s.spare == Some(ep)) {
                            // The warm spare died, not the primary: no
                            // recovery episode, just refill the slot
                            // after a spawn latency.
                            self.services[i].spare = None;
                            ctx.metrics().incr("rs.standby.spare_deaths");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "warm spare {ep} of {} died; respawning",
                                    self.services[i].cfg.program
                                ),
                            );
                            let _ = ctx.set_alarm(EXEC_LATENCY, token(TOK_SPARE, i));
                            return;
                        }
                        // Not a currently-guarded endpoint: either a user
                        // process (ignore) or a service incarnation that
                        // died before RS bound it (remember for
                        // reconciliation).
                        self.remember_early_death(ep);
                        return;
                    };
                    // Defect classes 1-3 (§5.1) from the exit status,
                    // unless RS already knows why it killed the process
                    // (heartbeat 4, complaint 5, update 6, user 3).
                    let defect = self.services[idx].pending_reason.take().unwrap_or({
                        match msg.param(2) {
                            0 | 1 => reason::EXIT,
                            2 => reason::EXCEPTION,
                            _ => reason::KILLED,
                        }
                    });
                    self.handle_defect(ctx, idx, defect);
                }
                drv::HB_PONG => {
                    if self.pm_program.is_some() && msg.source == self.pm {
                        self.pm_pong_outstanding = 0;
                    } else if let Some(idx) = self.service_by_endpoint(msg.source) {
                        self.services[idx].hb_outstanding = 0;
                    }
                }
                // [recovery:end]
                _ => {}
            },
            ProcEvent::Request { call, msg } => {
                let name = String::from_utf8_lossy(&msg.data).to_string();
                let idx = self.by_name.get(&name).copied();
                let mut st = 0u64;
                match (msg.mtype, idx) {
                    (rsp::UP, Some(i)) => {
                        self.services[i].admin_down = false;
                        if self.services[i].state == SvcState::GivenUp {
                            self.services[i].state = SvcState::Down;
                            self.services[i].storm_level = 0;
                            self.services[i].restart_times.clear();
                        }
                        self.start_service(ctx, i);
                    }
                    (rsp::RESTART, Some(i)) => {
                        // User-initiated replacement, defect class 3. On a
                        // given-up service this is the operator overriding
                        // the storm ladder (e.g. after fixing the hardware
                        // out of band), so the storm state resets too.
                        if self.services[i].state == SvcState::Up {
                            self.services[i].pending_reason = Some(reason::KILLED);
                            self.kill_service(ctx, i, false);
                        } else {
                            if self.services[i].state == SvcState::GivenUp {
                                self.services[i].state = SvcState::Down;
                                self.services[i].storm_level = 0;
                                self.services[i].restart_times.clear();
                            }
                            self.start_service(ctx, i);
                        }
                    }
                    (rsp::UPDATE, Some(i)) => {
                        // Dynamic update, defect class 6: ask nicely with
                        // SIGTERM, escalate to SIGKILL if ignored (§6).
                        if self.services[i].state == SvcState::Up {
                            self.services[i].pending_reason = Some(reason::UPDATE);
                            self.kill_service(ctx, i, true);
                            let _ = ctx
                                .set_alarm(SimDuration::from_millis(500), token(TOK_ESCALATE, i));
                        } else {
                            self.start_service(ctx, i);
                        }
                    }
                    (rsp::DOWN, Some(i)) => {
                        if self.services[i].state == SvcState::Up {
                            self.services[i].admin_down = true;
                            self.kill_service(ctx, i, false);
                        } else {
                            self.services[i].state = SvcState::GivenUp;
                        }
                    }
                    (rsp::COMPLAIN, i) => {
                        // Defect class 5: an authorized server reports a
                        // protocol violation; RS arbitrates (§5.1).
                        st = self.arbitrate_complaint(ctx, &msg, i, &name);
                    }
                    _ => st = 22, // EINVAL / unknown service
                }
                let _ = ctx.reply(call, Message::new(rsp::ACK).with_param(0, st));
            }
            // [recovery:begin]
            ProcEvent::Alarm { token: t } => {
                let (kind, seq, idx) =
                    (t >> 32, ((t >> 16) & 0xFFFF) as u16, (t & 0xFFFF) as usize);
                if kind == TOK_PM_RESTART {
                    self.respawn_pm(ctx);
                    return;
                }
                if idx >= self.services.len() {
                    return;
                }
                match kind {
                    TOK_HB => {
                        let eff_period = self.effective_heartbeat(idx);
                        let svc = &mut self.services[idx];
                        if svc.state != SvcState::Up || svc.hb_epoch != seq {
                            return; // heartbeat chain ends; restart rearms
                        }
                        if svc.hb_outstanding >= svc.cfg.heartbeat_misses {
                            // Defect class 4: the process is stuck.
                            svc.pending_reason = Some(reason::HEARTBEAT);
                            let name = svc.cfg.program.clone();
                            ctx.trace(
                                TraceLevel::Warn,
                                format!("{name} missed {} heartbeats, killing", svc.hb_outstanding),
                            );
                            self.kill_service(ctx, idx, false);
                            return;
                        }
                        svc.hb_nonce += 1;
                        let nonce = svc.hb_nonce;
                        svc.hb_outstanding += 1;
                        let ep = svc.endpoint;
                        // A config update can drop the heartbeat period
                        // while an alarm is in flight; end the chain rather
                        // than crash the recovery infrastructure itself.
                        // The period itself is live: the next ping in the
                        // chain honors the adapt controller's latest value.
                        let Some(period) = eff_period else {
                            svc.hb_outstanding = 0;
                            return;
                        };
                        if let Some(ep) = ep {
                            // Nonblocking status request (§5.1): a sick
                            // driver can never hang RS.
                            let _ = ctx.send(ep, Message::new(drv::HB_PING).with_param(0, nonce));
                        }
                        let _ = ctx.set_alarm(period, token_seq(TOK_HB, seq, idx));
                    }
                    TOK_RESTART if self.services[idx].state == SvcState::WaitRestart => {
                        self.start_service(ctx, idx);
                    }
                    TOK_SPARE => {
                        self.start_spare(ctx, idx);
                    }
                    TOK_ESCALATE if self.services[idx].state == SvcState::Up => {
                        // SIGTERM was ignored; escalate to SIGKILL.
                        self.kill_service(ctx, idx, false);
                    }
                    TOK_START_TIMEOUT => {
                        // Only the alarm matching the current attempt may
                        // declare it lost; alarms from completed or
                        // superseded attempts are stale.
                        let svc = &self.services[idx];
                        let Some((call, attempt)) = svc.current_start else {
                            return;
                        };
                        if attempt != seq || svc.state != SvcState::Starting {
                            return;
                        }
                        if self.start_calls.remove(&call).is_some() {
                            // The attempt is abandoned, not forgotten: a
                            // late success reply means a ghost to reap.
                            self.orphan_calls.insert(call, idx);
                            self.services[idx].current_start = None;
                            self.services[idx].state = SvcState::Down;
                            ctx.metrics().incr("rs.start_timeouts");
                            ctx.trace(
                                TraceLevel::Warn,
                                format!(
                                    "start of {} timed out; retrying",
                                    self.services[idx].cfg.program
                                ),
                            );
                            self.start_service(ctx, idx);
                        }
                    }
                    TOK_REPUBLISH => {
                        let svc = &self.services[idx];
                        let Some(pp) = svc.pending_publish else {
                            return;
                        };
                        // Stale alarm from an earlier publish attempt, or
                        // the service died meanwhile.
                        if pp.attempts as u16 != seq
                            || svc.state != SvcState::Up
                            || svc.endpoint != Some(pp.ep)
                        {
                            return;
                        }
                        if pp.attempts >= MAX_PUBLISH_RETRIES {
                            self.services[idx].pending_publish = None;
                            ctx.metrics().incr("rs.publish_failed");
                            ctx.metrics().incr("rs.alerts");
                            ctx.trace(
                                TraceLevel::Error,
                                format!(
                                    "ALERT: cannot verify publish of {} after {} attempts",
                                    self.services[idx].cfg.publish_key, pp.attempts
                                ),
                            );
                            return;
                        }
                        self.services[idx].pending_publish = Some(PendingPublish {
                            ep: pp.ep,
                            attempts: pp.attempts + 1,
                        });
                        ctx.metrics().incr("rs.publish_retries");
                        ctx.trace(
                            TraceLevel::Warn,
                            format!(
                                "re-publishing {} (attempt {})",
                                self.services[idx].cfg.publish_key,
                                pp.attempts + 1
                            ),
                        );
                        self.publish(ctx, idx, pp.ep);
                    }
                    TOK_AUDIT => {
                        // Liveness beacon for the fleet layer: a healthy
                        // RS advances this counter every audit sweep, so
                        // a per-node fleet agent gossiping the counter
                        // can tell a dead or wedged RS (stalled beacon)
                        // from a merely idle one.
                        ctx.metrics().incr("rs.beacon");
                        // Step the adapt controllers against the signal
                        // windows before any sweep decision this cycle
                        // reads the parameter table.
                        self.run_adapt_controllers(ctx);
                        // Keep the accusation history from leaking: drop
                        // accusers whose whole window has expired.
                        let now = ctx.now();
                        let complaint_window = self.params.complaint_window;
                        self.accuser_history.retain(|_, h| {
                            h.back()
                                .is_some_and(|&(_, t)| now.since(t) <= complaint_window)
                        });
                        // Recursive guard: audit PM itself first — every
                        // other recovery depends on it, and no one else
                        // reports its death (its own forwarding is gone).
                        if self.pm_program.is_some() && !self.pm_restarting {
                            if !ctx.proc_alive(self.pm) {
                                self.recover_pm(ctx, reason::EXIT, true);
                            } else if self.kernel_guards && ctx.request_stalled(self.pm, STALL_AGE)
                            {
                                ctx.metrics().incr(&format!(
                                    "rs.complaints.evidence.{}",
                                    evidence::name(evidence::PROGRESS)
                                ));
                                self.recover_pm(ctx, reason::HEARTBEAT, false);
                            } else if self.pm_pong_outstanding >= 3 {
                                // Three audits without a pong: PM is
                                // alive per the kernel but swallowing (or
                                // garbling) everything it is sent.
                                self.pm_pong_outstanding = 0;
                                ctx.metrics().incr("rs.pm_pings_missed");
                                self.recover_pm(ctx, reason::HEARTBEAT, false);
                            } else {
                                self.pm_pong_outstanding += 1;
                                let _ = ctx.send(self.pm, Message::new(drv::HB_PING));
                            }
                        }
                        // Sweep for lost exit notifications: a guarded
                        // endpoint the kernel no longer knows is a defect
                        // whose SIGCHLD never made it.
                        for i in 0..self.services.len() {
                            let svc = &self.services[i];
                            if svc.state != SvcState::Up {
                                continue;
                            }
                            let Some(ep) = svc.endpoint else { continue };
                            if !ctx.proc_alive(ep) {
                                ctx.metrics().incr("rs.audit_reaped");
                                ctx.metrics().incr("rs.lost_sigchld");
                                ctx.trace(
                                    TraceLevel::Warn,
                                    format!(
                                        "audit: {} ({ep}) is gone but no exit report arrived",
                                        svc.cfg.program
                                    ),
                                );
                                let defect = self.services[i]
                                    .pending_reason
                                    .take()
                                    .unwrap_or(reason::KILLED);
                                self.handle_defect(ctx, i, defect);
                                continue;
                            }
                            // Hot-standby upkeep: reap a silently-dead
                            // spare and refill an empty slot (covers lost
                            // spare SIGCHLDs and spawn retries).
                            if self.services[i].cfg.hot_standby {
                                if let Some(sep) = self.services[i].spare {
                                    if !ctx.proc_alive(sep) {
                                        self.services[i].spare = None;
                                        ctx.metrics().incr("rs.standby.spare_deaths");
                                        self.start_spare(ctx, i);
                                    }
                                } else {
                                    self.start_spare(ctx, i);
                                }
                            }
                            // Kernel guard evidence (high confidence): the
                            // IPC layer flagged the endpoint as babbling,
                            // or it is sitting on requests far past the
                            // stall threshold. Polled for heartbeat-guarded
                            // services (drivers) and for server-class
                            // components, whose stalls would otherwise be
                            // invisible — a wedged server swallows requests
                            // without ever crashing. STALL_AGE exceeds the
                            // servers' own driver deadlines, so a server
                            // legitimately waiting out a driver recovery is
                            // not mistaken for a stall.
                            if !self.kernel_guards {
                                continue;
                            }
                            if self.services[i].cfg.heartbeat_period.is_none()
                                && !self.services[i].cfg.server
                            {
                                continue;
                            }
                            let program = self.services[i].cfg.program.clone();
                            if ctx.babble_flagged(ep) {
                                ctx.metrics().incr(&format!(
                                    "rs.complaints.evidence.{}",
                                    evidence::name(evidence::BABBLE)
                                ));
                                ctx.metrics().incr("rs.complaints.accepted");
                                self.restart_on_complaint(
                                    ctx,
                                    i,
                                    format!("babble guard flagged {program}; restarting"),
                                );
                            } else if ctx.request_stalled(ep, STALL_AGE)
                                && (!self.services[i].cfg.server || !self.recovery_in_flight(now))
                            {
                                ctx.metrics().incr(&format!(
                                    "rs.complaints.evidence.{}",
                                    evidence::name(evidence::PROGRESS)
                                ));
                                ctx.metrics().incr("rs.complaints.accepted");
                                self.restart_on_complaint(
                                    ctx,
                                    i,
                                    format!(
                                        "{program} sits on requests older than {STALL_AGE} \
                                         without crashing; restarting"
                                    ),
                                );
                            }
                        }
                        let _ = ctx.set_alarm(AUDIT_PERIOD, token(TOK_AUDIT, 0));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
// [recovery:end]
