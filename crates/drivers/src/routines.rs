//! Fault-VM programs for driver hot paths.
//!
//! Each driver executes one of these routines on its request path, so a
//! binary mutation injected by the §7.2 campaign lands in code that really
//! runs: header parsing, bounds validation (the `Assert`s that become
//! driver panics), and per-byte loops (whose inverted termination
//! conditions become infinite loops caught by heartbeats).

use phoenix_fault::isa::{Asm, Instr, Reg};

/// Register conventions used by all routines.
pub mod reg {
    /// First argument.
    pub const A0: u8 = 0;
    /// Second argument.
    pub const A1: u8 = 1;
    /// Third argument.
    pub const A2: u8 = 2;
    /// Primary result.
    pub const RES: u8 = 3;
    /// Scratch.
    pub const T0: u8 = 4;
    /// Scratch.
    pub const T1: u8 = 5;
    /// Scratch.
    pub const T2: u8 = 6;
    /// Scratch / flag.
    pub const FLAG: u8 = 7;
}

/// Emits `assert hi >= lo` (unsigned): falls through when the condition
/// holds, fails a driver consistency check otherwise.
fn emit_assert_ge(a: &mut Asm, hi: Reg, lo: Reg) {
    let ok = a.label();
    a.jge_to(hi, lo, ok);
    a.emit(Instr::MovImm(reg::FLAG, 0));
    a.emit(Instr::Assert(reg::FLAG));
    a.bind(ok);
}

/// Emits `assert a == b` — the classic driver postcondition check ("did
/// the copy loop do what it should have?"). Mutations that silently
/// corrupt registers trip these as internal panics, which is why panics
/// dominate the paper's crash statistics (65%, §7.2).
fn emit_assert_eq(a: &mut Asm, x: Reg, y: Reg) {
    emit_assert_ge(a, x, y);
    emit_assert_ge(a, y, x);
}

/// Emits `assert r != 0`.
fn emit_assert_nonzero(a: &mut Asm, r: Reg) {
    a.emit(Instr::Assert(r));
}

/// Emits a loop summing `len` (in `len_reg`) bytes starting at `base` into
/// `RES` (clobbers T0..T2).
fn emit_byte_sum(a: &mut Asm, base: Reg, len_reg: Reg) {
    let top = a.label();
    let done = a.label();
    a.emit(Instr::MovImm(reg::RES, 0));
    a.emit(Instr::MovImm(reg::T0, 0)); // i = 0
    a.bind(top);
    a.jge_to(reg::T0, len_reg, done);
    a.emit(Instr::Mov(reg::T1, base));
    a.emit(Instr::Add(reg::T1, reg::T0));
    a.emit(Instr::LoadB(reg::T2, reg::T1, 0));
    a.emit(Instr::Add(reg::RES, reg::T2));
    a.emit(Instr::AddImm(reg::T0, 1));
    a.jmp_to(top);
    a.bind(done);
}

/// Block request validation.
///
/// Inputs: `A0` = LBA, `A1` = sector count, `A2` = device capacity in
/// sectors. VM memory `[0..16)` holds the 16-byte request descriptor the
/// routine checksums. On success `RES` holds the transfer length in bytes
/// and `mem32[16]` the descriptor checksum.
///
/// Checks (each a driver panic when violated): count > 0, count <= 256,
/// LBA + count <= capacity.
pub fn disk_request() -> Vec<u32> {
    let mut a = Asm::new();
    // count > 0
    emit_assert_nonzero(&mut a, reg::A1);
    // count <= 256
    a.emit(Instr::MovImm(reg::T0, 256));
    emit_assert_ge(&mut a, reg::T0, reg::A1);
    // lba + count <= capacity
    a.emit(Instr::Mov(reg::T0, reg::A0));
    a.emit(Instr::Add(reg::T0, reg::A1));
    emit_assert_ge(&mut a, reg::A2, reg::T0);
    // checksum the 16-byte descriptor at mem[0]
    a.emit(Instr::MovImm(reg::T1, 0)); // base
    a.emit(Instr::MovImm(reg::T2, 16));
    {
        // inline byte-sum with fixed len in T2, base in T1
        let top = a.label();
        let done = a.label();
        a.emit(Instr::MovImm(reg::RES, 0));
        a.emit(Instr::MovImm(reg::T0, 0));
        a.bind(top);
        a.jge_to(reg::T0, reg::T2, done);
        a.emit(Instr::Mov(reg::FLAG, reg::T1));
        a.emit(Instr::Add(reg::FLAG, reg::T0));
        a.emit(Instr::LoadB(reg::FLAG, reg::FLAG, 0));
        a.emit(Instr::Add(reg::RES, reg::FLAG));
        a.emit(Instr::AddImm(reg::T0, 1));
        a.jmp_to(top);
        a.bind(done);
    }
    a.emit(Instr::MovImm(reg::T0, 16));
    a.emit(Instr::Store(reg::T0, reg::RES, 0)); // mem32[16] = checksum
                                                // Postcondition: re-read the stored checksum and compare.
    a.emit(Instr::Load(reg::T1, reg::T0, 0));
    emit_assert_eq(&mut a, reg::T1, reg::RES);
    // result: bytes = count << 9
    a.emit(Instr::Mov(reg::RES, reg::A1));
    a.emit(Instr::Shl(reg::RES, 9));
    // Postcondition: bytes is a whole number of non-empty sectors.
    a.emit(Instr::Mov(reg::T0, reg::RES));
    a.emit(Instr::Shr(reg::T0, 9));
    emit_assert_eq(&mut a, reg::T0, reg::A1);
    a.emit(Instr::Halt);
    a.finish()
}

/// Network receive-path validation.
///
/// VM memory holds the 4-byte ring header followed by the frame payload.
/// Inputs: `A0` = declared frame length (bounds-checked), `A1` = number of
/// header/prefix bytes to checksum (drivers parse headers, not payloads, so
/// they clamp this to [`HEADER_SUM_BYTES`]). Checks: header status byte
/// set, length > 0, length <= 1518. Sums `A1` bytes from offset 4 into
/// `RES`.
pub fn net_rx() -> Vec<u32> {
    let mut a = Asm::new();
    // status = mem8[0]; assert status != 0
    a.emit(Instr::MovImm(reg::T0, 0));
    a.emit(Instr::LoadB(reg::T1, reg::T0, 0));
    emit_assert_nonzero(&mut a, reg::T1);
    // assert len > 0 and len <= 1518
    emit_assert_nonzero(&mut a, reg::A0);
    a.emit(Instr::MovImm(reg::T0, 1518));
    emit_assert_ge(&mut a, reg::T0, reg::A0);
    // sum A1 prefix bytes at mem[4..4+A1]
    a.emit(Instr::MovImm(reg::A2, 4)); // base = 4
    emit_byte_sum(&mut a, reg::A2, reg::A1);
    // Postconditions (driver consistency checks): the loop consumed
    // exactly A1 bytes, the base pointer is untouched, and the header
    // status byte still reads OK.
    emit_assert_eq(&mut a, reg::T0, reg::A1);
    a.emit(Instr::MovImm(reg::T1, 4));
    emit_assert_eq(&mut a, reg::A2, reg::T1);
    a.emit(Instr::MovImm(reg::T0, 0));
    a.emit(Instr::LoadB(reg::T1, reg::T0, 0));
    emit_assert_nonzero(&mut a, reg::T1);
    // Output: A2 = the ring header's next-packet page, which the DP8390
    // driver programs into BNRY. A mutation that corrupts this value makes
    // the driver scribble an invalid ring pointer into the chip — the
    // §7.2 "card confused by the faulty driver" path.
    a.emit(Instr::MovImm(reg::T0, 0));
    a.emit(Instr::LoadB(reg::A2, reg::T0, 1));
    a.emit(Instr::Halt);
    a.finish()
}

/// Prefix length drivers checksum on the rx/tx paths.
pub const HEADER_SUM_BYTES: usize = 64;

/// Network transmit-path validation: `A0` = frame length (bounds-checked),
/// `A1` = prefix bytes to checksum, payload at `mem[0..len)`.
pub fn net_tx() -> Vec<u32> {
    let mut a = Asm::new();
    emit_assert_nonzero(&mut a, reg::A0);
    a.emit(Instr::MovImm(reg::T0, 1518));
    emit_assert_ge(&mut a, reg::T0, reg::A0);
    a.emit(Instr::MovImm(reg::A2, 0));
    emit_byte_sum(&mut a, reg::A2, reg::A1);
    // Postcondition: the serialization loop consumed exactly A1 bytes.
    emit_assert_eq(&mut a, reg::T0, reg::A1);
    a.emit(Instr::Halt);
    a.finish()
}

/// Character-device write path: `A0` = payload length at `mem[0..len)`.
/// Checks length > 0, sums payload.
pub fn char_write() -> Vec<u32> {
    let mut a = Asm::new();
    emit_assert_nonzero(&mut a, reg::A0);
    a.emit(Instr::MovImm(reg::A1, 0));
    emit_byte_sum(&mut a, reg::A1, reg::A0);
    // Postcondition: the loop consumed exactly A0 bytes.
    emit_assert_eq(&mut a, reg::T0, reg::A0);
    a.emit(Instr::Halt);
    a.finish()
}

/// Appends `factor` copies of the routine's own instruction mix *after*
/// its final `Halt` — cold code that is present in the binary but never
/// executed on the hot path.
///
/// A real driver binary is dominated by initialization, error handling and
/// ioctl paths that rarely run; the §7.2 campaign injected 12,500+ faults
/// to provoke only 347 crashes precisely because most mutations land in
/// such cold code. Padding reproduces that ratio's *shape*: mutations are
/// spread over the whole image, but only those hitting the hot prefix (or
/// redirecting control into the cold region) can crash the driver.
pub fn with_cold_section(hot: Vec<u32>, factor: usize) -> Vec<u32> {
    let mut out = hot.clone();
    for _ in 0..factor {
        out.extend_from_slice(&hot);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_fault::vm::{Outcome, Trap, Vm};

    fn run(program: &[u32], setup: impl FnOnce(&mut Vm)) -> (Outcome, Vm) {
        let mut vm = Vm::new(2048);
        setup(&mut vm);
        let out = vm.run(program, 50_000);
        (out, vm)
    }

    #[test]
    fn disk_request_accepts_valid_and_computes_bytes() {
        let p = disk_request();
        let (out, vm) = run(&p, |vm| {
            vm.regs[reg::A0 as usize] = 100; // lba
            vm.regs[reg::A1 as usize] = 8; // count
            vm.regs[reg::A2 as usize] = 1024; // capacity
            vm.mem[0..16].copy_from_slice(&[1u8; 16]);
        });
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(vm.regs[reg::RES as usize], 8 * 512);
        assert_eq!(
            u32::from_le_bytes(vm.mem[16..20].try_into().unwrap()),
            16,
            "descriptor checksum"
        );
    }

    #[test]
    fn disk_request_rejects_zero_count_and_overflow() {
        let p = disk_request();
        let (out, _) = run(&p, |vm| {
            vm.regs[reg::A1 as usize] = 0;
            vm.regs[reg::A2 as usize] = 1024;
        });
        assert!(matches!(
            out,
            Outcome::Trapped {
                trap: Trap::Assert,
                ..
            }
        ));
        let (out, _) = run(&p, |vm| {
            vm.regs[reg::A0 as usize] = 1020;
            vm.regs[reg::A1 as usize] = 8;
            vm.regs[reg::A2 as usize] = 1024;
        });
        assert!(matches!(
            out,
            Outcome::Trapped {
                trap: Trap::Assert,
                ..
            }
        ));
        let (out, _) = run(&p, |vm| {
            vm.regs[reg::A1 as usize] = 300; // > 256
            vm.regs[reg::A2 as usize] = 100_000;
        });
        assert!(matches!(
            out,
            Outcome::Trapped {
                trap: Trap::Assert,
                ..
            }
        ));
    }

    #[test]
    fn net_rx_validates_header_and_sums_prefix() {
        let p = net_rx();
        let (out, vm) = run(&p, |vm| {
            vm.mem[0] = 1; // status OK
            vm.mem[4..8].copy_from_slice(&[10, 20, 30, 40]);
            vm.regs[reg::A0 as usize] = 4;
            vm.regs[reg::A1 as usize] = 4;
        });
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(vm.regs[reg::RES as usize], 100);
    }

    #[test]
    fn net_rx_rejects_bad_status_and_giant_frames() {
        let p = net_rx();
        let (out, _) = run(&p, |vm| {
            vm.mem[0] = 0; // bad status
            vm.regs[reg::A0 as usize] = 4;
            vm.regs[reg::A1 as usize] = 4;
        });
        assert!(matches!(
            out,
            Outcome::Trapped {
                trap: Trap::Assert,
                ..
            }
        ));
        let (out, _) = run(&p, |vm| {
            vm.mem[0] = 1;
            vm.regs[reg::A0 as usize] = 1600;
            vm.regs[reg::A1 as usize] = 64;
        });
        assert!(matches!(
            out,
            Outcome::Trapped {
                trap: Trap::Assert,
                ..
            }
        ));
    }

    #[test]
    fn net_tx_sums_prefix() {
        let p = net_tx();
        let (out, vm) = run(&p, |vm| {
            vm.mem[0..3].copy_from_slice(&[1, 2, 3]);
            vm.regs[reg::A0 as usize] = 3;
            vm.regs[reg::A1 as usize] = 3;
        });
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(vm.regs[reg::RES as usize], 6);
    }

    #[test]
    fn char_write_sums_bytes() {
        let p = char_write();
        let (out, vm) = run(&p, |vm| {
            vm.mem[0..3].copy_from_slice(&[1, 2, 3]);
            vm.regs[reg::A0 as usize] = 3;
        });
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(vm.regs[reg::RES as usize], 6);
    }

    #[test]
    fn routines_have_loops_and_asserts_for_the_mutator() {
        use phoenix_fault::isa::{decode, Instr};
        for p in [disk_request(), net_rx(), net_tx(), char_write()] {
            let has_assert = p.iter().any(|&w| matches!(decode(w), Instr::Assert(_)));
            let has_branch = p.iter().any(|&w| {
                matches!(
                    decode(w),
                    Instr::Jz(..) | Instr::Jnz(..) | Instr::Jlt(..) | Instr::Jge(..)
                )
            });
            let has_mem = p
                .iter()
                .any(|&w| matches!(decode(w), Instr::LoadB(..) | Instr::Store(..)));
            assert!(has_assert && has_branch && has_mem);
        }
    }
}
