//! File-server write path: durability across driver kills, and a
//! model-based random-read check against the synthetic disk content.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::experiments::fig8_files;
use phoenix::os::{names, Os};
use phoenix_drivers::proto::status;
use phoenix_hw::disk::{synth_sector, SECTOR};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{Endpoint, Message};
use phoenix_servers::proto::fs;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// Writes a sector-aligned pattern, then reads it back.
struct WriteRead {
    vfs: Endpoint,
    ino: Option<u64>,
    pattern: Vec<u8>,
    offset: u64,
    stage: u8,
    ok: Rc<RefCell<Option<bool>>>,
}

impl Process for WriteRead {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let _ = ctx.sendrec(
                    self.vfs,
                    Message::new(fs::OPEN).with_data(b"bigfile".to_vec()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match self.stage {
                0 => {
                    assert_eq!(reply.param(0), status::OK, "open");
                    self.ino = Some(reply.param(1));
                    self.stage = 1;
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::WRITE)
                            .with_param(0, self.ino.unwrap())
                            .with_param(1, self.offset)
                            .with_data(self.pattern.clone()),
                    );
                }
                1 => {
                    assert_eq!(reply.param(0), status::OK, "write status");
                    assert_eq!(reply.param(1), self.pattern.len() as u64, "bytes written");
                    self.stage = 2;
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::READ)
                            .with_param(0, self.ino.unwrap())
                            .with_param(1, self.offset)
                            .with_param(2, self.pattern.len() as u64),
                    );
                }
                2 => {
                    let good = reply.param(0) == status::OK && reply.data == self.pattern;
                    *self.ok.borrow_mut() = Some(good);
                    self.stage = 3;
                }
                _ => {}
            },
            ProcEvent::Reply { result: Err(_), .. } => {
                *self.ok.borrow_mut() = Some(false);
            }
            _ => {}
        }
    }
}

#[test]
fn write_then_read_back_roundtrips() {
    let file_size = 1_000_000u64;
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(61)
        .with_disk(sectors, 9, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let ok = Rc::new(RefCell::new(None));
    os.spawn_app(
        "wr",
        Box::new(WriteRead {
            vfs,
            ino: None,
            pattern: vec![0xC3; 4 * SECTOR],
            offset: 10 * SECTOR as u64,
            stage: 0,
            ok: ok.clone(),
        }),
    );
    os.run_for(SimDuration::from_secs(2));
    assert_eq!(*ok.borrow(), Some(true));
}

#[test]
fn write_survives_driver_kill_between_write_and_read() {
    // The write lands on the disk; the driver is killed; the read-back
    // after recovery sees the written data (durability across recovery).
    let file_size = 1_000_000u64;
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(62)
        .with_disk(sectors, 9, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();

    // Stage 1: write only.
    struct WriteOnly {
        vfs: Endpoint,
        pattern: Vec<u8>,
        done: Rc<RefCell<bool>>,
        ino: Option<u64>,
    }
    impl Process for WriteOnly {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::OPEN).with_data(b"bigfile".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    if self.ino.is_none() {
                        self.ino = Some(reply.param(1));
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::WRITE)
                                .with_param(0, self.ino.unwrap())
                                .with_param(1, 0)
                                .with_data(self.pattern.clone()),
                        );
                    } else {
                        assert_eq!(reply.param(0), status::OK);
                        *self.done.borrow_mut() = true;
                    }
                }
                _ => {}
            }
        }
    }
    let wrote = Rc::new(RefCell::new(false));
    let pattern = vec![0x77u8; 2 * SECTOR];
    os.spawn_app(
        "writer",
        Box::new(WriteOnly {
            vfs,
            pattern: pattern.clone(),
            done: wrote.clone(),
            ino: None,
        }),
    );
    let mut guard = 0;
    while !*wrote.borrow() && guard < 100 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(*wrote.borrow());

    // Kill + recover the driver.
    os.kill_by_user(names::BLK_SATA);
    os.run_for(SimDuration::from_secs(1));
    assert!(os.is_up(names::BLK_SATA));

    // Stage 2: read back through the recovered driver.
    struct ReadBack {
        vfs: Endpoint,
        want: Vec<u8>,
        ok: Rc<RefCell<Option<bool>>>,
        ino: Option<u64>,
    }
    impl Process for ReadBack {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::OPEN).with_data(b"bigfile".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    if self.ino.is_none() {
                        self.ino = Some(reply.param(1));
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::READ)
                                .with_param(0, self.ino.unwrap())
                                .with_param(1, 0)
                                .with_param(2, self.want.len() as u64),
                        );
                    } else {
                        *self.ok.borrow_mut() = Some(reply.data == self.want);
                    }
                }
                _ => {}
            }
        }
    }
    let ok = Rc::new(RefCell::new(None));
    os.spawn_app(
        "reader",
        Box::new(ReadBack {
            vfs,
            want: pattern,
            ok: ok.clone(),
            ino: None,
        }),
    );
    os.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *ok.borrow(),
        Some(true),
        "written data survives driver recovery"
    );
}

#[test]
fn random_reads_match_the_synthetic_disk_model() {
    // Model-based check: 20 random (offset, len) reads must equal the
    // bytes predicted from the deterministic sector function.
    let disk_seed = 63;
    let file_size = 300_000u64;
    let sectors = file_size / 512 + 1024;
    let mut os = Os::builder()
        .seed(63)
        .with_disk(sectors, disk_seed, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    // The file's first extent starts right after the inode table; compute
    // its base lba the same way mkfs does (1 sector superblock + table).
    let mut scratch = phoenix_hw::disk::DiskModel::new(sectors, disk_seed);
    let inodes = phoenix_servers::fsfmt::mkfs(&mut scratch, &fig8_files(file_size));
    let base_lba = inodes[0].extents[0].start;

    let mut rng = SimRng::new(99);
    let mut probes = Vec::new();
    for _ in 0..20 {
        let off = rng.range_u64(0..file_size - 1);
        let len = rng.range_u64(1..(file_size - off).min(40_000));
        probes.push((off, len));
    }

    struct Prober {
        vfs: Endpoint,
        probes: Vec<(u64, u64)>,
        next: usize,
        ino: Option<u64>,
        results: Rc<RefCell<Vec<Vec<u8>>>>,
    }
    impl Process for Prober {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.vfs,
                        Message::new(fs::OPEN).with_data(b"bigfile".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    if self.ino.is_none() {
                        self.ino = Some(reply.param(1));
                    } else {
                        self.results.borrow_mut().push(reply.data.clone());
                        self.next += 1;
                    }
                    if self.next < self.probes.len() {
                        let (off, len) = self.probes[self.next];
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(fs::READ)
                                .with_param(0, self.ino.unwrap())
                                .with_param(1, off)
                                .with_param(2, len),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    let results = Rc::new(RefCell::new(Vec::new()));
    os.spawn_app(
        "prober",
        Box::new(Prober {
            vfs,
            probes: probes.clone(),
            next: 0,
            ino: None,
            results: results.clone(),
        }),
    );
    os.run_for(SimDuration::from_secs(5));
    let results = results.borrow();
    assert_eq!(results.len(), probes.len());
    for ((off, len), got) in probes.iter().zip(results.iter()) {
        // Expected bytes from the synthetic model.
        let mut want = Vec::with_capacity(*len as usize);
        let mut pos = *off;
        while (want.len() as u64) < *len {
            let lba = base_lba + pos / 512;
            let in_off = (pos % 512) as usize;
            let sector = synth_sector(disk_seed, lba);
            let take = ((*len - want.len() as u64) as usize).min(512 - in_off);
            want.extend_from_slice(&sector[in_off..in_off + take]);
            pos += take as u64;
        }
        assert_eq!(got, &want, "probe at offset {off} len {len}");
    }
}
