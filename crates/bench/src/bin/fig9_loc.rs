//! Fig. 9: source code statistics — total executable LoC per component and
//! the recovery-specific reengineering effort, counted like the paper's
//! `sclc.pl` (blank lines and comments omitted; test modules excluded).

use phoenix_bench::loc::{count_component, fig9_components};
use phoenix_bench::{print_table, workspace_root};

fn main() {
    println!("Fig. 9 — reengineering effort (executable LoC)\n");
    let root = workspace_root();
    let mut rows = Vec::new();
    let mut total = 0usize;
    let mut total_rec = 0usize;
    for c in fig9_components() {
        let n = count_component(&root, &c);
        if c.paths.is_empty() {
            rows.push(vec![
                c.name.to_string(),
                "(shared)".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            continue;
        }
        total += n.total;
        total_rec += n.recovery;
        let pct = if n.total > 0 {
            format!("{:.0}%", 100.0 * n.recovery as f64 / n.total as f64)
        } else {
            "-".to_string()
        };
        rows.push(vec![
            c.name.to_string(),
            n.total.to_string(),
            n.recovery.to_string(),
            pct,
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        total.to_string(),
        total_rec.to_string(),
        "-".to_string(),
    ]);
    print_table(&["component", "total LoC", "recovery LoC", "%"], &rows);
    println!("\nnotes: 'RAM Disk' shares crates/drivers/src/block.rs with the SATA driver;");
    println!("       'DP8390 Driver' shares crates/drivers/src/net.rs with the RTL8139.");
    println!("paper: RS 30%, DS 15%, VFS 5%, FS <1%, drivers ~5 lines each, PM/kernel 0%.");
}
