//! `phoenix-analyze`: the repo's static-analysis and conformance gate.
//!
//! Two concerns, both run by the `phoenix-analyze` binary and gated in
//! `ci.sh`:
//!
//! 1. **Determinism lints** ([`lint`]) — a dependency-free lexical scan
//!    over every crate's sources for constructs that break the
//!    same-seed-same-bytes invariant (wall-clock reads, hash-ordered
//!    collections, ad-hoc RNGs, host threads) or that let the recovery
//!    infrastructure crash itself (`unwrap` in RS/DS/policy paths).
//!    [`deadedge`] rides along: protocol message kinds nothing ever
//!    sends or handles.
//!
//! 2. **Least-authority audit** ([`audit`]) — runs the deterministic
//!    authority workload from `phoenix::audit` and diffs each
//!    component's declared [`phoenix_kernel::Privileges`] against the
//!    authority it actually exercised. Grants held but never used are
//!    POLA violations (§4 of the paper); wildcard IPC filters must carry
//!    an explicit justification.

pub mod ast;
pub mod audit;
pub mod conformance;
pub mod deadedge;
pub mod lint;
pub mod proto_model;
pub mod reach;
pub mod report;

use std::path::{Path, PathBuf};

/// Workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace root two levels up")
        .to_path_buf()
}

/// Collects every `.rs` file under `crates/*/src`, excluding this crate
/// itself (its sources quote the very patterns it scans for).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return out;
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "analyze"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut out);
    }
    out.sort();
    out
}

/// Collects the non-`crates/*/src` sources that can still reference
/// protocol kinds: the umbrella crate's `src` and `tests`, and every
/// crate's integration-test tree. Used by the passes that count
/// references (a kind exercised only by a test is not dead), never by
/// the lint/reach passes (test code may panic freely).
pub fn workspace_test_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect_rs(&root.join("tests"), &mut out);
    collect_rs(&root.join("src"), &mut out);
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("tests"), &mut out);
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Path relative to the workspace root, with `/` separators, for stable
/// report output.
pub fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
