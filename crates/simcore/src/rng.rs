//! Deterministic random number generation for the simulation.
//!
//! Every run of an experiment is parameterized by a single `u64` seed. All
//! components that need randomness (fault injector, chaos plans, workload
//! generators, device timing jitter) draw from a [`SimRng`] forked off the
//! root seed, so results are reproducible and sub-systems do not perturb each
//! other's random streams when code is added or reordered.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64, so the simulation has no dependency on an external RNG
//! crate and the exact streams are pinned by this file alone.

/// A seeded random number generator with domain-forking.
///
/// # Example
///
/// ```
/// use phoenix_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(42).fork("fault-injector");
/// let mut b = SimRng::new(42).fork("fault-injector");
/// assert_eq!(a.range_u64(0..100), b.range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { seed, state }
    }

    /// The seed this generator was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for a named domain.
    ///
    /// Forking is a pure function of `(seed, domain)`: the same pair always
    /// yields the same stream, regardless of how much the parent has been
    /// used.
    pub fn fork(&self, domain: &str) -> SimRng {
        // FNV-1a over the domain name mixed into the seed; cheap and stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in domain.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(self.seed.wrapping_add(h).rotate_left(17) ^ h)
    }

    /// Derives an independent generator for the `idx`-th member of a
    /// named domain family — the per-node / per-link stream fork used by
    /// the fleet layer (`fork_indexed("node", 3)` for node 3's machine
    /// seed, `fork_indexed("link-0-2", …)` for a directed link stream).
    ///
    /// Like [`SimRng::fork`], this is a pure function of
    /// `(seed, domain, idx)`: streams do not depend on how much the
    /// parent has been used, and swapping two indices swaps the streams
    /// wholesale (no partial overlap).
    pub fn fork_indexed(&self, domain: &str, idx: u64) -> SimRng {
        self.fork(&format!("{domain}#{idx}"))
    }

    /// Uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.bounded(span)
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        range.start + self.bounded(span) as usize
    }

    /// A random `u32` (used for bit-flip fault injection).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A random `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare 53 uniform bits against p scaled to the same precision.
        self.f64_unit() < p
    }

    /// Fills `buf` with random bytes (used to generate file contents whose
    /// checksum is verified across driver crashes).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot pick from empty slice");
        &slice[self.range_usize(0..slice.len())]
    }

    /// Exponentially distributed duration in seconds with the given mean
    /// (used for Poisson failure arrivals in stress tests).
    pub fn exp_secs(&mut self, mean_secs: f64) -> f64 {
        let u = self.f64_unit().max(f64::EPSILON);
        -mean_secs * u.ln()
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)` via Lemire's multiply-and-reject reduction.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_usage() {
        let mut parent1 = SimRng::new(9);
        let _ = parent1.next_u64(); // consume some of the parent stream
        let parent2 = SimRng::new(9);
        let mut f1 = parent1.fork("x");
        let mut f2 = parent2.fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_differ_by_domain() {
        let root = SimRng::new(1);
        let mut a = root.fork("alpha");
        let mut b = root.fork("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_forks_are_distinct_and_stable() {
        let root = SimRng::new(77);
        // Stability: same (seed, domain, idx) -> same stream.
        let mut a = root.fork_indexed("node", 2);
        let mut b = SimRng::new(77).fork_indexed("node", 2);
        assert_eq!(a.next_u64(), b.next_u64());
        // Distinctness across indices and across domains.
        let seeds: Vec<u64> = (0..8)
            .map(|i| root.fork_indexed("node", i).seed())
            .collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "per-node seeds collide");
        assert_ne!(
            root.fork_indexed("node", 1).seed(),
            root.fork_indexed("link", 1).seed()
        );
    }

    #[test]
    fn indexed_fork_swap_swaps_streams_wholesale() {
        // The fleet determinism contract: swapping two node ids swaps the
        // node streams exactly — node 1 under seed S produces precisely
        // what node 4 would have produced had the ids been exchanged.
        let root = SimRng::new(1234);
        let mut n1 = root.fork_indexed("node", 1);
        let mut n4 = root.fork_indexed("node", 4);
        let s1: Vec<u64> = (0..16).map(|_| n1.next_u64()).collect();
        let s4: Vec<u64> = (0..16).map(|_| n4.next_u64()).collect();
        assert_ne!(s1, s4);
        let mut swapped = root.fork_indexed("node", 4);
        let again: Vec<u64> = (0..16).map(|_| swapped.next_u64()).collect();
        assert_eq!(again, s4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1.0");
        assert!(!r.chance(-4.0), "clamped below 0.0");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}, wanted ~0.3");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let v = r.range_u64(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::new(12);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.range_usize(0..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn exp_secs_positive_with_reasonable_mean() {
        let mut r = SimRng::new(5);
        let n = 10_000;
        let total: f64 = (0..n).map(|_| r.exp_secs(2.0)).sum();
        let mean = total / n as f64;
        assert!(
            mean > 1.8 && mean < 2.2,
            "sample mean {mean} too far from 2.0"
        );
    }

    #[test]
    fn fill_bytes_deterministic_and_nonconstant() {
        let mut a = SimRng::new(8);
        let mut b = SimRng::new(8);
        let mut ba = [0u8; 33];
        let mut bb = [0u8; 33];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(
            ba.iter().any(|&x| x != ba[0]),
            "output suspiciously constant"
        );
    }

    #[test]
    #[should_panic(expected = "cannot pick from empty slice")]
    fn pick_empty_panics() {
        let mut r = SimRng::new(6);
        let empty: [u8; 0] = [];
        let _ = r.pick(&empty);
    }
}
