//! Protocol-conformance pass: checks the typed protocol model parsed by
//! [`crate::proto_model`] against itself and against how the workspace
//! actually uses each message kind.
//!
//! Three families of findings:
//!
//! 1. **Model errors** — unannotated or malformed kinds
//!    (`proto-missing`, `proto-malformed`), surfaced from the parser.
//! 2. **Pairing symmetry** — a `request` must name an existing `reply`
//!    kind in its module; the named kind must be annotated `reply`; a
//!    `reply` kind must be the target of at least one request; `oneway`
//!    and `value` kinds must not carry pairing or (for values) slot
//!    clauses (`proto-bad-reply`, `proto-orphan-reply`).
//! 3. **Handler coverage** — the dual of the dead-edge pass. Every
//!    reference to a kind is classified by its token context as a *send*
//!    (construction/argument position) or a *handle* (a `match` arm
//!    pattern or an `==`/`!=` comparison). A kind sent somewhere but
//!    handled nowhere is a message the system emits and then drops on
//!    the floor (`proto-unhandled`); a kind handled somewhere but never
//!    sent is a dispatch arm that can never fire (`proto-unsent`).
//!    Kinds referenced nowhere at all stay the dead-edge pass's
//!    business and are not re-reported here.
//!
//! Findings anchor at the kind's definition line and are suppressed by
//! the usual `// analyze:allow(rule): reason` pragma in the comment
//! block above the const.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::Path;

use crate::ast::{self, TokenKind};
use crate::deadedge::use_map;
use crate::proto_model::{self, Dir, ProtoModel, SlotRegistry};

/// The protocol files the model is built from.
pub const PROTO_FILES: &[&str] = &[
    "crates/drivers/src/proto.rs",
    "crates/servers/src/proto.rs",
    "crates/ckpt/src/proto.rs",
    "crates/fleet/src/proto.rs",
];

/// One conformance finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A finding silenced by an `analyze:allow` pragma, kept for the report.
#[derive(Clone, Debug)]
pub struct Suppressed {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// How one kind is referenced across the workspace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindUsage {
    pub sends: usize,
    pub handles: usize,
}

/// Conformance pass outcome.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    pub model: ProtoModel,
    pub registry: SlotRegistry,
    /// `module::KIND` → usage counts (message kinds only).
    pub usage: BTreeMap<String, KindUsage>,
}

/// Macros whose argument position is an equality / pattern check, not a
/// send: `assert_eq!(reply.mtype, ds::ACK)` handles the kind.
const COMPARISON_MACROS: &[&str] = &[
    "assert_eq",
    "assert_ne",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
];

/// What encloses a token: the innermost unmatched `(` walking backward.
enum Enclosure {
    /// `name(...` — a call (or `name!(...` when `bang`).
    Call { name: String, bang: bool },
    /// A `(` not preceded by a callee ident: tuple pattern, match
    /// scrutinee, plain grouping.
    Group,
    /// No unmatched `(` before a statement boundary.
    None,
}

/// Walks backward from `start` (exclusive) to find the innermost
/// enclosing paren group and its callee, stopping at statement
/// boundaries (`{`, `}`, `;`, `=>`).
fn enclosure(tokens: &[ast::Token], start: usize) -> Enclosure {
    let mut depth = 0usize;
    let mut i = start;
    for _ in 0..64 {
        if i == 0 {
            return Enclosure::None;
        }
        i -= 1;
        match &tokens[i].kind {
            TokenKind::Close(')') => depth += 1,
            TokenKind::Open('(') if depth > 0 => depth -= 1,
            TokenKind::Open('(') => {
                return match i.checked_sub(1).map(|p| &tokens[p].kind) {
                    Some(TokenKind::Ident(n)) if n != "match" => Enclosure::Call {
                        name: n.clone(),
                        bang: false,
                    },
                    Some(TokenKind::Bang) => match i.checked_sub(2).map(|p| &tokens[p].kind) {
                        Some(TokenKind::Ident(n)) => Enclosure::Call {
                            name: n.clone(),
                            bang: true,
                        },
                        _ => Enclosure::Group,
                    },
                    _ => Enclosure::Group,
                };
            }
            TokenKind::Open('{') | TokenKind::Close('}') | TokenKind::FatArrow if depth == 0 => {
                return Enclosure::None;
            }
            TokenKind::Punct(';') if depth == 0 => return Enclosure::None,
            _ => {}
        }
    }
    Enclosure::None
}

/// Classifies one reference site given the token stream and the index of
/// the const's identifier token.
///
/// Handle positions: `==`/`!=` adjacency; the argument list of a
/// comparison macro; a match-arm pattern — including tuple patterns like
/// `(rsp::COMPLAIN, i) =>` — recognized by a forward scan to `=>` that
/// is vetoed when the enclosing paren group is a call's argument list
/// (`send(dst, K), NEXT => ...` stays a send). Everything else is a
/// send. Known over-approximation: a kind nested inside a constructor
/// pattern (`Some(K) =>`) classifies as a send.
fn classify(tokens: &[ast::Token], idx: usize) -> RefClass {
    // Handle: `== K`, `K ==`, `!= K`, `K !=`.
    let prev_relevant = path_start(tokens, idx)
        .checked_sub(1)
        .map(|i| &tokens[i].kind);
    if matches!(
        prev_relevant,
        Some(TokenKind::EqEq) | Some(TokenKind::NotEq)
    ) {
        return RefClass::Handle;
    }
    match tokens.get(idx + 1).map(|t| &t.kind) {
        Some(TokenKind::EqEq) | Some(TokenKind::NotEq) => return RefClass::Handle,
        _ => {}
    }
    let enc = enclosure(tokens, path_start(tokens, idx));
    if let Enclosure::Call { name, bang: true } = &enc {
        if COMPARISON_MACROS.contains(&name.as_str()) {
            return RefClass::Handle;
        }
    }
    // Handle: a match-arm pattern — scan forward through pattern-ish
    // tokens (`|` alternation, tuple commas/parens, further paths;
    // guards and expressions are cut off by the stop set) for a fat
    // arrow, then veto if the site sits in a call's argument list.
    let mut j = idx + 1;
    let mut steps = 0;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::FatArrow => {
                return match enc {
                    Enclosure::Call { bang: false, .. } => RefClass::Send,
                    _ => RefClass::Handle,
                };
            }
            TokenKind::Punct('|')
            | TokenKind::Punct(',')
            | TokenKind::Punct('_')
            | TokenKind::PathSep
            | TokenKind::Ident(_)
            | TokenKind::Open('(')
            | TokenKind::Close(')') => {}
            _ => break,
        }
        j += 1;
        steps += 1;
        if steps > 24 {
            break;
        }
    }
    RefClass::Send
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RefClass {
    Send,
    Handle,
}

/// Index of the first token of the path ending at `idx` (walks back
/// through `Ident :: Ident` chains).
fn path_start(tokens: &[ast::Token], idx: usize) -> usize {
    let mut i = idx;
    while i >= 2
        && tokens[i - 1].kind == TokenKind::PathSep
        && matches!(tokens[i - 2].kind, TokenKind::Ident(_))
    {
        i -= 2;
    }
    i
}

/// Counts send/handle references to `kinds` in one file.
fn count_refs(
    source: &str,
    modules: &BTreeSet<String>,
    kinds: &BTreeSet<(String, String)>,
    rel_path: &str,
    usage: &mut BTreeMap<String, KindUsage>,
) {
    let uses = use_map(rel_path, source, modules);
    // Consts of glob-imported modules are referenceable by bare name.
    let glob_mods: BTreeSet<&str> = uses.globs.iter().map(|g| g.module.as_str()).collect();
    let tokens = ast::tokenize(source);
    for (i, tok) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &tok.kind else {
            continue;
        };
        // Qualified `alias::NAME`?
        let resolved: Option<(String, String)> =
            if i >= 2 && tokens[i - 1].kind == TokenKind::PathSep {
                match &tokens[i - 2].kind {
                    TokenKind::Ident(q) => uses
                        .modules
                        .get(q)
                        .map(|m| (m.clone(), name.clone()))
                        .filter(|key| kinds.contains(key)),
                    _ => None,
                }
            } else if tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::PathSep)
            {
                // First segment of a path — not the const itself.
                None
            } else if let Some((m, c)) = uses.consts.get(name) {
                let key = (m.clone(), c.clone());
                kinds.contains(&key).then_some(key)
            } else if !glob_mods.is_empty() {
                glob_mods
                    .iter()
                    .map(|m| (m.to_string(), name.clone()))
                    .find(|key| kinds.contains(key))
            } else {
                None
            };
        let Some((module, konst)) = resolved else {
            continue;
        };
        let entry = usage.entry(format!("{module}::{konst}")).or_default();
        match classify(&tokens, i) {
            RefClass::Send => entry.sends += 1,
            RefClass::Handle => entry.handles += 1,
        }
    }
}

/// Runs the conformance pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Outcome {
    let mut proto_sources: Vec<(String, String)> = Vec::new();
    for rel in PROTO_FILES {
        let Ok(source) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        proto_sources.push((rel.to_string(), source));
    }
    let mut usage_sources: Vec<(String, String)> = Vec::new();
    let mut paths = crate::workspace_sources(root);
    paths.extend(crate::workspace_test_sources(root));
    for path in paths {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        usage_sources.push((crate::rel(root, &path), source));
    }
    analyze(&proto_sources, &usage_sources)
}

/// Runs the conformance pass over in-memory sources: `proto_sources`
/// are `(rel_path, text)` protocol definition files, `usage_sources`
/// the files whose kind references are counted. This is the seam the
/// fixture tests drive.
pub fn analyze(proto_sources: &[(String, String)], usage_sources: &[(String, String)]) -> Outcome {
    let models = proto_sources
        .iter()
        .map(|(rel, source)| proto_model::parse_proto_source(rel, source))
        .collect();
    let model = proto_model::merge(models);
    let registry = proto_model::build_slot_registry(&model);

    let message_kinds: BTreeSet<(String, String)> = model
        .kinds
        .iter()
        .filter(|k| k.dir != Dir::Value)
        .map(|k| (k.module.clone(), k.name.clone()))
        .collect();
    let modules: BTreeSet<String> = model.kinds.iter().map(|k| k.module.clone()).collect();

    let mut usage: BTreeMap<String, KindUsage> = BTreeMap::new();
    for (rel, source) in usage_sources {
        count_refs(source, &modules, &message_kinds, rel, &mut usage);
    }

    let mut raw: Vec<Finding> = Vec::new();
    for e in &model.errors {
        raw.push(Finding {
            file: e.file.clone(),
            line: e.line,
            rule: e.rule,
            message: e.message.clone(),
        });
    }

    // Pairing symmetry.
    let mut reply_targets: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for k in &model.kinds {
        if let Some(r) = &k.reply {
            reply_targets
                .entry(format!("{}::{}", k.module, r))
                .or_default()
                .push(k.key());
        }
    }
    for k in &model.kinds {
        match k.dir {
            Dir::Request => match &k.reply {
                None => raw.push(Finding {
                    file: k.file.clone(),
                    line: k.line,
                    rule: "proto-bad-reply",
                    message: format!("request {} declares no reply kind", k.key()),
                }),
                Some(r) => match model.kind(&k.module, r) {
                    None => raw.push(Finding {
                        file: k.file.clone(),
                        line: k.line,
                        rule: "proto-bad-reply",
                        message: format!(
                            "request {} names reply `{}` which does not exist in module `{}`",
                            k.key(),
                            r,
                            k.module
                        ),
                    }),
                    Some(t) if t.dir != Dir::Reply => raw.push(Finding {
                        file: k.file.clone(),
                        line: k.line,
                        rule: "proto-bad-reply",
                        message: format!(
                            "request {} names `{}` as its reply, but that kind is annotated `{}`",
                            k.key(),
                            t.key(),
                            t.dir.name()
                        ),
                    }),
                    Some(_) => {}
                },
            },
            Dir::Reply => {
                if !reply_targets.contains_key(&k.key()) {
                    raw.push(Finding {
                        file: k.file.clone(),
                        line: k.line,
                        rule: "proto-orphan-reply",
                        message: format!(
                            "reply {} is not the declared reply of any request",
                            k.key()
                        ),
                    });
                }
            }
            Dir::Oneway | Dir::Value => {
                if k.reply.is_some() {
                    raw.push(Finding {
                        file: k.file.clone(),
                        line: k.line,
                        rule: "proto-malformed",
                        message: format!(
                            "{} kind {} must not declare a reply pairing",
                            k.dir.name(),
                            k.key()
                        ),
                    });
                }
                if k.dir == Dir::Value && (!k.params.is_empty() || !k.reply_params.is_empty()) {
                    raw.push(Finding {
                        file: k.file.clone(),
                        line: k.line,
                        rule: "proto-malformed",
                        message: format!("value {} must not claim parameter slots", k.key()),
                    });
                }
            }
        }
    }

    // Slot collisions.
    for c in &registry.collisions {
        raw.push(Finding {
            file: c.file.clone(),
            line: c.line,
            rule: "proto-slot-collision",
            message: format!(
                "{} param {} claimed by both `{}` and `{}`",
                c.kind, c.slot, c.first_owner, c.second_owner
            ),
        });
    }

    // Handler coverage.
    for k in &model.kinds {
        if k.dir == Dir::Value {
            continue;
        }
        let Some(u) = usage.get(&k.key()) else {
            continue; // unreferenced entirely: the dead-edge pass owns it
        };
        if u.sends > 0 && u.handles == 0 {
            raw.push(Finding {
                file: k.file.clone(),
                line: k.line,
                rule: "proto-unhandled",
                message: format!(
                    "{} is sent at {} site(s) but matched in no dispatch arm",
                    k.key(),
                    u.sends
                ),
            });
        } else if u.handles > 0 && u.sends == 0 {
            raw.push(Finding {
                file: k.file.clone(),
                line: k.line,
                rule: "proto-unsent",
                message: format!(
                    "{} is matched in {} dispatch arm(s) but never sent",
                    k.key(),
                    u.handles
                ),
            });
        }
    }

    // Split suppressed findings out via pragmas at the definition site.
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let src_by_file: BTreeMap<&str, &str> = proto_sources
        .iter()
        .map(|(f, s)| (f.as_str(), s.as_str()))
        .collect();
    for f in raw {
        let allowed = src_by_file
            .get(f.file.as_str())
            .is_some_and(|src| ast::allowed_at(src, f.line, f.rule));
        if allowed {
            suppressed.push(Suppressed {
                file: f.file,
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    suppressed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Outcome {
        findings,
        suppressed,
        model,
        registry,
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<ast::Token> {
        ast::tokenize(src)
    }

    fn class_of(src: &str, name: &str) -> RefClass {
        let tokens = toks(src);
        let idx = tokens
            .iter()
            .position(|t| t.kind.ident() == Some(name))
            .unwrap();
        classify(&tokens, idx)
    }

    #[test]
    fn match_arms_and_comparisons_are_handles() {
        assert_eq!(
            class_of("match m.mtype { ds::PUBLISH => x() }", "PUBLISH"),
            RefClass::Handle
        );
        assert_eq!(
            class_of("if reply.mtype == bdev::REPLY { }", "REPLY"),
            RefClass::Handle
        );
        assert_eq!(
            class_of("if reply.mtype != cdev::REPLY { }", "REPLY"),
            RefClass::Handle
        );
        assert_eq!(
            class_of("match k { eth::RECV | eth::WRITE => x() }", "RECV"),
            RefClass::Handle
        );
    }

    #[test]
    fn construction_and_argument_positions_are_sends() {
        assert_eq!(
            class_of("let m = Message::new(ds::PUBLISH);", "PUBLISH"),
            RefClass::Send
        );
        assert_eq!(
            class_of("send(dst, bdev::READ, buf)", "READ"),
            RefClass::Send
        );
        assert_eq!(
            class_of(
                "let mtype = if w { bdev::WRITE } else { bdev::READ };",
                "WRITE"
            ),
            RefClass::Send
        );
    }

    #[test]
    fn multiline_send_expressions_classify_correctly() {
        // The lexical scanner's blind spot: the kind sits on its own line.
        let src = "let m =\n    Message::new(\n        ds::PUBLISH,\n    );";
        assert_eq!(class_of(src, "PUBLISH"), RefClass::Send);
    }

    #[test]
    fn tuple_match_arms_are_handles() {
        // RS dispatches control messages on a (mtype, service) tuple.
        let src = "match (msg.mtype, idx) { (rs::COMPLAIN, i) => x(i), _ => {} }";
        assert_eq!(class_of(src, "COMPLAIN"), RefClass::Handle);
        let src = "match (msg.mtype, idx) { (rs::UP, Some(i)) => x(i), _ => {} }";
        assert_eq!(class_of(src, "UP"), RefClass::Handle);
        // Not only the first arm: the walk-back stops at the previous
        // arm's closing brace.
        let src = "match t { (rs::UP, _) => {} (rs::DOWN, i) => x(i) }";
        assert_eq!(class_of(src, "DOWN"), RefClass::Handle);
    }

    #[test]
    fn call_arguments_inside_arm_bodies_stay_sends() {
        // The `, NEXT =>` after the call's closing paren must not trick
        // the forward scan into seeing a pattern.
        let src = "match q { A => send(dst, ds::PUBLISH), B => other() }";
        assert_eq!(class_of(src, "PUBLISH"), RefClass::Send);
    }

    #[test]
    fn comparison_macros_are_handles() {
        let src = "assert_eq!(reply.mtype, ds::ACK);";
        assert_eq!(class_of(src, "ACK"), RefClass::Handle);
        let src = "assert_eq!(ds::ACK, reply.mtype);";
        assert_eq!(class_of(src, "ACK"), RefClass::Handle);
        let src = "if matches!(m.mtype, rs::UP | rs::DOWN) { }";
        assert_eq!(class_of(src, "DOWN"), RefClass::Handle);
        // An ordinary function argument is still a send.
        let src = "enqueue(ds::ACK);";
        assert_eq!(class_of(src, "ACK"), RefClass::Send);
    }
}
