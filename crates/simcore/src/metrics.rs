//! Measurement primitives used by the experiment harness.
//!
//! The paper's evaluation reports throughputs (Figs. 7–8), recovery-time
//! means (§7.1), and crash-class breakdowns (§7.2). This module provides the
//! counters, histograms and time series those reports are built from.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Overwrites the value — the gauge escape hatch for quantities that
    /// can shrink (e.g. checkpoint-store occupancy). Gauges live in the
    /// counter map on purpose: they render into the same sorted dump and
    /// therefore into the campaign digest.
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram of `f64` samples with exact min/max/mean and percentile
/// estimation over the stored samples.
///
/// Experiments are short (hundreds to a few thousand samples — e.g. one
/// recovery time per simulated crash), so we keep every sample rather than
/// bucketing.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// `q`-quantile (0.0 ≤ q ≤ 1.0) by nearest-rank, or `None` if empty.
    ///
    /// Edge cases are total: `q` outside `[0, 1]` clamps, a NaN `q` is
    /// treated as 0, a single-sample histogram returns that sample for
    /// every `q`, and NaN *samples* sort via IEEE total order instead of
    /// panicking (they end up at the extremes, where p0/p100 expose them).
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx.min(self.samples.len() - 1)])
    }

    /// `q`-quantile as a [`SimDuration`], for histograms recorded via
    /// [`Histogram::record_duration`]. Negative/NaN values clamp to zero.
    pub fn quantile_duration(&mut self, q: f64) -> Option<SimDuration> {
        self.quantile(q).map(duration_from_secs)
    }

    /// Arithmetic mean as a [`SimDuration`], or `None` if empty.
    pub fn mean_duration(&self) -> Option<SimDuration> {
        self.mean().map(duration_from_secs)
    }

    /// Largest sample as a [`SimDuration`], or `None` if empty.
    pub fn max_duration(&self) -> Option<SimDuration> {
        self.max().map(duration_from_secs)
    }

    /// All samples in insertion order (pre-sort) or sorted order (post
    /// quantile queries).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Converts fractional seconds back to a duration, mapping NaN (a NaN
/// sample surfaced by p0/p100) to zero rather than propagating it.
fn duration_from_secs(secs: f64) -> SimDuration {
    if secs.is_nan() {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs_f64(secs)
    }
}

/// Sub-bucket resolution of [`LogHistogram`]: 2^5 = 32 sub-buckets per
/// octave bounds the relative quantile error at 1/32 ≈ 3.1%.
const LOG_SUB_BITS: u32 = 5;
const LOG_SUB: u64 = 1 << LOG_SUB_BITS;

/// A log-bucketed (HDR-style) histogram of `u64` samples, for
/// high-volume series where [`Histogram`]'s keep-every-sample policy
/// would not survive millions of records.
///
/// Values below 64 are recorded exactly; above that, buckets widen
/// geometrically with 32 sub-buckets per power of two, so any quantile
/// estimate is within ~3.1% of the true sample (and never below it —
/// estimates report the bucket's upper edge, clamped to the exact
/// observed maximum). Durations are recorded as microseconds.
///
/// Memory is O(occupied buckets) — at most ~60 octaves × 32 = a few
/// thousand entries regardless of sample count — and the sparse
/// `BTreeMap` keeps iteration (and thus any rendering) deterministic.
#[derive(Debug, Clone, Default)]
pub struct LogHistogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a value: identity below `2*LOG_SUB`, then
/// `(octave+1)*LOG_SUB + sub` where `sub` is the value's top
/// `LOG_SUB_BITS` bits after the leading one.
fn log_bucket_index(v: u64) -> u32 {
    if v < LOG_SUB {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - LOG_SUB_BITS;
    let sub = ((v >> shift) - LOG_SUB) as u32;
    (msb - LOG_SUB_BITS + 1) * LOG_SUB as u32 + sub
}

/// Largest value mapping to bucket `idx` (the bucket's upper edge).
/// Computed as lower-edge OR low-bits so the top bucket (which ends at
/// `u64::MAX`) doesn't overflow the shift.
fn log_bucket_upper(idx: u32) -> u64 {
    if u64::from(idx) < LOG_SUB {
        return u64::from(idx);
    }
    let oct = u64::from(idx) / LOG_SUB; // >= 1
    let sub = u64::from(idx) % LOG_SUB;
    let shift = (oct - 1) as u32;
    ((LOG_SUB + sub) << shift) | ((1u64 << shift) - 1)
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(log_bucket_index(v)).or_default() += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_micros());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty (sum is tracked
    /// exactly even though individual samples are bucketed).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// `q`-quantile (0.0 ≤ q ≤ 1.0) by nearest rank over the bucket
    /// cumulative counts, or `None` if empty. The estimate is the
    /// containing bucket's upper edge clamped to the exact min/max, so
    /// it is never below the true sample and within ~3.1% above it.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        if rank == 0 {
            return Some(self.min); // p0 is tracked exactly
        }
        if rank == self.count - 1 {
            return Some(self.max); // p100 is tracked exactly
        }
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen > rank {
                return Some(log_bucket_upper(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// `q`-quantile as a [`SimDuration`], for histograms recorded via
    /// [`LogHistogram::record_duration`].
    pub fn quantile_duration(&self, q: f64) -> Option<SimDuration> {
        self.quantile(q).map(SimDuration::from_micros)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_default() += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A `(time, value)` series, e.g. instantaneous throughput over a transfer.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Timestamps should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A named collection of counters, histograms and series.
///
/// The registry is shared by the OS components and read out by the harness
/// after a run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
    log_histograms: BTreeMap<String, LogHistogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str) {
        self.counter_mut(name).incr();
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counter_mut(name).add(n);
    }

    /// Sets the named counter to an absolute value (gauge semantics).
    pub fn set(&mut self, name: &str, v: u64) {
        self.counter_mut(name).set(v);
    }

    /// Mutable access to a counter, creating it if absent.
    pub fn counter_mut(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Value of a counter, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Mutable access to a histogram, creating it if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Records a duration sample into the named histogram — the typed
    /// convenience for phase timings, so call sites never hand-convert a
    /// [`SimDuration`] to `f64`.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.histogram_mut(name).record_duration(d);
    }

    /// Read access to a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access to a log-bucketed histogram, creating it if
    /// absent. High-volume series (per-request latencies) go here; the
    /// exact-sample [`Histogram`] stays for small recovery-time series.
    pub fn log_histogram_mut(&mut self, name: &str) -> &mut LogHistogram {
        self.log_histograms.entry(name.to_string()).or_default()
    }

    /// Read access to a log-bucketed histogram, if present.
    pub fn log_histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.log_histograms.get(name)
    }

    /// Iterates over log-bucketed histograms in name order.
    pub fn log_histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.log_histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Mutable access to a time series, creating it if absent.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Read access to a time series, if present.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates over counter `(name, value)` pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Renders all counters as a stable, sorted report (for logs and tests).
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} = {}\n", v.get()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(3.0)); // nearest rank of 4 samples
    }

    #[test]
    fn histogram_empty_is_none() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_duration_samples_in_seconds() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(480));
        assert_eq!(h.mean(), Some(0.48));
    }

    #[test]
    fn histogram_single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(7.5);
        for q in [0.0, 0.5, 1.0, -3.0, 42.0] {
            assert_eq!(h.quantile(q), Some(7.5), "q={q}");
        }
    }

    #[test]
    fn histogram_quantile_clamps_and_survives_nan() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(2.0);
        h.record(3.0);
        assert_eq!(h.quantile(-0.5), Some(1.0), "q below range clamps to p0");
        assert_eq!(h.quantile(1.5), Some(3.0), "q above range clamps to p100");
        assert_eq!(h.quantile(f64::NAN), Some(1.0), "NaN q treated as p0");
        // A NaN *sample* must not panic the sort; total order puts it last.
        h.record(f64::NAN);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert!(h.quantile(1.0).unwrap().is_nan());
    }

    #[test]
    fn histogram_duration_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_duration(0.5), None);
        assert_eq!(h.mean_duration(), None);
        h.record_duration(SimDuration::from_millis(10));
        h.record_duration(SimDuration::from_millis(30));
        assert_eq!(h.quantile_duration(0.0), Some(SimDuration::from_millis(10)));
        assert_eq!(h.quantile_duration(1.0), Some(SimDuration::from_millis(30)));
        assert_eq!(h.mean_duration(), Some(SimDuration::from_millis(20)));
        assert_eq!(h.max_duration(), Some(SimDuration::from_millis(30)));
    }

    #[test]
    fn registry_record_duration_convenience() {
        let mut m = MetricsRegistry::new();
        m.record_duration("recovery.phase.repair", SimDuration::from_millis(25));
        let h = m.histogram_mut("recovery.phase.repair");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_duration(), Some(SimDuration::from_millis(25)));
    }

    #[test]
    fn registry_counters_autocreate() {
        let mut m = MetricsRegistry::new();
        m.incr("rs.restarts");
        m.add("rs.restarts", 2);
        assert_eq!(m.counter("rs.restarts"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.render_counters(), "rs.restarts = 3\n");
    }

    #[test]
    fn gauge_set_overwrites() {
        let mut m = MetricsRegistry::new();
        m.set("ckpt.store_size", 7);
        m.set("ckpt.store_size", 3);
        assert_eq!(m.counter("ckpt.store_size"), 3);
        assert!(m.render_counters().contains("ckpt.store_size = 3"));
    }

    #[test]
    fn log_histogram_small_values_exact() {
        // Below 64 every value has its own bucket, so quantiles are exact.
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(63));
        assert_eq!(h.quantile(0.5), Some(32)); // nearest rank 32 of 0..=63
        assert_eq!(h.mean(), Some(31.5));
    }

    #[test]
    fn log_histogram_bucket_boundaries_roundtrip() {
        // Red/green boundary check: the lower and upper edge of every
        // bucket must map back to that same bucket, and adjacent edges
        // must land in adjacent buckets — off-by-one here silently
        // shifts every percentile.
        // Index 1919 is the top bucket (contains u64::MAX), so every
        // index below it has a successor to check against.
        for idx in 0..1919u32 {
            let upper = log_bucket_upper(idx);
            assert_eq!(log_bucket_index(upper), idx, "upper edge of {idx}");
            assert_eq!(
                log_bucket_index(upper + 1),
                idx + 1,
                "first value past {idx}"
            );
        }
        assert_eq!(log_bucket_index(u64::MAX), 1919);
        assert_eq!(log_bucket_upper(1919), u64::MAX);
        // Powers of two are always a bucket's lower edge.
        for shift in 6..40u32 {
            let v = 1u64 << shift;
            assert_ne!(log_bucket_index(v - 1), log_bucket_index(v), "2^{shift}");
        }
    }

    #[test]
    fn log_histogram_quantile_error_bounded() {
        // Quantile estimates must never undershoot the true sample and
        // overshoot by at most one sub-bucket width (1/32 ≈ 3.2%).
        let mut h = LogHistogram::new();
        let mut exact = Histogram::new();
        let mut x = 1u64;
        for i in 0..10_000u64 {
            // Deterministic spread across five decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1 + (x >> 32) % 10u64.pow(1 + (i % 5) as u32);
            h.record(v);
            exact.record(v as f64);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q).unwrap() as f64;
            let truth = exact.quantile(q).unwrap();
            assert!(est >= truth, "q={q}: est {est} < true {truth}");
            assert!(
                est <= truth * (1.0 + 1.0 / 32.0) + 1.0,
                "q={q}: est {est} too far above true {truth}"
            );
        }
        assert_eq!(h.quantile(0.0), Some(h.min().unwrap()));
        assert_eq!(h.quantile(1.0), Some(h.max().unwrap()));
    }

    #[test]
    fn log_histogram_durations_and_merge() {
        let mut a = LogHistogram::new();
        a.record_duration(SimDuration::from_millis(3));
        let mut b = LogHistogram::new();
        b.record_duration(SimDuration::from_millis(9));
        a.merge(&b);
        a.merge(&LogHistogram::new()); // empty merge is a no-op
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(3_000));
        assert_eq!(a.max(), Some(9_000));
        let p100 = a.quantile_duration(1.0).unwrap();
        assert_eq!(p100, SimDuration::from_millis(9), "max clamps to exact");
    }

    #[test]
    fn log_histogram_empty_is_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn registry_log_histograms() {
        let mut m = MetricsRegistry::new();
        m.log_histogram_mut("slo.latency").record(100);
        assert_eq!(m.log_histogram("slo.latency").unwrap().count(), 1);
        assert!(m.log_histogram("absent").is_none());
        let names: Vec<&str> = m.log_histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["slo.latency"]);
    }

    #[test]
    fn registry_series() {
        let mut m = MetricsRegistry::new();
        m.series_mut("tput").push(SimTime::from_micros(1), 10.0);
        assert_eq!(m.series("tput").unwrap().len(), 1);
        assert!(m.series("none").is_none());
    }
}
