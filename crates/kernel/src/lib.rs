//! Microkernel substrate of the Phoenix failure-resilient OS.
//!
//! This crate models the kernel layer of the paper's architecture (§4):
//! every server and driver is an isolated user-mode [`process::Process`]
//! with a private address space, a privilege table enforcing the principle
//! of least authority, and rendezvous-style IPC whose *abort-on-death*
//! semantics are what make transparent driver recovery possible (§6.2: "the
//! IPC rendezvous will be aborted by the kernel, and the file server marks
//! the request as pending").
//!
//! Key pieces:
//!
//! * [`types::Endpoint`] — slot + generation; restarting a driver changes
//!   its endpoint so stale messages are never misdelivered (§5.3).
//! * [`system::System`] — process table, IPC, signals, alarms, IRQ routing,
//!   and the discrete-event dispatch loop.
//! * [`system::Ctx`] — the system-call interface handed to a process while
//!   it handles an event.
//! * [`memory::MemoryPool`] — address spaces, capability-style memory
//!   grants (`safecopy`), and the I/O MMU that confines device DMA.
//! * [`privileges::Privileges`] — per-process IPC masks, kernel-call masks,
//!   device and IRQ grants.
//! * [`platform::Platform`] — the boundary to the emulated hardware bus.
//!
//! # Example
//!
//! ```
//! use phoenix_kernel::platform::NullPlatform;
//! use phoenix_kernel::privileges::Privileges;
//! use phoenix_kernel::process::{ProcEvent, Process};
//! use phoenix_kernel::system::{Ctx, System, SystemConfig};
//!
//! struct Greeter;
//! impl Process for Greeter {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
//!         if let ProcEvent::Start = event {
//!             ctx.trace(phoenix_simcore::trace::TraceLevel::Info, "hello".into());
//!         }
//!     }
//! }
//!
//! let mut sys = System::new(SystemConfig::default());
//! sys.spawn_boot("greeter", Privileges::server(), Box::new(Greeter));
//! sys.run_until_idle(&mut NullPlatform, 100);
//! assert!(sys.trace().find("hello").is_some());
//! ```

pub mod authority;
pub mod chaos;
pub mod memory;
pub mod platform;
pub mod privileges;
pub mod process;
pub mod system;
pub mod types;

pub use authority::{audit, AuthorityUsage, PolaFinding, PolaViolation, UsageRecord};
pub use chaos::{ChaosInterposer, ChaosVerdict, IpcClass, IpcEnvelope};
pub use memory::{DmaFault, GrantAccess, GrantId, IommuWindow, MemoryPool};
pub use platform::{HwCtx, HwSideEffect, NullPlatform, Platform};
pub use privileges::{IpcFilter, KernelCall, Privileges};
pub use process::{ProcEvent, Process, ProgramFactory};
pub use system::{Ctx, StepStatus, System, SystemConfig};
pub use types::{
    AlarmId, CallId, DeviceId, Endpoint, ExceptionKind, ExitReason, ExitStatus, IpcError, IrqLine,
    KernelError, KillOrigin, Message, Signal, Slot,
};
