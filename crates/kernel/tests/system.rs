//! Integration tests for the kernel's public API: IPC semantics, process
//! lifecycle, rendezvous abort on death, privileges, alarms, device I/O.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use phoenix_kernel::platform::{HwCtx, NullPlatform, Platform};
use phoenix_kernel::privileges::{IpcFilter, KernelCall, Privileges};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{
    DeviceId, Endpoint, ExceptionKind, ExitReason, IpcError, KernelError, KillOrigin, Message,
    Signal,
};
use phoenix_simcore::time::{SimDuration, SimTime};

/// A scriptable process: each delivered event is appended to a shared log,
/// and an optional reaction closure runs against the context.
type Reaction = Box<dyn FnMut(&mut Ctx<'_>, &ProcEvent)>;

struct Scripted {
    log: Rc<RefCell<Vec<String>>>,
    react: Option<Reaction>,
}

impl Scripted {
    fn new(log: Rc<RefCell<Vec<String>>>) -> Self {
        Scripted { log, react: None }
    }
    fn with_react(log: Rc<RefCell<Vec<String>>>, react: Reaction) -> Self {
        Scripted {
            log,
            react: Some(react),
        }
    }
}

impl Process for Scripted {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        let entry = match &event {
            ProcEvent::Start => "start".to_string(),
            ProcEvent::Message(m) => format!("msg:{}", m.mtype),
            ProcEvent::Request { msg, .. } => format!("req:{}", msg.mtype),
            ProcEvent::Reply { result, .. } => match result {
                Ok(m) => format!("reply:{}", m.mtype),
                Err(e) => format!("reply-err:{e:?}"),
            },
            ProcEvent::Notify { from } => format!("notify:{from}"),
            ProcEvent::Signal(s) => format!("signal:{s}"),
            ProcEvent::Alarm { token } => format!("alarm:{token}"),
            ProcEvent::Irq { line } => format!("irq:{line}"),
            ProcEvent::ChildExited(st) => format!("chld:{}:{:?}", st.name, st.reason),
        };
        self.log
            .borrow_mut()
            .push(format!("{}@{entry}", ctx.self_name()));
        if let Some(r) = &mut self.react {
            r(ctx, &event);
        }
    }
}

fn new_sys() -> System {
    System::new(SystemConfig::default())
}

fn log() -> Rc<RefCell<Vec<String>>> {
    Rc::new(RefCell::new(Vec::new()))
}

#[test]
fn start_event_delivered_on_spawn() {
    let mut sys = new_sys();
    let l = log();
    sys.spawn_boot(
        "a",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert_eq!(l.borrow().as_slice(), ["a@start"]);
}

#[test]
fn send_delivers_message_with_latency() {
    let mut sys = new_sys();
    let l = log();
    let b = sys.spawn_boot(
        "b",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.spawn_boot(
        "a",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.send(b, Message::new(42)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(l.borrow().contains(&"b@msg:42".to_string()));
    assert_eq!(
        sys.now(),
        SimTime::from_micros(2),
        "one ipc latency elapsed"
    );
}

#[test]
fn sendrec_reply_roundtrip() {
    let mut sys = new_sys();
    let l = log();
    // Echo server: replies to every request with mtype+1.
    let echo = sys.spawn_boot(
        "echo",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if let ProcEvent::Request { call, msg } = ev {
                    ctx.reply(*call, Message::new(msg.mtype + 1)).unwrap();
                }
            }),
        )),
    );
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(echo, Message::new(10)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 20);
    let lg = l.borrow();
    assert!(lg.contains(&"echo@req:10".to_string()));
    assert!(lg.contains(&"client@reply:11".to_string()));
}

#[test]
fn killing_callee_aborts_open_call_with_edeadsrcdst() {
    let mut sys = new_sys();
    let l = log();
    // The "driver" receives the request but never replies.
    let driver = sys.spawn_boot(
        "drv",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.spawn_boot(
        "fs",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(driver, Message::new(77)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 20);
    assert!(l.borrow().contains(&"drv@req:77".to_string()));
    // Now the driver dies with the call open: the kernel must abort the
    // rendezvous (§6.2).
    assert!(sys.kill_by_user(driver, Signal::Kill));
    sys.run_until_idle(&mut NullPlatform, 20);
    assert!(
        l.borrow()
            .contains(&"fs@reply-err:DeadDestination".to_string()),
        "caller must see the aborted rendezvous: {:?}",
        l.borrow()
    );
    assert_eq!(sys.metrics().counter("ipc.aborted_calls"), 1);
}

#[test]
fn request_in_flight_to_dying_process_also_aborts() {
    // The callee dies *between* send and delivery: the queued request finds
    // a stale endpoint and the kernel still aborts the call.
    let mut sys = new_sys();
    let l = log();
    let driver = sys.spawn_boot(
        "drv",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.spawn_boot(
        "fs",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(driver, Message::new(5)).unwrap();
                }
            }),
        )),
    );
    // Run only the spawn events (start of drv + start of fs), leaving the
    // request queued, then kill the driver before delivery.
    sys.step(&mut NullPlatform);
    sys.step(&mut NullPlatform);
    assert!(sys.kill_by_user(driver, Signal::Kill));
    sys.run_until_idle(&mut NullPlatform, 20);
    assert!(l
        .borrow()
        .contains(&"fs@reply-err:DeadDestination".to_string()));
    assert!(!l.borrow().contains(&"drv@req:5".to_string()));
}

#[test]
fn send_to_dead_endpoint_fails_fast() {
    let mut sys = new_sys();
    let l = log();
    let victim = sys.spawn_boot(
        "v",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    let result: Rc<RefCell<Option<Result<(), IpcError>>>> = Rc::new(RefCell::new(None));
    let result2 = result.clone();
    let sender = sys.spawn_boot(
        "s",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Notify { .. }) {
                    *result2.borrow_mut() = Some(ctx.send(victim, Message::new(1)));
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    sys.kill_by_user(victim, Signal::Kill);
    // Poke the sender via a notify from a third process.
    sys.spawn_boot(
        "poker",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.notify(sender).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert_eq!(*result.borrow(), Some(Err(IpcError::DeadDestination)));
}

#[test]
fn restarted_slot_does_not_receive_stale_messages() {
    let mut sys = new_sys();
    let l = log();
    let old = sys.spawn_boot(
        "drv",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    let sender_log = l.clone();
    let sender = sys.spawn_boot(
        "s",
        Privileges::server(),
        Box::new(Scripted::with_react(
            sender_log,
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Notify { .. }) {
                    // Send to the OLD endpoint; succeeds at send time
                    // because the process is still alive.
                    ctx.send(old, Message::new(9)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    // Trigger the send, then kill + respawn into the same slot before the
    // message is delivered.
    sys.spawn_boot(
        "poker",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.notify(sender).unwrap();
                }
            }),
        )),
    );
    // Deliver poker start + notify, which queues the message to `old`.
    sys.step(&mut NullPlatform); // poker start
    sys.step(&mut NullPlatform); // sender notify -> send queued
    sys.kill_by_user(old, Signal::Kill);
    let newep = sys.spawn_boot(
        "drv",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    assert_eq!(newep.slot(), old.slot(), "slot reused");
    assert_ne!(newep, old, "generation differs");
    sys.run_until_idle(&mut NullPlatform, 20);
    let lg = l.borrow();
    let drv_msgs: Vec<_> = lg.iter().filter(|e| e.contains("drv@msg")).collect();
    assert!(
        drv_msgs.is_empty(),
        "stale message must be dropped: {drv_msgs:?}"
    );
    assert!(sys.metrics().counter("ipc.stale_drops") >= 1);
}

#[test]
fn notify_and_alarm_delivery() {
    let mut sys = new_sys();
    let l = log();
    sys.spawn_boot(
        "t",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.set_alarm(SimDuration::from_millis(5), 99).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(l.borrow().contains(&"t@alarm:99".to_string()));
    assert_eq!(sys.now(), SimTime::from_micros(5_000));
}

#[test]
fn cancelled_alarm_does_not_fire() {
    let mut sys = new_sys();
    let l = log();
    sys.spawn_boot(
        "t",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    let id = ctx.set_alarm(SimDuration::from_millis(5), 1).unwrap();
                    assert!(ctx.cancel_alarm(id));
                    ctx.set_alarm(SimDuration::from_millis(1), 2).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    let lg = l.borrow();
    assert!(lg.contains(&"t@alarm:2".to_string()));
    assert!(!lg.contains(&"t@alarm:1".to_string()));
}

#[test]
fn death_cancels_pending_alarms() {
    let mut sys = new_sys();
    let l = log();
    let t = sys.spawn_boot(
        "t",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.set_alarm(SimDuration::from_millis(5), 1).unwrap();
                }
            }),
        )),
    );
    sys.step(&mut NullPlatform); // start (sets alarm)
    sys.kill_by_user(t, Signal::Kill);
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(!l.borrow().iter().any(|e| e.contains("alarm")));
}

#[test]
fn sigterm_is_catchable_sigkill_is_not() {
    let mut sys = new_sys();
    let l = log();
    let t = sys.spawn_boot(
        "t",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    sys.kill_by_user(t, Signal::Term);
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(l.borrow().contains(&"t@signal:SIGTERM".to_string()));
    assert!(
        sys.is_live(t),
        "SIGTERM alone does not kill our scripted process"
    );
    sys.kill_by_user(t, Signal::Kill);
    assert!(!sys.is_live(t));
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(
        !l.borrow().iter().any(|e| e.contains("SIGKILL")),
        "SIGKILL never delivered"
    );
}

#[test]
fn ipc_filter_enforced() {
    let mut sys = new_sys();
    let l = log();
    let secret = sys.spawn_boot(
        "secret",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    let mut p = Privileges::server();
    p.ipc = IpcFilter::named(["rs"]); // not allowed to reach "secret"
    let result: Rc<RefCell<Option<Result<(), IpcError>>>> = Rc::new(RefCell::new(None));
    let result2 = result.clone();
    sys.spawn_boot(
        "restricted",
        p,
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    *result2.borrow_mut() = Some(ctx.send(secret, Message::new(1)));
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert_eq!(*result.borrow(), Some(Err(IpcError::NotPermitted)));
    assert!(!l.borrow().contains(&"secret@msg:1".to_string()));
    assert_eq!(sys.metrics().counter("ipc.denied"), 1);
}

#[test]
fn kernel_call_mask_enforced() {
    let mut sys = new_sys();
    let l = log();
    let errs: Rc<RefCell<Vec<KernelError>>> = Rc::new(RefCell::new(Vec::new()));
    let errs2 = errs.clone();
    let mut p = Privileges::user();
    p.ipc = IpcFilter::AllowAll;
    sys.spawn_boot(
        "app",
        p,
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    let mut es = errs2.borrow_mut();
                    es.push(ctx.devio_read(DeviceId(0), 0).unwrap_err());
                    es.push(ctx.sys_spawn("x", None).unwrap_err());
                    es.push(ctx.sys_kill(ctx.self_endpoint(), Signal::Kill).unwrap_err());
                    es.push(ctx.irq_enable(3).unwrap_err());
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert_eq!(
        errs.borrow().as_slice(),
        [
            KernelError::CallNotPermitted,
            KernelError::CallNotPermitted,
            KernelError::CallNotPermitted,
            KernelError::CallNotPermitted,
        ]
    );
}

#[test]
fn exception_death_reports_reason_to_parent() {
    // PM-style parent: spawns a child program that dies of an MMU fault.
    let mut sys = new_sys();
    let l = log();
    sys.register_program(
        "buggy",
        Privileges::server(),
        Box::new(|| Box::new(Crasher)),
    );
    struct Crasher;
    impl Process for Crasher {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            if matches!(event, ProcEvent::Start) {
                ctx.die_of_exception(ExceptionKind::MmuFault);
            }
        }
    }
    sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sys_spawn("buggy", None).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(
        l.borrow()
            .iter()
            .any(|e| e.starts_with("pm@chld:buggy:Exception(MmuFault)")),
        "{:?}",
        l.borrow()
    );
}

#[test]
fn voluntary_exit_and_panic_reach_parent_with_reason() {
    let mut sys = new_sys();
    let l = log();
    struct Exiter(i32);
    impl Process for Exiter {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            if matches!(event, ProcEvent::Start) {
                if self.0 == 0 {
                    ctx.panic("internal inconsistency");
                } else {
                    ctx.exit(self.0);
                }
            }
        }
    }
    sys.register_program(
        "exiter",
        Privileges::server(),
        Box::new(|| Box::new(Exiter(3))),
    );
    sys.register_program(
        "panicker",
        Privileges::server(),
        Box::new(|| Box::new(Exiter(0))),
    );
    sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sys_spawn("exiter", None).unwrap();
                    ctx.sys_spawn("panicker", None).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 20);
    let lg = l.borrow();
    assert!(lg.iter().any(|e| e.contains("chld:exiter:Exited(3)")));
    assert!(lg.iter().any(|e| e.contains("chld:panicker:Panicked")));
}

#[test]
fn program_versions_support_dynamic_update() {
    let mut sys = new_sys();
    let l = log();
    struct Version(u32);
    impl Process for Version {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            if matches!(event, ProcEvent::Start) {
                let v = self.0;
                ctx.trace(
                    phoenix_simcore::trace::TraceLevel::Info,
                    format!("running v{v}"),
                );
            }
        }
    }
    sys.register_program(
        "drv",
        Privileges::server(),
        Box::new(|| Box::new(Version(1))),
    );
    sys.update_program("drv", Box::new(|| Box::new(Version(2))))
        .unwrap();
    assert_eq!(sys.program_version("drv"), Some(2));
    let spawned: Rc<RefCell<Vec<Endpoint>>> = Rc::new(RefCell::new(Vec::new()));
    let spawned2 = spawned.clone();
    sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(Scripted::with_react(
            l,
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    spawned2
                        .borrow_mut()
                        .push(ctx.sys_spawn("drv", None).unwrap());
                    spawned2
                        .borrow_mut()
                        .push(ctx.sys_spawn("drv", Some(1)).unwrap());
                    assert_eq!(
                        ctx.sys_spawn("drv", Some(3)),
                        Err(KernelError::NoSuchProgram)
                    );
                    assert_eq!(ctx.sys_spawn("nope", None), Err(KernelError::NoSuchProgram));
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    let eps = spawned.borrow();
    assert_eq!(sys.version_of(eps[0]), Some(2), "default runs latest");
    assert_eq!(sys.version_of(eps[1]), Some(1), "explicit version honored");
    assert_eq!(sys.program_of(eps[0]), Some("drv"));
    assert!(sys.trace().find("running v2").is_some());
}

#[test]
fn stuck_process_drops_events_until_killed() {
    let mut sys = new_sys();
    let l = log();
    let loops = sys.spawn_boot(
        "loopy",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.hang();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(sys.is_live(loops));
    assert!(sys.is_stuck(loops));
    // Messages to a stuck process vanish into its (never-drained) mailbox.
    sys.spawn_boot(
        "s",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.send(loops, Message::new(8)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(!l.borrow().contains(&"loopy@msg:8".to_string()));
    assert_eq!(sys.metrics().counter("ipc.stuck_drops"), 1);
    // SIGKILL still works on a stuck process (that is how RS recovers it).
    assert!(sys.kill_by_user(loops, Signal::Kill));
    assert!(!sys.is_live(loops));
}

#[test]
fn reply_to_dead_caller_returns_error() {
    let mut sys = new_sys();
    let l = log();
    let call_store: Rc<RefCell<Option<phoenix_kernel::types::CallId>>> =
        Rc::new(RefCell::new(None));
    let cs = call_store.clone();
    let server = sys.spawn_boot(
        "server",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| match ev {
                ProcEvent::Request { call, .. } => {
                    // Hold the reply until poked by a notify.
                    *cs.borrow_mut() = Some(*call);
                }
                ProcEvent::Notify { .. } => {
                    let call = cs.borrow_mut().take().unwrap();
                    assert_eq!(
                        ctx.reply(call, Message::new(0)),
                        Err(IpcError::DeadDestination)
                    );
                }
                _ => {}
            }),
        )),
    );
    let client = sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(server, Message::new(1)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    sys.kill_by_user(client, Signal::Kill);
    sys.run_until_idle(&mut NullPlatform, 10);
    // Poke the server to attempt the reply.
    sys.spawn_boot(
        "poker",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.notify(server).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
}

#[test]
fn double_reply_rejected() {
    let mut sys = new_sys();
    let l = log();
    let echo = sys.spawn_boot(
        "echo",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if let ProcEvent::Request { call, .. } = ev {
                    ctx.reply(*call, Message::new(1)).unwrap();
                    assert_eq!(ctx.reply(*call, Message::new(2)), Err(IpcError::NoSuchCall));
                }
            }),
        )),
    );
    sys.spawn_boot(
        "c",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(echo, Message::new(0)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
}

#[test]
fn reply_by_third_party_rejected() {
    let mut sys = new_sys();
    let l = log();
    let shared_call: Rc<RefCell<Option<phoenix_kernel::types::CallId>>> =
        Rc::new(RefCell::new(None));
    let sc = shared_call.clone();
    let callee = sys.spawn_boot(
        "callee",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |_ctx, ev| {
                if let ProcEvent::Request { call, .. } = ev {
                    *sc.borrow_mut() = Some(*call);
                }
            }),
        )),
    );
    sys.spawn_boot(
        "caller",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sendrec(callee, Message::new(0)).unwrap();
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    let sc2 = shared_call.clone();
    sys.spawn_boot(
        "intruder",
        Privileges::server(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    let call = sc2.borrow().unwrap();
                    assert_eq!(
                        ctx.reply(call, Message::new(666)),
                        Err(IpcError::NoSuchCall)
                    );
                }
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(!l.borrow().iter().any(|e| e.contains("reply:666")));
}

/// A one-register test device: reads return the last written value; writing
/// raises IRQ 4 and schedules a timer that raises IRQ 4 again.
struct TestDevice {
    value: u32,
    dev: DeviceId,
}

impl Platform for TestDevice {
    fn io_read(&mut self, dev: DeviceId, _reg: u16, _ctx: &mut HwCtx<'_>) -> u32 {
        assert_eq!(dev, self.dev);
        self.value
    }
    fn io_write(&mut self, dev: DeviceId, _reg: u16, value: u32, ctx: &mut HwCtx<'_>) {
        assert_eq!(dev, self.dev);
        self.value = value;
        ctx.raise_irq(4);
        let at = ctx.now() + SimDuration::from_millis(1);
        ctx.set_timer(at, (u64::from(dev.0) << 48) | 7);
    }
    fn timer(&mut self, dev: DeviceId, token: u64, ctx: &mut HwCtx<'_>) {
        assert_eq!(dev, self.dev);
        assert_eq!(token, 7);
        ctx.raise_irq(4);
    }
    fn external(&mut self, _channel: u64, _payload: Vec<u8>, _ctx: &mut HwCtx<'_>) {}
    fn has_device(&self, dev: DeviceId) -> bool {
        dev == self.dev
    }
}

#[test]
fn devio_and_irq_routing() {
    let mut sys = new_sys();
    let mut dev = TestDevice {
        value: 0,
        dev: DeviceId(1),
    };
    let l = log();
    sys.spawn_boot(
        "drv",
        Privileges::driver(DeviceId(1), 4),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| match ev {
                ProcEvent::Start => {
                    ctx.irq_enable(4).unwrap();
                    ctx.devio_write(DeviceId(1), 0, 0xBEEF).unwrap();
                }
                ProcEvent::Irq { .. } => {
                    let v = ctx.devio_read(DeviceId(1), 0).unwrap();
                    assert_eq!(v, 0xBEEF);
                }
                _ => {}
            }),
        )),
    );
    sys.run_until_idle(&mut dev, 20);
    let irqs = l.borrow().iter().filter(|e| e.contains("irq:4")).count();
    assert_eq!(irqs, 2, "one immediate IRQ + one from the device timer");
    assert_eq!(sys.metrics().counter("irq.delivered"), 2);
}

#[test]
fn devio_denied_for_wrong_device() {
    let mut sys = new_sys();
    let mut dev = TestDevice {
        value: 0,
        dev: DeviceId(1),
    };
    let l = log();
    sys.spawn_boot(
        "drv",
        Privileges::driver(DeviceId(2), 9), // privileges for a different device
        Box::new(Scripted::with_react(
            l,
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    assert_eq!(
                        ctx.devio_read(DeviceId(1), 0),
                        Err(KernelError::DeviceNotPermitted)
                    );
                    assert_eq!(
                        ctx.devio_read(DeviceId(2), 0),
                        Err(KernelError::NoSuchDevice),
                        "allowed by privilege but absent from the bus"
                    );
                    assert_eq!(ctx.irq_enable(4), Err(KernelError::IrqNotPermitted));
                }
            }),
        )),
    );
    sys.run_until_idle(&mut dev, 10);
}

#[test]
fn irq_after_driver_death_is_unhandled() {
    let mut sys = new_sys();
    let mut dev = TestDevice {
        value: 0,
        dev: DeviceId(1),
    };
    let l = log();
    let drv = sys.spawn_boot(
        "drv",
        Privileges::driver(DeviceId(1), 4),
        Box::new(Scripted::with_react(
            l,
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.irq_enable(4).unwrap();
                    // Write schedules a timer that raises IRQ 4 in 1ms.
                    ctx.devio_write(DeviceId(1), 0, 1).unwrap();
                }
            }),
        )),
    );
    sys.step(&mut dev); // start: irq registered, immediate IRQ queued, timer set
    sys.kill_by_user(drv, Signal::Kill);
    sys.run_until_idle(&mut dev, 20);
    // Both the immediate IRQ (stale delivery) and the timer IRQ (no
    // handler) are lost rather than misdelivered.
    assert_eq!(sys.metrics().counter("irq.unhandled"), 1);
    assert!(sys.metrics().counter("ipc.stale_drops") >= 1);
}

#[test]
fn grants_work_through_ctx() {
    let mut sys = new_sys();
    let l = log();
    let consumer_log = l.clone();
    struct Producer {
        peer: Option<Endpoint>,
    }
    impl Process for Producer {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
            match event {
                ProcEvent::Message(m) if m.mtype == 1 => {
                    // Peer announces itself; write data, grant, and tell it.
                    let peer = m.source;
                    ctx.mem_write(64, b"payload!").unwrap();
                    let g = ctx
                        .grant_create(peer, 64, 8, phoenix_kernel::memory::GrantAccess::Read)
                        .unwrap();
                    ctx.send(peer, Message::new(2).with_param(0, u64::from(g.0)))
                        .unwrap();
                    self.peer = Some(peer);
                }
                _ => {}
            }
        }
    }
    let producer = sys.spawn_boot(
        "producer",
        Privileges::server(),
        Box::new(Producer { peer: None }),
    );
    sys.spawn_boot(
        "consumer",
        Privileges::server(),
        Box::new(Scripted::with_react(
            consumer_log,
            Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    ctx.send(producer, Message::new(1)).unwrap();
                }
                ProcEvent::Message(m) if m.mtype == 2 => {
                    let g = phoenix_kernel::memory::GrantId(m.param(0) as u32);
                    ctx.safecopy_from(producer, g, 0, 0, 8).unwrap();
                    let data = ctx.mem_read(0, 8).unwrap();
                    assert_eq!(&data, b"payload!");
                    ctx.trace(phoenix_simcore::trace::TraceLevel::Info, "copied".into());
                }
                _ => {}
            }),
        )),
    );
    sys.run_until_idle(&mut NullPlatform, 20);
    assert!(sys.trace().find("copied").is_some());
}

#[test]
fn privctl_updates_ipc_filter() {
    let mut sys = new_sys();
    let l = log();
    let target = sys.spawn_boot(
        "target",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    let victim = sys.spawn_boot(
        "victim",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.spawn_boot(
        "pm",
        // The real PM no longer carries PrivCtl (the audit showed it
        // unused); this test exercises the call itself, so grant it here.
        Privileges::process_manager()
            .with_calls([KernelCall::Spawn, KernelCall::Kill, KernelCall::PrivCtl])
            .with_ipc(IpcFilter::named(["rs", "target"])),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sys_set_ipc_filter(
                        target,
                        IpcFilter::AllowNamed(BTreeSet::from(["pm".to_string()])),
                    )
                    .unwrap();
                    // Now poke target so it tries to message victim.
                    ctx.send(target, Message::new(50)).unwrap();
                }
            }),
        )),
    );
    // Target tries to send to victim whenever it gets mtype 50.
    // We need reaction logic on target; respawn pattern: instead check via
    // metrics that a denied send occurs. Simpler: use a fresh system.
    let _ = victim;
    sys.run_until_idle(&mut NullPlatform, 10);
    // The filter was applied without error; enforcement itself is covered
    // by `ipc_filter_enforced`.
}

#[test]
fn exit_reason_kill_origin_distinguished() {
    // Class 3 (killed by user) vs class 2-style system kill must be
    // distinguishable in the exit status the parent receives.
    let mut sys = new_sys();
    let l = log();
    struct Idle;
    impl Process for Idle {
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _event: ProcEvent) {}
    }
    sys.register_program("d", Privileges::server(), Box::new(|| Box::new(Idle)));
    let pm = sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(Scripted::with_react(
            l.clone(),
            Box::new(|ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    ctx.sys_spawn("d", None).unwrap();
                }
            }),
        )),
    );
    let _ = pm;
    sys.run_until_idle(&mut NullPlatform, 10);
    let d = sys.endpoint_by_name("d").unwrap();
    sys.kill_by_user(d, Signal::Kill);
    sys.run_until_idle(&mut NullPlatform, 10);
    assert!(l.borrow().iter().any(|e| e.contains(&format!(
        "chld:d:{:?}",
        ExitReason::Signaled(Signal::Kill, KillOrigin::User)
    ))));
}

#[test]
fn run_until_advances_clock_without_events() {
    let mut sys = new_sys();
    sys.run_until(&mut NullPlatform, SimTime::from_micros(5_000_000));
    assert_eq!(sys.now(), SimTime::from_micros(5_000_000));
}

#[test]
fn live_processes_lists_current_incarnations() {
    let mut sys = new_sys();
    let l = log();
    let a = sys.spawn_boot(
        "a",
        Privileges::server(),
        Box::new(Scripted::new(l.clone())),
    );
    sys.spawn_boot("b", Privileges::server(), Box::new(Scripted::new(l)));
    sys.run_until_idle(&mut NullPlatform, 10);
    assert_eq!(sys.live_processes().len(), 2);
    sys.kill_by_user(a, Signal::Kill);
    assert_eq!(sys.live_processes().len(), 1);
    assert_eq!(sys.endpoint_by_name("a"), None);
    assert!(sys.endpoint_by_name("b").is_some());
}
