//! A purpose-built AST layer for the analyzer's program-analysis passes.
//!
//! The container this repo builds in has no crate registry, so `syn` is
//! unavailable; this module implements the *subset* of Rust structure
//! the conformance and reachability passes need — a real tokenizer
//! (strings, chars, lifetimes, nested block comments, doc comments) and
//! an item-level scanner (modules, impl blocks, functions with body
//! token ranges, consts with attached doc comments, `#[cfg(test)]`
//! tracking) — instead of substring matching. Everything downstream of
//! here reasons over tokens, never raw lines, which closes the lexical
//! linter's documented blind spots (multi-line expressions, patterns
//! quoted inside strings or comments).
//!
//! What it deliberately does not do: expression parsing, type
//! resolution, or macro expansion. The passes that build on it document
//! the approximations they layer on top (name-based call resolution in
//! [`crate::reach`], token-context classification in
//! [`crate::conformance`]).

use std::fmt;

/// One lexical token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds. Punctuation that the passes dispatch on gets its own
/// variant; everything else is folded into `Punct`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer / float literal (value kept as written).
    Number(String),
    /// `::`
    PathSep,
    /// `=>`
    FatArrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `(` `)` `{` `}` `[` `]`
    Open(char),
    Close(char),
    /// `!` (macro bang or negation)
    Bang,
    /// `.`
    Dot,
    /// `#`
    Pound,
    /// Any other single punctuation character.
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) | TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::PathSep => write!(f, "::"),
            TokenKind::FatArrow => write!(f, "=>"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Open(c) | TokenKind::Close(c) | TokenKind::Punct(c) => write!(f, "{c}"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Pound => write!(f, "#"),
        }
    }
}

/// Tokenizes Rust source. String/char/lifetime-aware; comments are
/// dropped here (doc comments and pragmas are recovered line-wise by the
/// item scanner, which keeps the raw source alongside the tokens).
pub fn tokenize(source: &str) -> Vec<Token> {
    let b = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments); skip to newline.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting-aware.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i..].starts_with(b"/*") {
                        depth += 1;
                        i += 2;
                    } else if b[i..].starts_with(b"*/") {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal; honor escapes, count newlines.
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'r' if b.get(i + 1) == Some(&b'"') || b[i..].starts_with(b"r#") => {
                // Raw string r"..." / r#"..."# / r##"..."## (also covers
                // the r#ident raw-identifier case by falling through).
                let mut j = i + 1;
                let mut hashes = 0;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    j += 1;
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    while j < b.len() && !b[j..].starts_with(&closer) {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    i = (j + closer.len()).min(b.len());
                } else {
                    // r#ident — raw identifier.
                    let start = j;
                    let mut k = start;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    out.push(Token {
                        kind: TokenKind::Ident(String::from_utf8_lossy(&b[start..k]).into_owned()),
                        line,
                    });
                    i = k;
                }
            }
            b'\'' => {
                // Lifetime ('a) vs char literal ('x', '\n', '\u{..}').
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    // Lifetime: skip the tick and the identifier.
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                } else {
                    // Char literal; honor escapes.
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                    && !(b[i] == b'.' && b.get(i + 1) == Some(&b'.'))
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Number(String::from_utf8_lossy(&b[start..i]).into_owned()),
                    line,
                });
            }
            b':' if b.get(i + 1) == Some(&b':') => {
                out.push(Token {
                    kind: TokenKind::PathSep,
                    line,
                });
                i += 2;
            }
            b'=' if b.get(i + 1) == Some(&b'>') => {
                out.push(Token {
                    kind: TokenKind::FatArrow,
                    line,
                });
                i += 2;
            }
            b'=' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::EqEq,
                    line,
                });
                i += 2;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    kind: TokenKind::NotEq,
                    line,
                });
                i += 2;
            }
            b'(' | b'{' | b'[' => {
                out.push(Token {
                    kind: TokenKind::Open(c as char),
                    line,
                });
                i += 1;
            }
            b')' | b'}' | b']' => {
                out.push(Token {
                    kind: TokenKind::Close(c as char),
                    line,
                });
                i += 1;
            }
            b'!' => {
                out.push(Token {
                    kind: TokenKind::Bang,
                    line,
                });
                i += 1;
            }
            b'.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    line,
                });
                i += 1;
            }
            b'#' => {
                out.push(Token {
                    kind: TokenKind::Pound,
                    line,
                });
                i += 1;
            }
            c => {
                out.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// A function item: where it lives, how it can be addressed, and the
/// token range of its body.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`Ctx`, `ReincarnationServer`).
    pub impl_type: Option<String>,
    /// Enclosing inline `mod` path segments (not the file's own module).
    pub mod_path: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body (inside the outer braces),
    /// half-open. Empty for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// Whether a `// analyze:recovery-root` marker sits in the comment
    /// block directly above the item.
    pub recovery_root: bool,
    /// Whether the item (or an enclosing mod/impl) is `#[cfg(test)]`.
    pub cfg_test: bool,
}

/// A `pub const NAME: TYPE = ...` item with its attached doc comment.
#[derive(Clone, Debug)]
pub struct ConstItem {
    pub name: String,
    /// Declared type as written (`u32`, `u64`, `usize`).
    pub ty: String,
    /// Enclosing inline `mod` path segments.
    pub mod_path: Vec<String>,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Doc-comment lines (`///` content, leading space trimmed) directly
    /// above the item, in order.
    pub docs: Vec<String>,
}

/// A `mod name` item (inline or out-of-line) with its doc comment.
#[derive(Clone, Debug)]
pub struct ModItem {
    pub name: String,
    pub line: usize,
    /// `///` lines above the declaration plus `//!` lines just inside.
    pub docs: Vec<String>,
}

/// Item-level view of one source file.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    pub tokens: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub consts: Vec<ConstItem>,
    pub mods: Vec<ModItem>,
    /// Lines (1-based) whose raw text carries an `analyze:allow(...)`
    /// pragma, with the raw line text for reason extraction.
    pub pragma_lines: Vec<(usize, String)>,
}

/// Comment metadata gathered per source line before tokenizing.
struct LineNotes {
    /// `///` doc text per line (None when the line is not a doc comment).
    doc: Vec<Option<String>>,
    /// Whether the line is comment-only or blank (doc or plain).
    comment_or_blank: Vec<bool>,
    /// Whether the line's comment text contains `analyze:recovery-root`.
    root_marker: Vec<bool>,
    /// Raw text of lines containing `analyze:allow(`.
    pragmas: Vec<(usize, String)>,
}

fn scan_lines(source: &str) -> LineNotes {
    let mut doc = Vec::new();
    let mut comment_or_blank = Vec::new();
    let mut root_marker = Vec::new();
    let mut pragmas = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let t = raw.trim();
        let is_doc = t.starts_with("///") && !t.starts_with("////");
        doc.push(is_doc.then(|| {
            t.trim_start_matches("///")
                .strip_prefix(' ')
                .unwrap_or(t.trim_start_matches("///"))
                .to_string()
        }));
        comment_or_blank.push(t.is_empty() || t.starts_with("//"));
        root_marker.push(t.starts_with("//") && t.contains("analyze:recovery-root"));
        if raw.contains("analyze:allow(") {
            pragmas.push((i + 1, raw.to_string()));
        }
    }
    LineNotes {
        doc,
        comment_or_blank,
        root_marker,
        pragmas,
    }
}

/// Scope kinds tracked while walking the token stream.
#[derive(Clone, Debug, PartialEq)]
enum Scope {
    Mod(String, bool),  // name, cfg_test
    Impl(String, bool), // type name, cfg_test
    Other(bool),        // any other brace (fn body handled separately)
}

/// Parses one file into its item-level AST.
pub fn parse_file(source: &str) -> FileAst {
    let notes = scan_lines(source);
    let tokens = tokenize(source);
    let mut fns = Vec::new();
    let mut consts = Vec::new();
    let mut mods = Vec::new();

    // Doc comment block directly above line `l` (1-based).
    let docs_above = |l: usize| -> Vec<String> {
        let mut out = Vec::new();
        let mut i = l.saturating_sub(1); // index of line above, 1-based
        while i >= 1 {
            let idx = i - 1;
            match &notes.doc[idx] {
                Some(d) => out.push(d.clone()),
                // Plain comments and blank lines between the doc block
                // and the item are skipped; code ends the walk.
                None if notes.comment_or_blank[idx] => {}
                None => break,
            }
            i -= 1;
        }
        out.reverse();
        out
    };
    let root_above = |l: usize| -> bool {
        let mut i = l.saturating_sub(1);
        while i >= 1 && notes.comment_or_blank[i - 1] {
            if notes.root_marker[i - 1] {
                return true;
            }
            i -= 1;
        }
        false
    };

    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0;
    // Attributes seen since the last item at this nesting level; only
    // cfg(test) is tracked.
    let mut pending_cfg_test = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Pound
                if matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::Open('['))
                ) =>
            {
                // Attribute: scan its bracket group, note cfg(test).
                let mut depth = 0;
                let mut is_cfg_test = false;
                let mut j = i + 1;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Open('[') => depth += 1,
                        TokenKind::Close(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident(s) if s == "cfg" => {
                            if let Some(TokenKind::Open('(')) = tokens.get(j + 1).map(|t| &t.kind) {
                                if tokens.get(j + 2).and_then(|t| t.kind.ident()) == Some("test") {
                                    is_cfg_test = true;
                                }
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                pending_cfg_test |= is_cfg_test;
                i = j + 1;
            }
            TokenKind::Ident(kw) if kw == "mod" => {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.kind.ident())
                    .unwrap_or("")
                    .to_string();
                let line = tokens[i].line;
                if !name.is_empty() {
                    mods.push(ModItem {
                        name: name.clone(),
                        line,
                        docs: docs_above(line),
                    });
                }
                // Inline mod? The `{` follows the name (possibly after
                // nothing else — `mod x;` is out-of-line).
                match tokens.get(i + 2).map(|t| &t.kind) {
                    Some(TokenKind::Open('{')) => {
                        stack.push(Scope::Mod(name, pending_cfg_test));
                        i += 3;
                    }
                    _ => i += 2,
                }
                pending_cfg_test = false;
            }
            TokenKind::Ident(kw) if kw == "impl" => {
                // Find the type name: last path segment before `{` (after
                // `for` if present), skipping generics.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut last_ident = String::new();
                let mut saw_for = false;
                let mut saw_where = false;
                let mut after_for_ident = String::new();
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Open('{') if angle <= 0 => break,
                        TokenKind::Punct(';') => break,
                        TokenKind::Ident(s) if s == "for" => saw_for = true,
                        // A where clause ends the type-position idents.
                        TokenKind::Ident(s) if s == "where" => saw_where = true,
                        TokenKind::Ident(s) if angle <= 0 && !saw_where => {
                            if saw_for {
                                after_for_ident = s.clone();
                            } else {
                                last_ident = s.clone();
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let ty = if saw_for { after_for_ident } else { last_ident };
                if j < tokens.len() && tokens[j].kind == TokenKind::Open('{') {
                    stack.push(Scope::Impl(ty, pending_cfg_test));
                    i = j + 1;
                } else {
                    i = j + 1;
                }
                pending_cfg_test = false;
            }
            TokenKind::Ident(kw) if kw == "fn" => {
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.kind.ident())
                    .unwrap_or("")
                    .to_string();
                let line = tokens[i].line;
                // Scan to the body `{` at angle-depth 0 (skips generics,
                // args, return type) or a `;` (trait declaration).
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut paren = 0i32;
                let mut body = 0..0;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle = (angle - 1).max(0),
                        TokenKind::Open('(') | TokenKind::Open('[') => paren += 1,
                        TokenKind::Close(')') | TokenKind::Close(']') => paren -= 1,
                        TokenKind::Open('{') if paren == 0 => {
                            // Body: match braces to find the end.
                            let start = j + 1;
                            let mut depth = 1;
                            let mut k = start;
                            while k < tokens.len() && depth > 0 {
                                match &tokens[k].kind {
                                    TokenKind::Open('{') => depth += 1,
                                    TokenKind::Close('}') => depth -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            body = start..k.saturating_sub(1);
                            j = k;
                            break;
                        }
                        TokenKind::Punct(';') if paren == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let enclosing_test = stack.iter().any(|s| {
                    matches!(
                        s,
                        Scope::Mod(_, true) | Scope::Impl(_, true) | Scope::Other(true)
                    )
                });
                let impl_type = stack.iter().rev().find_map(|s| match s {
                    Scope::Impl(t, _) => Some(t.clone()),
                    _ => None,
                });
                let mod_path: Vec<String> = stack
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m, _) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                if !name.is_empty() {
                    fns.push(FnItem {
                        name,
                        impl_type,
                        mod_path,
                        line,
                        body,
                        recovery_root: root_above(line),
                        cfg_test: pending_cfg_test || enclosing_test,
                    });
                }
                pending_cfg_test = false;
                i = j;
            }
            TokenKind::Ident(kw) if kw == "const" => {
                // `[pub] const NAME: TYPE = ...;`
                let name = tokens
                    .get(i + 1)
                    .and_then(|t| t.kind.ident())
                    .unwrap_or("")
                    .to_string();
                let line = tokens[i].line;
                let ty = if matches!(
                    tokens.get(i + 2).map(|t| &t.kind),
                    Some(TokenKind::Punct(':'))
                ) {
                    tokens
                        .get(i + 3)
                        .and_then(|t| t.kind.ident())
                        .unwrap_or("")
                        .to_string()
                } else {
                    String::new()
                };
                let enclosing_test = stack.iter().any(|s| {
                    matches!(
                        s,
                        Scope::Mod(_, true) | Scope::Impl(_, true) | Scope::Other(true)
                    )
                });
                if !name.is_empty() && !ty.is_empty() && !enclosing_test && !pending_cfg_test {
                    consts.push(ConstItem {
                        name,
                        ty,
                        mod_path: stack
                            .iter()
                            .filter_map(|s| match s {
                                Scope::Mod(m, _) => Some(m.clone()),
                                _ => None,
                            })
                            .collect(),
                        line,
                        docs: docs_above(line),
                    });
                }
                pending_cfg_test = false;
                i += 2;
            }
            TokenKind::Open('{') => {
                stack.push(Scope::Other(pending_cfg_test));
                pending_cfg_test = false;
                i += 1;
            }
            TokenKind::Close('}') => {
                stack.pop();
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }

    FileAst {
        tokens,
        fns,
        consts,
        mods,
        pragma_lines: notes.pragmas,
    }
}

/// Whether line `l` (1-based) carries — or sits directly below a comment
/// block carrying — an `analyze:allow(rule)` pragma, given the raw
/// source. Mirrors the lexical linter's suppression semantics so both
/// layers agree about what an allow covers.
pub fn allowed_at(source: &str, l: usize, rule: &str) -> bool {
    let needle = format!("analyze:allow({rule})");
    let lines: Vec<&str> = source.lines().collect();
    if l == 0 || l > lines.len() {
        return false;
    }
    if lines[l - 1].contains(&needle) {
        return true;
    }
    // Walk the contiguous comment/blank block directly above.
    let mut i = l - 1; // 0-based index of the line above
    while i >= 1 {
        let t = lines[i - 1].trim();
        if t.is_empty() || t.starts_with("//") {
            if t.contains(&needle) {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_skips_strings_comments_lifetimes() {
        let src = r#"
// a comment with .unwrap() inside
fn f<'a>(x: &'a str) -> bool {
    let s = "not .unwrap() either";
    let c = '\'';
    x.is_empty() /* block .unwrap() */
}
"#;
        let toks = tokenize(src);
        let unwraps = toks
            .iter()
            .filter(|t| t.kind.ident() == Some("unwrap"))
            .count();
        assert_eq!(
            unwraps, 0,
            "patterns inside strings/comments are not tokens"
        );
        assert!(toks.iter().any(|t| t.kind.ident() == Some("is_empty")));
    }

    #[test]
    fn parses_fns_with_impl_and_mod_context() {
        let src = "
mod outer {
    struct S;
    impl S {
        fn method(&self) { helper(); }
    }
    fn helper() {}
}
";
        let ast = parse_file(src);
        assert_eq!(ast.fns.len(), 2);
        let m = &ast.fns[0];
        assert_eq!(m.name, "method");
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        assert_eq!(m.mod_path, vec!["outer".to_string()]);
        let h = &ast.fns[1];
        assert_eq!(h.name, "helper");
        assert_eq!(h.impl_type, None);
    }

    #[test]
    fn cfg_test_marks_items_and_enclosing_mods() {
        let src = "
fn shipped() {}
#[cfg(test)]
fn gated() {}
#[cfg(test)]
mod tests {
    fn inner() {}
}
fn after() {}
";
        let ast = parse_file(src);
        let by_name = |n: &str| ast.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("shipped").cfg_test);
        assert!(by_name("gated").cfg_test);
        assert!(by_name("inner").cfg_test);
        assert!(
            !by_name("after").cfg_test,
            "scanning resumes after a test mod"
        );
    }

    #[test]
    fn recovery_root_marker_attaches_to_next_fn() {
        let src = "
// analyze:recovery-root
fn entry() {}
fn not_root() {}
";
        let ast = parse_file(src);
        assert!(ast.fns[0].recovery_root);
        assert!(!ast.fns[1].recovery_root);
    }

    #[test]
    fn consts_capture_docs_and_type() {
        let src = "
pub mod ds {
    /// Publish a key.
    /// proto: request, reply=ACK
    pub const PUBLISH: u32 = 0x0600;
    pub const STATUS: u64 = 0;
}
";
        let ast = parse_file(src);
        assert_eq!(ast.consts.len(), 2);
        let p = &ast.consts[0];
        assert_eq!(p.name, "PUBLISH");
        assert_eq!(p.ty, "u32");
        assert_eq!(p.mod_path, vec!["ds".to_string()]);
        assert_eq!(p.docs.len(), 2);
        assert!(p.docs[1].starts_with("proto:"));
    }

    #[test]
    fn allowed_at_matches_same_line_and_block_above() {
        let src = "fn f() {\n    // analyze:allow(panic-reach): invariant\n    x.unwrap();\n    y.unwrap(); // analyze:allow(panic-reach): ok\n    z.unwrap();\n}\n";
        assert!(allowed_at(src, 3, "panic-reach"));
        assert!(allowed_at(src, 4, "panic-reach"));
        assert!(!allowed_at(src, 5, "panic-reach"));
    }
}
