//! Network-path stress: packet loss on the wire combined with driver
//! kills, wedge-prone hardware under mutation, and the RAM-disk policy
//! storage of §6.2 footnote 1.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Wget, WgetStatus};
use phoenix::os::{names, NicKind, Os};
use phoenix_hw::dp8390::Dp8390Config;
use phoenix_hw::rtl8139::Rtl8139Config;
use phoenix_hw::WireConfig;
use phoenix_servers::netproto::stream_md5;
use phoenix_servers::peer::PeerConfig;
use phoenix_servers::policy::PolicyScript;
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn download_survives_packet_loss_plus_driver_kills() {
    // 1% frame loss in each direction *and* two driver kills: the
    // transport's retransmission machinery covers both failure sources,
    // like TCP in the paper ("even in the face of lost, misordered, or
    // garbled packets").
    let size = 2_000_000u64;
    let content_seed = 5;
    let mut os = Os::builder()
        .seed(55)
        .with_network(NicKind::Rtl8139)
        .network_tuning(
            Rtl8139Config::default(),
            Dp8390Config::default(),
            WireConfig {
                latency: SimDuration::from_micros(200),
                loss_prob: 0.01,
            },
            PeerConfig::default(),
        )
        .boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    os.run_for(ms(100));
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(ms(600));
    os.kill_by_user(names::ETH_RTL8139);
    let mut guard = 0;
    while !status.borrow().done && guard < 1200 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "download completes under loss + kills");
    assert_eq!(
        st.md5.as_deref(),
        Some(stream_md5(content_seed, size).as_str()),
        "every byte intact despite loss and two recoveries"
    );
}

#[test]
fn garbled_frames_are_dropped_not_fatal() {
    // Inject raw garbage onto the rx path: INET must count and drop it.
    let mut os = Os::builder().seed(56).with_network(NicKind::Rtl8139).boot();
    // Channel encoding: (dev << 16) | WIRE_TO_HOST(3); NIC is device 1.
    for i in 0..5u8 {
        os_schedule_frame(&mut os, vec![0xAA, i, 7, 9]);
    }
    os.run_for(ms(50));
    // The system is still healthy; a well-formed transfer works.
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, 100_000, 1, status.clone())),
    );
    let mut guard = 0;
    while !status.borrow().done && guard < 100 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(status.borrow().done);
    assert!(os.metrics().counter("inet.garbled_frames") >= 5);
}

fn os_schedule_frame(os: &mut Os, frame: Vec<u8>) {
    // Frames arrive "from the wire" via the machine's external channel.
    os.inject_rx_frame(frame);
}

#[test]
fn campaign_against_wedgeable_hardware_recovers_with_hard_resets() {
    // A short campaign with an aggressively wedge-prone card: recovery
    // must still converge, possibly via the BIOS-reset escape hatch
    // (the <1% tail of §7.2).
    use phoenix::campaign::{run_campaign, CampaignConfig};
    let cfg = CampaignConfig {
        seed: 77,
        injections: 400,
        wedge_prob: 0.5,
        ..CampaignConfig::default()
    };
    let (result, _) = run_campaign(&cfg);
    assert!(result.injections == 400);
    assert!(
        !result.crashes.is_empty(),
        "some mutations must crash the driver"
    );
    for (i, c) in result.crashes.iter().enumerate() {
        assert!(c.recovered, "crash #{i} must eventually recover");
    }
}

#[test]
fn ramdisk_stores_policy_scripts_that_survive_disk_driver_loss() {
    // §6.2 footnote 1: "the system can be configured with a dedicated RAM
    // disk to provide trusted storage for crucial data, such as the
    // driver binaries, the shell, and policy scripts." Store a policy on
    // the RAM disk, lose the SATA driver, and parse the policy from the
    // still-available region.
    let mut os = Os::builder()
        .seed(57)
        .with_disk(4096, 1, vec![])
        .with_ramdisk(64)
        .boot();
    let region = os.ramdisk_region().unwrap();
    let script = phoenix_servers::policy::GENERIC_POLICY.as_bytes();
    region.borrow_mut()[..script.len()].copy_from_slice(script);

    // The disk driver dies; the RAM disk is unaffected.
    os.kill_by_user(names::BLK_SATA);
    os.run_for(ms(200));
    let text = String::from_utf8(region.borrow()[..script.len()].to_vec()).unwrap();
    let parsed = PolicyScript::parse(&text).expect("policy parses from RAM disk");
    let d = parsed.run(&phoenix_servers::policy::PolicyInput {
        component: "blk.sata".to_string(),
        reason: phoenix_servers::policy::reason::EXIT,
        repetition: 1,
        params: vec![],
        backoff_base: None,
        backoff_cap: None,
    });
    assert!(d.restart);
    // Meanwhile the SATA driver has been reincarnated as usual.
    os.run_for(ms(500));
    assert!(os.is_up(names::BLK_SATA));
    assert!(os.is_up(names::BLK_RAM));
}
