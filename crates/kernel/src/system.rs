//! The kernel proper: process table, IPC, signals, alarms, IRQ routing, and
//! the event-dispatch loop.
//!
//! [`System`] owns all kernel state and the event queue. The composition
//! layer (the *machine*) drives it with [`System::step`], passing in the
//! hardware [`Platform`]. Process handlers run to completion and perform
//! system calls through [`Ctx`].

use std::collections::{BTreeMap, BTreeSet};

use phoenix_simcore::event::{EventId, EventQueue};
use phoenix_simcore::metrics::MetricsRegistry;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};
use phoenix_simcore::trace::{SpanId, TraceEvent, TraceLevel, TraceRing};

use crate::authority::AuthorityUsage;
use crate::chaos::{ChaosInterposer, ChaosVerdict, IpcClass, IpcEnvelope};
use crate::memory::{GrantAccess, GrantId, IommuWindow, MemoryPool};
use crate::platform::{HwCtx, HwSideEffect, Platform};
use crate::privileges::{IpcFilter, KernelCall, Privileges};
use crate::process::{ProcEvent, Process, ProgramFactory};
use crate::types::{
    AlarmId, CallId, DeviceId, Endpoint, ExceptionKind, ExitReason, ExitStatus, IpcError, IrqLine,
    KernelError, KillOrigin, Message, Signal, Slot,
};

/// Tunable kernel parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Latency of message/notification delivery (MINIX IPC is a few
    /// microseconds on 2007 hardware).
    pub ipc_latency: SimDuration,
    /// Latency from IRQ assertion to driver notification.
    pub irq_latency: SimDuration,
    /// Root seed for all randomness in the run.
    pub seed: u64,
    /// Trace ring capacity.
    pub trace_capacity: usize,
    /// Whether the babble guard observes the IPC fabric. The guard only
    /// *flags* endpoints (queried via [`Ctx::babble_flagged`]); it never
    /// suppresses delivery, so enabling it cannot change a run's event
    /// stream.
    pub babble_guard: bool,
    /// Max sends + notifies one endpoint may originate within a single
    /// handler dispatch before it is flagged as babbling. Sized well
    /// above any legitimate burst (a full 48-page rx-ring drain is ~12
    /// frames) and well below the spray a corrupted ring pointer
    /// produces (48 per interrupt).
    pub babble_dispatch_budget: u32,
    /// Max replies one endpoint may issue within [`Self::babble_window`]
    /// before it is flagged (livelocked reply storm).
    pub babble_reply_budget: u32,
    /// Sliding-window length for the reply-rate budget.
    pub babble_window: SimDuration,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            ipc_latency: SimDuration::from_micros(2),
            irq_latency: SimDuration::from_micros(1),
            seed: 0xDEAD_BEEF,
            trace_capacity: 65_536,
            babble_guard: true,
            babble_dispatch_budget: 24,
            babble_reply_budget: 5_000,
            babble_window: SimDuration::from_millis(100),
        }
    }
}

/// Events flowing through the kernel's queue.
enum SysEvent {
    Deliver {
        to: Endpoint,
        item: ProcEvent,
    },
    DevTimer {
        dev: DeviceId,
        token: u64,
    },
    External {
        channel: u64,
        payload: Vec<u8>,
    },
    /// A chaos-plan scheduled kill of a fresh incarnation (crash during
    /// recovery). Ignored if the incarnation already died.
    ChaosKill {
        ep: Endpoint,
    },
}

struct LiveProc {
    name: String,
    endpoint: Endpoint,
    parent: Option<Endpoint>,
    privileges: Privileges,
    handler: Option<Box<dyn Process>>,
    stuck: bool,
    program: Option<String>,
    program_version: u32,
}

enum SlotState {
    Free,
    Live(Box<LiveProc>),
}

struct OpenCall {
    caller: Endpoint,
    callee: Endpoint,
    /// When the rendezvous opened; the progress watchdog compares this
    /// against the stall threshold (see [`Ctx::request_stalled`]).
    opened_at: SimTime,
}

struct ProgramEntry {
    privileges: Privileges,
    factories: Vec<ProgramFactory>,
}

/// Result of one [`System::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// An event was dispatched.
    Progress,
    /// The queue is empty.
    Idle,
}

/// The microkernel: process table, IPC, memory, alarms, IRQs, event loop.
pub struct System {
    cfg: SystemConfig,
    queue: EventQueue<SysEvent>,
    slots: Vec<SlotState>,
    generations: Vec<u32>,
    open_calls: BTreeMap<CallId, OpenCall>,
    next_call: u64,
    alarms: BTreeMap<AlarmId, (Endpoint, EventId)>,
    next_alarm: u64,
    irq_handlers: BTreeMap<IrqLine, Endpoint>,
    programs: BTreeMap<String, ProgramEntry>,
    usage: AuthorityUsage,
    mem: MemoryPool,
    trace: TraceRing,
    metrics: MetricsRegistry,
    rng: SimRng,
    chaos: Option<Box<dyn ChaosInterposer>>,
    chaos_rng: SimRng,
    /// Endpoint currently being dispatched, with the number of sends +
    /// notifies it has originated within this dispatch (babble guard).
    cur_dispatch: Option<(Endpoint, u32)>,
    /// Reply-rate windows per endpoint: (window start, replies so far).
    reply_windows: BTreeMap<Endpoint, (SimTime, u32)>,
    /// Endpoints the babble guard has flagged, with the reason. Entries
    /// die with their incarnation (cleaned in `destroy`).
    babble_flagged: BTreeMap<Endpoint, &'static str>,
    /// Last time each live endpoint attempted any IPC (send, sendrec,
    /// reply, notify). The progress watchdog uses this to tell a wedged
    /// callee — one that swallows requests and talks to no one — from a
    /// callee that is merely slow: the latter keeps issuing IPC (driver
    /// retries, downstream calls) while its callers' requests age.
    ipc_activity: BTreeMap<Endpoint, SimTime>,
    /// Names of processes with *sticky slots*: system servers whose
    /// address, as far as clients are concerned, survives a microreboot.
    /// IPC aimed at a dead incarnation of a sticky name is transparently
    /// redirected to the live incarnation (clients keep their cached
    /// endpoint across server restarts; MINIX pins server slots for the
    /// same reason).
    sticky_names: BTreeSet<String>,
    /// Dead incarnations of sticky names, recorded at death so a stale
    /// endpoint can be mapped back to the name it served.
    retired_sticky: BTreeMap<Endpoint, String>,
    /// Child-exit reports whose (sticky) parent was down at delivery
    /// time, buffered per parent name and flushed when the replacement
    /// incarnation spawns — a PM microreboot must not lose SIGCHLDs.
    orphaned_reports: BTreeMap<String, Vec<ProcEvent>>,
}

impl System {
    /// Creates a kernel with the given configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        // analyze:allow(rng-construction): the root RNG of the run; every
        // other stream in the system forks from this one.
        let rng = SimRng::new(cfg.seed);
        // Chaos draws from its own forked stream so installing or removing
        // a plan never perturbs the randomness the rest of the run sees.
        let chaos_rng = rng.fork("kernel-chaos");
        let trace = TraceRing::new(cfg.trace_capacity);
        System {
            cfg,
            queue: EventQueue::new(),
            slots: Vec::new(),
            generations: Vec::new(),
            open_calls: BTreeMap::new(),
            next_call: 1,
            alarms: BTreeMap::new(),
            next_alarm: 1,
            irq_handlers: BTreeMap::new(),
            programs: BTreeMap::new(),
            usage: AuthorityUsage::new(),
            mem: MemoryPool::new(),
            trace,
            metrics: MetricsRegistry::new(),
            rng,
            chaos: None,
            chaos_rng,
            cur_dispatch: None,
            reply_windows: BTreeMap::new(),
            babble_flagged: BTreeMap::new(),
            ipc_activity: BTreeMap::new(),
            sticky_names: BTreeSet::new(),
            retired_sticky: BTreeMap::new(),
            orphaned_reports: BTreeMap::new(),
        }
    }

    /// Declares `name` a sticky-slot process (see [`System::resolve_sticky`]).
    pub fn mark_sticky(&mut self, name: &str) {
        self.sticky_names.insert(name.to_string());
    }

    /// Maps a possibly-stale endpoint of a sticky name to the live
    /// incarnation serving that name. Live endpoints (and non-sticky dead
    /// ones) pass through unchanged.
    fn resolve_sticky(&mut self, dst: Endpoint) -> Endpoint {
        if self.is_live(dst) {
            return dst;
        }
        let Some(name) = self.retired_sticky.get(&dst).cloned() else {
            return dst;
        };
        match self.endpoint_by_name(&name) {
            Some(live) => {
                self.metrics.incr("kernel.sticky_redirects");
                if self.trace.enabled(TraceLevel::Debug) {
                    self.trace.emit(
                        self.now(),
                        TraceLevel::Debug,
                        "kernel",
                        format!("sticky redirect {dst} -> {live} ({name})"),
                    );
                }
                live
            }
            None => dst,
        }
    }

    /// Installs a chaos interposer on the IPC fabric. Replaces any plan
    /// already installed.
    pub fn set_chaos(&mut self, plan: Box<dyn ChaosInterposer>) {
        self.trace.emit(
            self.now(),
            TraceLevel::Warn,
            "kernel",
            "chaos interposer installed".to_string(),
        );
        self.chaos = Some(plan);
    }

    /// Removes the chaos interposer; subsequent IPC is delivered normally.
    pub fn clear_chaos(&mut self) {
        if self.chaos.take().is_some() {
            self.trace.emit(
                self.now(),
                TraceLevel::Warn,
                "kernel",
                "chaos interposer removed".to_string(),
            );
        }
    }

    /// Whether a chaos interposer is currently installed.
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The execution trace (shared by all components).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Mutable trace access (for machine-level annotations).
    pub fn trace_mut(&mut self) -> &mut TraceRing {
        &mut self.trace
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The kernel's memory pool (address spaces, grants, IOMMU).
    pub fn memory(&self) -> &MemoryPool {
        &self.mem
    }

    /// Observed authority per component (IPC destinations, kernel calls,
    /// devices, IRQ lines actually exercised), keyed by stable name.
    ///
    /// Recording happens at the privilege-check hook points, so only
    /// *permitted* operations are counted: a denied attempt is not
    /// authority the component holds. Replies are not recorded either —
    /// the incoming request is the capability, not the privilege table.
    pub fn authority_usage(&self) -> &AuthorityUsage {
        &self.usage
    }

    /// Declared privilege tables keyed by stable name: every live process,
    /// overlaid with the program registry (the registry wins — it is what a
    /// restarted incarnation will be granted).
    pub fn declared_privileges(&self) -> BTreeMap<String, Privileges> {
        let mut out = BTreeMap::new();
        for s in &self.slots {
            if let SlotState::Live(p) = s {
                out.insert(p.name.clone(), p.privileges.clone());
            }
        }
        for (name, entry) in &self.programs {
            out.insert(name.clone(), entry.privileges.clone());
        }
        out
    }

    /// Names of all registered program images, in name order.
    pub fn registered_programs(&self) -> Vec<String> {
        self.programs.keys().cloned().collect()
    }

    // ------------------------------------------------------------------
    // Program registry (binary images)
    // ------------------------------------------------------------------

    /// Registers a program image under `name` with the privileges it will
    /// be granted when executed.
    pub fn register_program(
        &mut self,
        name: &str,
        privileges: Privileges,
        factory: ProgramFactory,
    ) {
        let entry = self
            .programs
            .entry(name.to_string())
            .or_insert_with(|| ProgramEntry {
                privileges: Privileges::user(),
                factories: Vec::new(),
            });
        entry.privileges = privileges;
        entry.factories.push(factory);
    }

    /// Applies `f` to the privilege table a program's future incarnations
    /// will be granted. Returns `false` if no such program is registered.
    ///
    /// Already-running incarnations keep their current table (as in MINIX,
    /// privileges are bound at exec time); used by the audit harness to
    /// seed deliberate over-grants.
    pub fn adjust_program_privileges(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut Privileges),
    ) -> bool {
        match self.programs.get_mut(name) {
            Some(entry) => {
                f(&mut entry.privileges);
                true
            }
            None => false,
        }
    }

    /// Registers a *new version* of an existing program (dynamic update).
    ///
    /// # Errors
    ///
    /// Fails with [`KernelError::NoSuchProgram`] if the program was never
    /// registered.
    pub fn update_program(
        &mut self,
        name: &str,
        factory: ProgramFactory,
    ) -> Result<u32, KernelError> {
        let entry = self
            .programs
            .get_mut(name)
            .ok_or(KernelError::NoSuchProgram)?;
        entry.factories.push(factory);
        Ok(entry.factories.len() as u32)
    }

    /// Latest registered version number of a program (1-based).
    pub fn program_version(&self, name: &str) -> Option<u32> {
        self.programs.get(name).map(|e| e.factories.len() as u32)
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    fn find_free_slot(&mut self) -> Slot {
        for (i, s) in self.slots.iter().enumerate() {
            if matches!(s, SlotState::Free) {
                return i as Slot;
            }
        }
        self.slots.push(SlotState::Free);
        self.generations.push(0);
        (self.slots.len() - 1) as Slot
    }

    /// Slot for a new process named `name`. Sticky names reclaim the slot
    /// they last occupied (if still free): the endpoint generation then
    /// grows monotonically across server incarnations, which the
    /// checkpoint store's ghost-incarnation check relies on.
    fn find_slot_for(&mut self, name: &str) -> Slot {
        if self.sticky_names.contains(name) {
            let prev = self.retired_sticky.iter().find_map(|(ep, n)| {
                (n == name && matches!(self.slots.get(ep.slot() as usize), Some(SlotState::Free)))
                    .then(|| ep.slot())
            });
            if let Some(slot) = prev {
                return slot;
            }
        }
        self.find_free_slot()
    }

    fn spawn_internal(
        &mut self,
        name: &str,
        parent: Option<Endpoint>,
        privileges: Privileges,
        handler: Box<dyn Process>,
        program: Option<(String, u32)>,
    ) -> Endpoint {
        let slot = self.find_slot_for(name);
        self.generations[slot as usize] += 1;
        let ep = Endpoint::new(slot, self.generations[slot as usize]);
        self.mem.attach(ep, privileges.address_space);
        let (prog, ver) = match program {
            Some((p, v)) => (Some(p), v),
            None => (None, 0),
        };
        self.slots[slot as usize] = SlotState::Live(Box::new(LiveProc {
            name: name.to_string(),
            endpoint: ep,
            parent,
            privileges,
            handler: Some(handler),
            stuck: false,
            program: prog,
            program_version: ver,
        }));
        let spawn_ev = TraceEvent::new(
            self.now(),
            TraceLevel::Info,
            "kernel",
            format!("spawn {name} as {ep}"),
        )
        .with_field("ev", "spawn")
        .with_field("proc", name);
        self.trace.emit_event(spawn_ev);
        self.metrics.incr("kernel.spawns");
        self.queue.schedule_now(SysEvent::Deliver {
            to: ep,
            item: ProcEvent::Start,
        });
        // Flush child-exit reports buffered while this (sticky) name was
        // down — delivered after Start so the handler is initialized.
        if let Some(reports) = self.orphaned_reports.remove(name) {
            for item in reports {
                self.queue
                    .schedule_after(self.cfg.ipc_latency, SysEvent::Deliver { to: ep, item });
            }
        }
        // Give an installed chaos plan the chance to kill this incarnation
        // shortly after birth — if the spawn is a recovery, that is a crash
        // *during* recovery, which RS must absorb.
        if let Some(mut chaos) = self.chaos.take() {
            let now = self.now();
            let verdict = chaos.on_spawn(now, name, ep, &mut self.chaos_rng);
            self.chaos = Some(chaos);
            if let Some(delay) = verdict {
                self.trace.emit(
                    now,
                    TraceLevel::Warn,
                    "chaos",
                    format!("scheduling kill of {name} ({ep}) {delay} after spawn"),
                );
                self.queue.schedule_after(delay, SysEvent::ChaosKill { ep });
            }
        }
        ep
    }

    /// Creates a process at boot time (used by the machine for the trusted
    /// base: PM, RS, DS, VFS, MFS, INET and initial applications).
    pub fn spawn_boot(
        &mut self,
        name: &str,
        privileges: Privileges,
        handler: Box<dyn Process>,
    ) -> Endpoint {
        self.spawn_internal(name, None, privileges, handler, None)
    }

    /// Kills a process on behalf of an interactive user (`kill -9`),
    /// defect class 3 of §5.1. Returns `false` if the endpoint is stale.
    pub fn kill_by_user(&mut self, ep: Endpoint, signal: Signal) -> bool {
        if !self.is_live(ep) {
            return false;
        }
        match signal {
            Signal::Kill => {
                self.destroy(ep, ExitReason::Signaled(Signal::Kill, KillOrigin::User));
            }
            Signal::Term => {
                self.queue.schedule_after(
                    self.cfg.ipc_latency,
                    SysEvent::Deliver {
                        to: ep,
                        item: ProcEvent::Signal(Signal::Term),
                    },
                );
            }
        }
        true
    }

    /// Whether `ep` refers to the current incarnation of a live process.
    pub fn is_live(&self, ep: Endpoint) -> bool {
        matches!(
            self.slots.get(ep.slot() as usize),
            Some(SlotState::Live(p)) if p.endpoint == ep
        )
    }

    /// Whether the process at `ep` is stuck (unresponsive but not dead).
    pub fn is_stuck(&self, ep: Endpoint) -> bool {
        matches!(
            self.slots.get(ep.slot() as usize),
            Some(SlotState::Live(p)) if p.endpoint == ep && p.stuck
        )
    }

    /// Endpoint of the live process named `name`, if any.
    ///
    /// This is a machine/test convenience; components themselves must use
    /// the data store for naming, as the paper prescribes.
    pub fn endpoint_by_name(&self, name: &str) -> Option<Endpoint> {
        self.slots.iter().find_map(|s| match s {
            SlotState::Live(p) if p.name == name => Some(p.endpoint),
            _ => None,
        })
    }

    /// Name of the live process at `ep`, if any.
    pub fn name_of(&self, ep: Endpoint) -> Option<&str> {
        match self.slots.get(ep.slot() as usize) {
            Some(SlotState::Live(p)) if p.endpoint == ep => Some(&p.name),
            _ => None,
        }
    }

    /// Program version the process at `ep` was executed from (0 for boot
    /// processes, 1-based for program-spawned ones).
    pub fn version_of(&self, ep: Endpoint) -> Option<u32> {
        match self.slots.get(ep.slot() as usize) {
            Some(SlotState::Live(p)) if p.endpoint == ep => Some(p.program_version),
            _ => None,
        }
    }

    /// Program name the process at `ep` was executed from, if any.
    pub fn program_of(&self, ep: Endpoint) -> Option<&str> {
        match self.slots.get(ep.slot() as usize) {
            Some(SlotState::Live(p)) if p.endpoint == ep => p.program.as_deref(),
            _ => None,
        }
    }

    /// Names and endpoints of all live processes, in slot order.
    pub fn live_processes(&self) -> Vec<(String, Endpoint)> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                SlotState::Live(p) => Some((p.name.clone(), p.endpoint)),
                _ => None,
            })
            .collect()
    }

    fn destroy(&mut self, ep: Endpoint, reason: ExitReason) {
        let slot = ep.slot() as usize;
        let Some(SlotState::Live(proc_)) = self.slots.get(slot) else {
            return;
        };
        if proc_.endpoint != ep {
            return;
        }
        let name = proc_.name.clone();
        let parent = proc_.parent;
        // The structured `death` event anchors an episode's detection
        // latency: the timeline analyzer pairs it with the RS `defect`
        // event for the same process name (the kernel cannot know the
        // recovery id — it is minted later, by RS, when it notices).
        let death_ev = TraceEvent::new(
            self.now(),
            TraceLevel::Warn,
            "kernel",
            format!("process {name} ({ep}) died: {reason:?}"),
        )
        .with_field("ev", "death")
        .with_field("proc", name.as_str())
        .with_field("reason", format!("{reason:?}"));
        self.trace.emit_event(death_ev);
        self.metrics.incr("kernel.deaths");
        if self.sticky_names.contains(&name) {
            self.retired_sticky.insert(ep, name.clone());
        }
        self.slots[slot] = SlotState::Free;
        // Tear down all kernel state referring to the dead incarnation.
        self.mem.detach(ep);
        self.irq_handlers.retain(|_, h| *h != ep);
        self.reply_windows.remove(&ep);
        self.babble_flagged.remove(&ep);
        self.ipc_activity.remove(&ep);
        let dead_alarms: Vec<AlarmId> = self
            .alarms
            .iter()
            .filter(|(_, (owner, _))| *owner == ep)
            .map(|(id, _)| *id)
            .collect();
        for id in dead_alarms {
            if let Some((_, evt)) = self.alarms.remove(&id) {
                self.queue.cancel(evt);
            }
        }
        // Abort rendezvous where the dead process was the callee: the
        // kernel tells each caller the call failed (EDEADSRCDST). This is
        // what lets the file server mark requests pending (§6.2).
        let aborted: Vec<(CallId, Endpoint)> = self
            .open_calls
            .iter()
            .filter(|(_, c)| c.callee == ep)
            .map(|(id, c)| (*id, c.caller))
            .collect();
        for (call, caller) in aborted {
            self.open_calls.remove(&call);
            self.metrics.incr("ipc.aborted_calls");
            let caller_name = self.name_of(caller).unwrap_or("?").to_string();
            let abort_ev = TraceEvent::new(
                self.now(),
                TraceLevel::Info,
                "kernel",
                format!("abort rendezvous: {caller_name} called dead {name}"),
            )
            .with_field("ev", "abort")
            .with_field("caller", caller_name.as_str())
            .with_field("callee", name.as_str());
            self.trace.emit_event(abort_ev);
            self.queue.schedule_after(
                self.cfg.ipc_latency,
                SysEvent::Deliver {
                    to: caller,
                    item: ProcEvent::Reply {
                        call,
                        result: Err(IpcError::DeadDestination),
                    },
                },
            );
        }
        // Calls the dead process had outstanding stay open so the callee's
        // eventual reply gets EDEADSRCDST (the caller is gone), mirroring
        // MINIX semantics; they are reaped when the callee replies or dies.
        // POSIX-style exit notification to the parent (PM), which the
        // reincarnation server relies on for defect classes 1-3.
        if let Some(parent) = parent {
            let status = ExitStatus {
                endpoint: ep,
                name,
                reason,
            };
            self.queue.schedule_after(
                self.cfg.ipc_latency,
                SysEvent::Deliver {
                    to: parent,
                    item: ProcEvent::ChildExited(status),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Schedules a machine-level external event (wire deliveries, workload
    /// arrivals) to be handed back to [`Platform::external`].
    pub fn schedule_external(&mut self, after: SimDuration, channel: u64, payload: Vec<u8>) {
        self.queue
            .schedule_after(after, SysEvent::External { channel, payload });
    }

    /// Dispatches the next event. Returns [`StepStatus::Idle`] when the
    /// queue is empty.
    pub fn step(&mut self, platform: &mut dyn Platform) -> StepStatus {
        let Some((_, ev)) = self.queue.pop() else {
            return StepStatus::Idle;
        };
        match ev {
            SysEvent::Deliver { to, item } => self.dispatch(platform, to, item),
            SysEvent::DevTimer { dev, token } => {
                let mut fx = Vec::new();
                let now = self.queue.now();
                platform.timer(
                    dev,
                    token,
                    &mut HwCtx::new(now, &mut self.mem, &mut self.rng, &mut fx),
                );
                self.apply_fx(fx);
            }
            SysEvent::External { channel, payload } => {
                let mut fx = Vec::new();
                let now = self.queue.now();
                platform.external(
                    channel,
                    payload,
                    &mut HwCtx::new(now, &mut self.mem, &mut self.rng, &mut fx),
                );
                self.apply_fx(fx);
            }
            SysEvent::ChaosKill { ep } => {
                if self.is_live(ep) {
                    self.metrics.incr("chaos.kills");
                    self.destroy(ep, ExitReason::Signaled(Signal::Kill, KillOrigin::User));
                }
            }
        }
        StepStatus::Progress
    }

    /// Runs until the queue is idle or `max_events` were dispatched.
    /// Returns the number of events dispatched.
    pub fn run_until_idle(&mut self, platform: &mut dyn Platform, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(platform) == StepStatus::Progress {
            n += 1;
        }
        n
    }

    /// Runs all events up to and including time `t`, then advances the
    /// clock to exactly `t`.
    pub fn run_until(&mut self, platform: &mut dyn Platform, t: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(next) if next <= t => {
                    self.step(platform);
                }
                _ => break,
            }
        }
        if self.queue.now() < t {
            self.queue.advance_to(t);
        }
    }

    fn apply_fx(&mut self, fx: Vec<HwSideEffect>) {
        for f in fx {
            match f {
                HwSideEffect::RaiseIrq(line) => match self.irq_handlers.get(&line) {
                    Some(&ep) => {
                        self.metrics.incr("irq.delivered");
                        self.queue.schedule_after(
                            self.cfg.irq_latency,
                            SysEvent::Deliver {
                                to: ep,
                                item: ProcEvent::Irq { line },
                            },
                        );
                    }
                    None => {
                        // No driver registered (e.g. it just crashed):
                        // the interrupt is lost, exactly like on real
                        // hardware with the line masked.
                        self.metrics.incr("irq.unhandled");
                    }
                },
                HwSideEffect::SetTimer { at, token } => {
                    // Device timers carry the device id in the token's high
                    // bits; see Ctx::devio_* which encodes it.
                    let dev = DeviceId((token >> 48) as u16);
                    let token = token & 0xFFFF_FFFF_FFFF;
                    self.queue
                        .schedule_at(at, SysEvent::DevTimer { dev, token });
                }
                HwSideEffect::External {
                    at,
                    channel,
                    payload,
                } => {
                    self.queue
                        .schedule_at(at, SysEvent::External { channel, payload });
                }
            }
        }
    }

    /// Funnel for all process-originated IPC deliveries (send, sendrec
    /// request, reply, notify). An installed chaos interposer judges each
    /// one; without chaos the delivery is scheduled after the IPC latency,
    /// unchanged.
    fn schedule_ipc(&mut self, from: Endpoint, to: Endpoint, item: ProcEvent) {
        let latency = self.cfg.ipc_latency;
        let class = match &item {
            ProcEvent::Message(_) => IpcClass::Send,
            ProcEvent::Request { .. } => IpcClass::Request,
            ProcEvent::Reply { .. } => IpcClass::Reply,
            ProcEvent::Notify { .. } => IpcClass::Notify,
            // Non-IPC events never pass through this funnel.
            // analyze:allow(panic-reach): kernel TCB invariant — the match above is the
            // only caller-facing funnel; a non-IPC event here is kernel corruption, which
            // the paper's fault model (§3) places outside the recoverable set.
            _ => unreachable!("schedule_ipc called with a non-IPC event"),
        };
        if self.cfg.babble_guard {
            self.babble_account(from, class);
        }
        // Hot-path span: every send enters the fabric here. Debug level,
        // and gated so the (allocating) event is never built when the ring
        // filters it out — the common configuration.
        if self.trace.enabled(TraceLevel::Debug) {
            let from_name = self.name_of(from).unwrap_or("?").to_string();
            let to_name = self.name_of(to).unwrap_or("?").to_string();
            let ipc_ev = TraceEvent::new(
                self.now(),
                TraceLevel::Debug,
                "kernel",
                format!("ipc {class:?} {from_name}->{to_name}"),
            )
            .with_field("ev", "ipc")
            .with_field("class", format!("{class:?}"))
            .with_field("from", from_name)
            .with_field("to", to_name);
            self.trace.emit_event(ipc_ev);
        }
        let Some(mut chaos) = self.chaos.take() else {
            self.queue
                .schedule_after(latency, SysEvent::Deliver { to, item });
            return;
        };
        let from_name = self.name_of(from).unwrap_or("?").to_string();
        let to_name = self.name_of(to).unwrap_or("?").to_string();
        let now = self.now();
        let verdict = chaos.on_ipc(
            now,
            &IpcEnvelope {
                from,
                to,
                from_name: &from_name,
                to_name: &to_name,
                class,
            },
            &mut self.chaos_rng,
        );
        self.chaos = Some(chaos);
        match verdict {
            ChaosVerdict::Deliver => {
                self.queue
                    .schedule_after(latency, SysEvent::Deliver { to, item });
            }
            ChaosVerdict::Drop => {
                self.metrics.incr("chaos.dropped");
                self.trace.emit(
                    now,
                    TraceLevel::Debug,
                    "chaos",
                    format!("dropped {class:?} {from_name}->{to_name}"),
                );
                // A dropped request leaves the rendezvous open on purpose:
                // the caller experiences a lost message, not an abort.
            }
            ChaosVerdict::Delay(extra) => {
                self.metrics.incr("chaos.delayed");
                self.queue
                    .schedule_after(latency + extra, SysEvent::Deliver { to, item });
            }
            ChaosVerdict::Duplicate { extra_delay } => {
                self.metrics.incr("chaos.duplicated");
                self.queue.schedule_after(
                    latency,
                    SysEvent::Deliver {
                        to,
                        item: item.clone(),
                    },
                );
                self.queue
                    .schedule_after(latency + extra_delay, SysEvent::Deliver { to, item });
            }
            ChaosVerdict::Corrupt => {
                let mut item = item;
                let flipped = match &mut item {
                    ProcEvent::Message(m) | ProcEvent::Request { msg: m, .. } => {
                        Self::corrupt_message(m, &mut self.chaos_rng);
                        true
                    }
                    ProcEvent::Reply { result: Ok(m), .. } => {
                        Self::corrupt_message(m, &mut self.chaos_rng);
                        true
                    }
                    _ => false,
                };
                if flipped {
                    self.metrics.incr("chaos.corrupted");
                    self.trace.emit(
                        now,
                        TraceLevel::Debug,
                        "chaos",
                        format!("corrupted {class:?} {from_name}->{to_name}"),
                    );
                }
                self.queue
                    .schedule_after(latency, SysEvent::Deliver { to, item });
            }
            ChaosVerdict::HoldUntil(release) => {
                self.metrics.incr("chaos.stalled");
                let at = std::cmp::max(now + latency, release);
                self.queue.schedule_at(at, SysEvent::Deliver { to, item });
            }
        }
    }

    /// Babble-guard bookkeeping for one IPC origination. Purely
    /// observational: budgets are counted and endpoints flagged, but the
    /// delivery itself is untouched, so the guard can never perturb a
    /// run's event stream.
    fn babble_account(&mut self, from: Endpoint, class: IpcClass) {
        match class {
            IpcClass::Send | IpcClass::Notify => {
                let budget = self.cfg.babble_dispatch_budget;
                if let Some((ep, count)) = self.cur_dispatch.as_mut() {
                    if *ep == from {
                        *count += 1;
                        if *count > budget {
                            self.flag_babble(from, "unsolicited-send burst");
                        }
                    }
                }
            }
            IpcClass::Reply => {
                let now = self.now();
                let window = self.cfg.babble_window;
                let budget = self.cfg.babble_reply_budget;
                let entry = self.reply_windows.entry(from).or_insert((now, 0));
                if now.since(entry.0) > window {
                    *entry = (now, 0);
                }
                entry.1 += 1;
                if entry.1 > budget {
                    self.flag_babble(from, "reply-rate over budget");
                }
            }
            IpcClass::Request => {}
        }
    }

    /// Marks `ep` as babbling (idempotent per incarnation).
    fn flag_babble(&mut self, ep: Endpoint, why: &'static str) {
        if self.babble_flagged.contains_key(&ep) {
            return;
        }
        self.babble_flagged.insert(ep, why);
        self.metrics.incr("kernel.babble.flagged");
        let name = self.name_of(ep).unwrap_or("?").to_string();
        let ev = TraceEvent::new(
            self.now(),
            TraceLevel::Warn,
            "kernel",
            format!("babble guard flagged {name} ({ep}): {why}"),
        )
        .with_field("ev", "babble")
        .with_field("proc", name.as_str())
        .with_field("why", why);
        self.trace.emit_event(ev);
    }

    /// Flips one uniformly chosen bit in the message payload: the type tag,
    /// a scalar parameter, or a data byte.
    fn corrupt_message(msg: &mut Message, rng: &mut SimRng) {
        // Bit layout: 32 mtype bits, 8*64 param bits, then data bits.
        let total = 32 + 8 * 64 + msg.data.len() * 8;
        let bit = rng.range_usize(0..total);
        if bit < 32 {
            msg.mtype ^= 1 << bit;
        } else if bit < 32 + 8 * 64 {
            let b = bit - 32;
            msg.params[b / 64] ^= 1 << (b % 64);
        } else {
            let b = bit - 32 - 8 * 64;
            msg.data[b / 8] ^= 1 << (b % 8);
        }
    }

    fn dispatch(&mut self, platform: &mut dyn Platform, to: Endpoint, item: ProcEvent) {
        let slot = to.slot() as usize;
        let live = matches!(
            self.slots.get(slot),
            Some(SlotState::Live(p)) if p.endpoint == to
        );
        if !live {
            // A child-exit report for a dead *sticky* parent (a mid-reboot
            // PM) is not droppable: redirect it to the live replacement
            // incarnation, or buffer it until one spawns.
            if matches!(item, ProcEvent::ChildExited(_)) {
                if let Some(name) = self.retired_sticky.get(&to).cloned() {
                    match self.endpoint_by_name(&name) {
                        Some(live_ep) => {
                            self.metrics.incr("kernel.sticky_redirects");
                            self.queue
                                .schedule_now(SysEvent::Deliver { to: live_ep, item });
                        }
                        None => {
                            self.metrics.incr("kernel.orphaned_child_exits");
                            self.orphaned_reports.entry(name).or_default().push(item);
                        }
                    }
                    return;
                }
            }
            // Delivery to a dead or restarted process. If it was a request,
            // abort the rendezvous so the caller does not hang.
            if let ProcEvent::Request { call, .. } = item {
                if let Some(c) = self.open_calls.remove(&call) {
                    self.metrics.incr("ipc.aborted_calls");
                    if self.trace.enabled(TraceLevel::Debug) {
                        let caller_name = self.name_of(c.caller).unwrap_or("?").to_string();
                        let abort_ev = TraceEvent::new(
                            self.now(),
                            TraceLevel::Debug,
                            "kernel",
                            format!("abort rendezvous: stale request from {caller_name}"),
                        )
                        .with_field("ev", "abort")
                        .with_field("caller", caller_name.as_str());
                        self.trace.emit_event(abort_ev);
                    }
                    self.queue.schedule_after(
                        self.cfg.ipc_latency,
                        SysEvent::Deliver {
                            to: c.caller,
                            item: ProcEvent::Reply {
                                call,
                                result: Err(IpcError::DeadDestination),
                            },
                        },
                    );
                }
            }
            self.metrics.incr("ipc.stale_drops");
            return;
        }
        if self.trace.enabled(TraceLevel::Debug)
            && matches!(
                &item,
                ProcEvent::Message(_)
                    | ProcEvent::Request { .. }
                    | ProcEvent::Reply { .. }
                    | ProcEvent::Notify { .. }
            )
        {
            let to_name = self.name_of(to).unwrap_or("?").to_string();
            let deliver_ev = TraceEvent::new(
                self.now(),
                TraceLevel::Debug,
                "kernel",
                format!("deliver to {to_name}"),
            )
            .with_field("ev", "deliver")
            .with_field("to", to_name);
            self.trace.emit_event(deliver_ev);
        }
        let SlotState::Live(p) = &mut self.slots[slot] else {
            // analyze:allow(panic-reach): kernel TCB invariant — the dispatcher only
            // runs slots it just verified live; a dead slot here is scheduler
            // corruption, not a component failure the RS could recover.
            unreachable!()
        };
        if p.stuck {
            // A stuck process (infinite loop) consumes no events; its
            // mailbox would grow in a real system. Requests must still be
            // tracked so they abort when the process is finally killed.
            self.metrics.incr("ipc.stuck_drops");
            return;
        }
        // analyze:allow(panic-reach): kernel TCB invariant — handler is only absent
        // while that same process is being dispatched, and dispatch is not reentrant.
        let mut handler = p.handler.take().expect("handler present for live process");
        let name = p.name.clone();
        let mut ctx = Ctx {
            sys: self,
            platform,
            self_ep: to,
            self_name: name,
            exit: None,
            hang: false,
        };
        ctx.sys.cur_dispatch = Some((to, 0));
        handler.on_event(&mut ctx, item);
        ctx.sys.cur_dispatch = None;
        let exit = ctx.exit.take();
        let hang = ctx.hang;
        match exit {
            Some(reason) => {
                // Handler chose to die (exit/panic) or tripped an exception.
                self.destroy(to, reason);
            }
            None => {
                if let Some(SlotState::Live(p)) = self.slots.get_mut(slot) {
                    if p.endpoint == to {
                        p.handler = Some(handler);
                        if hang {
                            p.stuck = true;
                        }
                    }
                }
            }
        }
    }
}

/// The system-call interface available to a process while handling an
/// event. Created by the kernel for each dispatch.
pub struct Ctx<'a> {
    sys: &'a mut System,
    platform: &'a mut dyn Platform,
    self_ep: Endpoint,
    self_name: String,
    exit: Option<ExitReason>,
    hang: bool,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sys.now()
    }

    /// This process's endpoint.
    pub fn self_endpoint(&self) -> Endpoint {
        self.self_ep
    }

    /// This process's stable name.
    pub fn self_name(&self) -> &str {
        &self.self_name
    }

    /// The shared deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sys.rng
    }

    /// Emits a trace event attributed to this process.
    pub fn trace(&mut self, level: TraceLevel, message: String) {
        let now = self.sys.now();
        let name = self.self_name.clone();
        self.sys.trace.emit(now, level, &name, message);
    }

    /// Builds a structured event attributed to this process at the current
    /// virtual time. Chain `with_field`/`in_recovery`/`with_span` on the
    /// result and record it with [`Ctx::trace_event`].
    pub fn event(&self, level: TraceLevel, message: impl Into<String>) -> TraceEvent {
        TraceEvent::new(self.sys.now(), level, self.self_name.clone(), message)
    }

    /// Records a structured event (subject to the ring's level filter).
    pub fn trace_event(&mut self, event: TraceEvent) {
        self.sys.trace.emit_event(event);
    }

    /// Allocates a span id from the kernel trace ring's monotonic counter.
    pub fn new_span(&mut self) -> SpanId {
        self.sys.trace.new_span()
    }

    /// The metrics registry.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        &mut self.sys.metrics
    }

    fn privileges(&self) -> &Privileges {
        match &self.sys.slots[self.self_ep.slot() as usize] {
            SlotState::Live(p) => &p.privileges,
            // analyze:allow(panic-reach): kernel TCB invariant — a Ctx only exists
            // while its process runs, and a running process is by construction live.
            _ => unreachable!("running process must be live"),
        }
    }

    fn check_call(&mut self, call: KernelCall) -> Result<(), KernelError> {
        if self.privileges().allows_call(call) {
            self.sys.usage.record_call(&self.self_name, call);
            Ok(())
        } else {
            Err(KernelError::CallNotPermitted)
        }
    }

    fn check_ipc_target(&mut self, dst: Endpoint) -> Result<(), IpcError> {
        let name = self
            .sys
            .name_of(dst)
            .ok_or(IpcError::DeadDestination)?
            .to_string();
        if self.privileges().ipc.allows(&name) {
            self.sys.usage.record_ipc(&self.self_name, &name);
            Ok(())
        } else {
            self.sys.metrics.incr("ipc.denied");
            Err(IpcError::NotPermitted)
        }
    }

    // ------------------------------------------------------------------
    // IPC
    // ------------------------------------------------------------------

    /// Sends a one-way message.
    ///
    /// # Errors
    ///
    /// [`IpcError::DeadDestination`] if `dst` is stale,
    /// [`IpcError::NotPermitted`] if the privilege IPC mask denies it.
    pub fn send(&mut self, dst: Endpoint, mut msg: Message) -> Result<(), IpcError> {
        let dst = self.sys.resolve_sticky(dst);
        self.check_ipc_target(dst)?;
        msg.source = self.self_ep;
        self.sys.metrics.incr("ipc.sends");
        let now = self.sys.now();
        self.sys.ipc_activity.insert(self.self_ep, now);
        self.sys
            .schedule_ipc(self.self_ep, dst, ProcEvent::Message(msg));
        Ok(())
    }

    /// Sends a request and opens a call awaiting a reply (MINIX `sendrec`).
    ///
    /// The reply — or an [`IpcError::DeadDestination`] abort if the callee
    /// dies first — arrives later as [`ProcEvent::Reply`].
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::send`].
    pub fn sendrec(&mut self, dst: Endpoint, mut msg: Message) -> Result<CallId, IpcError> {
        let dst = self.sys.resolve_sticky(dst);
        self.check_ipc_target(dst)?;
        msg.source = self.self_ep;
        let call = CallId(self.sys.next_call);
        self.sys.next_call += 1;
        let opened_at = self.sys.now();
        self.sys.open_calls.insert(
            call,
            OpenCall {
                caller: self.self_ep,
                callee: dst,
                opened_at,
            },
        );
        self.sys.metrics.incr("ipc.sendrecs");
        self.sys.ipc_activity.insert(self.self_ep, opened_at);
        self.sys
            .schedule_ipc(self.self_ep, dst, ProcEvent::Request { call, msg });
        Ok(call)
    }

    /// Replies to an open call previously received as
    /// [`ProcEvent::Request`]. Replying is always permitted: the request
    /// itself is the capability.
    ///
    /// # Errors
    ///
    /// [`IpcError::NoSuchCall`] if the call is not open or was not
    /// addressed to this process; [`IpcError::DeadDestination`] if the
    /// caller died in the meantime.
    pub fn reply(&mut self, call: CallId, mut msg: Message) -> Result<(), IpcError> {
        let oc = self.sys.open_calls.get(&call).ok_or(IpcError::NoSuchCall)?;
        if oc.callee != self.self_ep {
            return Err(IpcError::NoSuchCall);
        }
        let caller = oc.caller;
        self.sys.open_calls.remove(&call);
        if !self.sys.is_live(caller) {
            return Err(IpcError::DeadDestination);
        }
        msg.source = self.self_ep;
        self.sys.metrics.incr("ipc.replies");
        let now = self.sys.now();
        self.sys.ipc_activity.insert(self.self_ep, now);
        self.sys.schedule_ipc(
            self.self_ep,
            caller,
            ProcEvent::Reply {
                call,
                result: Ok(msg),
            },
        );
        Ok(())
    }

    /// Posts a payload-free notification (MINIX `notify`): non-blocking,
    /// used by the data store's publish-subscribe and by heartbeat checks
    /// so the reincarnation server can never be blocked by a sick driver.
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::send`].
    pub fn notify(&mut self, dst: Endpoint) -> Result<(), IpcError> {
        let dst = self.sys.resolve_sticky(dst);
        self.check_ipc_target(dst)?;
        let from = self.self_ep;
        self.sys.metrics.incr("ipc.notifies");
        let now = self.sys.now();
        self.sys.ipc_activity.insert(from, now);
        self.sys.schedule_ipc(from, dst, ProcEvent::Notify { from });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lifecycle system calls
    // ------------------------------------------------------------------

    /// Terminates this process voluntarily with `code` (defect class 1).
    pub fn exit(&mut self, code: i32) {
        self.exit = Some(ExitReason::Exited(code));
    }

    /// Terminates this process with a panic diagnostic (defect class 1).
    pub fn panic(&mut self, msg: &str) {
        self.exit = Some(ExitReason::Panicked(msg.to_string()));
    }

    /// Kills this process as if a CPU/MMU exception occurred (defect
    /// class 2). Driver code calls this when the fault-injection VM traps.
    pub fn die_of_exception(&mut self, kind: ExceptionKind) {
        self.exit = Some(ExitReason::Exception(kind));
    }

    /// Marks this process stuck in an infinite loop: it stays alive but
    /// stops consuming events, so only missing heartbeats (defect class 4)
    /// or an external kill can get rid of it.
    pub fn hang(&mut self) {
        self.hang = true;
    }

    /// Spawns a registered program (process manager only).
    ///
    /// The child's parent is the calling process, which will receive
    /// [`ProcEvent::ChildExited`] when it dies. `version` selects a
    /// specific registered version (1-based); `None` runs the latest.
    ///
    /// # Errors
    ///
    /// [`KernelError::CallNotPermitted`] without the `Spawn` privilege;
    /// [`KernelError::NoSuchProgram`] for unknown names or versions.
    pub fn sys_spawn(
        &mut self,
        program: &str,
        version: Option<u32>,
    ) -> Result<Endpoint, KernelError> {
        self.check_call(KernelCall::Spawn)?;
        let entry = self
            .sys
            .programs
            .get(program)
            .ok_or(KernelError::NoSuchProgram)?;
        let ver = match version {
            Some(v) => {
                if v == 0 || v as usize > entry.factories.len() {
                    return Err(KernelError::NoSuchProgram);
                }
                v
            }
            None => entry.factories.len() as u32,
        };
        let handler = (entry.factories[ver as usize - 1])();
        let privileges = entry.privileges.clone();
        let parent = self.self_ep;
        Ok(self.sys.spawn_internal(
            program,
            Some(parent),
            privileges,
            handler,
            Some((program.to_string(), ver)),
        ))
    }

    /// Sends a signal to another process (process manager only).
    ///
    /// [`Signal::Kill`] destroys the target immediately (it works even on a
    /// stuck process); [`Signal::Term`] is delivered as a catchable event.
    ///
    /// # Errors
    ///
    /// [`KernelError::CallNotPermitted`] without the `Kill` privilege;
    /// [`KernelError::BadEndpoint`] if `target` is stale.
    pub fn sys_kill(&mut self, target: Endpoint, signal: Signal) -> Result<(), KernelError> {
        self.check_call(KernelCall::Kill)?;
        if !self.sys.is_live(target) {
            return Err(KernelError::BadEndpoint);
        }
        match signal {
            Signal::Kill => {
                self.sys.destroy(
                    target,
                    ExitReason::Signaled(Signal::Kill, KillOrigin::System),
                );
            }
            Signal::Term => {
                self.sys.queue.schedule_after(
                    self.sys.cfg.ipc_latency,
                    SysEvent::Deliver {
                        to: target,
                        item: ProcEvent::Signal(Signal::Term),
                    },
                );
            }
        }
        Ok(())
    }

    /// Whether `target` is the current incarnation of a live process.
    ///
    /// Status query used by the reincarnation server's liveness audit: when
    /// chaos (or real hardware) loses an exit notification, RS can still
    /// detect that a supposedly-up service is gone and start recovery.
    pub fn proc_alive(&self, target: Endpoint) -> bool {
        self.sys.is_live(target)
    }

    /// Whether the kernel babble guard has flagged `target`'s current
    /// incarnation for exceeding its unsolicited-send or reply-rate
    /// budget. Status query for the reincarnation server's audit sweep;
    /// the flag dies with the incarnation.
    pub fn babble_flagged(&self, target: Endpoint) -> bool {
        self.sys.babble_flagged.contains_key(&target)
    }

    /// Whether `target` is sitting on a rendezvous older than
    /// `older_than` whose caller is still alive — a callee that
    /// heartbeats but never completes work. Status query for the
    /// reincarnation server's progress watchdog.
    ///
    /// An old request alone is not a conviction: a callee that is itself
    /// waiting on an open call of its own (a server blocked on its
    /// driver), or that attempted any IPC within the window, is merely
    /// *slow* — its requests may legitimately age while a dependency
    /// limps through recovery on a chaotic fabric. Only a callee that is
    /// both sat-upon and silent is wedged.
    pub fn request_stalled(&self, target: Endpoint, older_than: SimDuration) -> bool {
        let now = self.sys.now();
        let sat_upon = self.sys.open_calls.values().any(|c| {
            c.callee == target && self.sys.is_live(c.caller) && now.since(c.opened_at) > older_than
        });
        if !sat_upon {
            return false;
        }
        if self.sys.open_calls.values().any(|c| c.caller == target) {
            return false;
        }
        match self.sys.ipc_activity.get(&target) {
            Some(&t) => now.since(t) > older_than,
            None => true,
        }
    }

    /// Replaces the IPC filter of another process (RS via PM after a
    /// restart; with name-based filters this is rarely needed, but the
    /// mechanism exists as in MINIX's `sys_privctl`).
    ///
    /// # Errors
    ///
    /// [`KernelError::CallNotPermitted`] without the `PrivCtl` privilege;
    /// [`KernelError::BadEndpoint`] if `target` is stale.
    pub fn sys_set_ipc_filter(
        &mut self,
        target: Endpoint,
        filter: IpcFilter,
    ) -> Result<(), KernelError> {
        self.check_call(KernelCall::PrivCtl)?;
        match self.sys.slots.get_mut(target.slot() as usize) {
            Some(SlotState::Live(p)) if p.endpoint == target => {
                p.privileges.ipc = filter;
                Ok(())
            }
            _ => Err(KernelError::BadEndpoint),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Sets an alarm that fires as [`ProcEvent::Alarm`] with `token`.
    ///
    /// # Errors
    ///
    /// [`KernelError::CallNotPermitted`] without the `SetAlarm` privilege.
    pub fn set_alarm(&mut self, after: SimDuration, token: u64) -> Result<AlarmId, KernelError> {
        self.check_call(KernelCall::SetAlarm)?;
        let id = AlarmId(self.sys.next_alarm);
        self.sys.next_alarm += 1;
        let ep = self.self_ep;
        let evt = self.sys.queue.schedule_after(
            after,
            SysEvent::Deliver {
                to: ep,
                item: ProcEvent::Alarm { token },
            },
        );
        self.sys.alarms.insert(id, (ep, evt));
        Ok(id)
    }

    /// Cancels an alarm set earlier. Returns `true` if it was still
    /// pending and belonged to this process.
    pub fn cancel_alarm(&mut self, id: AlarmId) -> bool {
        match self.sys.alarms.get(&id) {
            Some((owner, evt)) if *owner == self.self_ep => {
                let evt = *evt;
                self.sys.alarms.remove(&id);
                self.sys.queue.cancel(evt)
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Device access
    // ------------------------------------------------------------------

    fn check_device(&mut self, dev: DeviceId) -> Result<(), KernelError> {
        self.check_call(KernelCall::Devio)?;
        if !self.privileges().allows_device(dev) {
            return Err(KernelError::DeviceNotPermitted);
        }
        if !self.platform.has_device(dev) {
            return Err(KernelError::NoSuchDevice);
        }
        self.sys.usage.record_device(&self.self_name, dev);
        Ok(())
    }

    /// Reads a device register (`sys_devio`).
    ///
    /// # Errors
    ///
    /// Permission failures per the privilege table, or
    /// [`KernelError::NoSuchDevice`] if the bus has no such device.
    pub fn devio_read(&mut self, dev: DeviceId, reg: u16) -> Result<u32, KernelError> {
        self.check_device(dev)?;
        let mut fx = Vec::new();
        let now = self.sys.now();
        let v = self.platform.io_read(
            dev,
            reg,
            &mut HwCtx::new(now, &mut self.sys.mem, &mut self.sys.rng, &mut fx),
        );
        self.sys.apply_fx(fx);
        Ok(v)
    }

    /// Writes a device register (`sys_devio`).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::devio_read`].
    pub fn devio_write(&mut self, dev: DeviceId, reg: u16, value: u32) -> Result<(), KernelError> {
        self.check_device(dev)?;
        let mut fx = Vec::new();
        let now = self.sys.now();
        self.platform.io_write(
            dev,
            reg,
            value,
            &mut HwCtx::new(now, &mut self.sys.mem, &mut self.sys.rng, &mut fx),
        );
        self.sys.apply_fx(fx);
        Ok(())
    }

    /// Buffered port input of `len` bytes (MINIX `sys_sdevio`).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::devio_read`].
    pub fn devio_read_block(
        &mut self,
        dev: DeviceId,
        reg: u16,
        len: usize,
    ) -> Result<Vec<u8>, KernelError> {
        self.check_device(dev)?;
        let mut fx = Vec::new();
        let now = self.sys.now();
        let data = self.platform.io_read_block(
            dev,
            reg,
            len,
            &mut HwCtx::new(now, &mut self.sys.mem, &mut self.sys.rng, &mut fx),
        );
        self.sys.apply_fx(fx);
        Ok(data)
    }

    /// Buffered port output (MINIX `sys_sdevio`).
    ///
    /// # Errors
    ///
    /// Same as [`Ctx::devio_read`].
    pub fn devio_write_block(
        &mut self,
        dev: DeviceId,
        reg: u16,
        data: &[u8],
    ) -> Result<(), KernelError> {
        self.check_device(dev)?;
        let mut fx = Vec::new();
        let now = self.sys.now();
        self.platform.io_write_block(
            dev,
            reg,
            data,
            &mut HwCtx::new(now, &mut self.sys.mem, &mut self.sys.rng, &mut fx),
        );
        self.sys.apply_fx(fx);
        Ok(())
    }

    /// Registers this process as the handler for an IRQ line
    /// (`sys_irqctl`). Future interrupts arrive as [`ProcEvent::Irq`].
    ///
    /// # Errors
    ///
    /// [`KernelError::IrqNotPermitted`] if the line is not in the
    /// privilege table.
    pub fn irq_enable(&mut self, line: IrqLine) -> Result<(), KernelError> {
        self.check_call(KernelCall::IrqCtl)?;
        if !self.privileges().allows_irq(line) {
            return Err(KernelError::IrqNotPermitted);
        }
        self.sys.usage.record_irq(&self.self_name, line);
        self.sys.irq_handlers.insert(line, self.self_ep);
        Ok(())
    }

    /// Maps this process's memory region `[offset, offset+len)` as the
    /// DMA window of `dev` at device address `base` (`sys_iommu`). Pass
    /// `len == 0` to unmap.
    ///
    /// # Errors
    ///
    /// Privilege failures, or [`KernelError::BadRange`] if the region
    /// exceeds the address space.
    pub fn iommu_map(
        &mut self,
        dev: DeviceId,
        base: u64,
        offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        self.check_call(KernelCall::IommuMap)?;
        if !self.privileges().allows_device(dev) {
            return Err(KernelError::DeviceNotPermitted);
        }
        self.sys.usage.record_device(&self.self_name, dev);
        let window = if len == 0 {
            None
        } else {
            Some(IommuWindow {
                owner: self.self_ep,
                base,
                offset,
                len,
            })
        };
        self.sys.mem.iommu_map(dev, window)
    }

    // ------------------------------------------------------------------
    // Memory
    // ------------------------------------------------------------------

    /// Writes into this process's own address space.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadRange`] if out of bounds.
    pub fn mem_write(&mut self, offset: usize, data: &[u8]) -> Result<(), KernelError> {
        self.sys.mem.write_own(self.self_ep, offset, data)
    }

    /// Reads from this process's own address space.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadRange`] if out of bounds.
    pub fn mem_read(&mut self, offset: usize, len: usize) -> Result<Vec<u8>, KernelError> {
        self.sys
            .mem
            .read_own(self.self_ep, offset, len)
            .map(<[u8]>::to_vec)
    }

    /// Size of this process's address space.
    pub fn mem_size(&mut self) -> usize {
        self.sys
            .mem
            .size_of(self.self_ep)
            .expect("own space exists")
    }

    /// Creates a grant over this process's memory for `grantee`
    /// (`sys_setgrant`).
    ///
    /// # Errors
    ///
    /// Privilege failures or [`KernelError::BadRange`].
    pub fn grant_create(
        &mut self,
        grantee: Endpoint,
        offset: usize,
        len: usize,
        access: GrantAccess,
    ) -> Result<GrantId, KernelError> {
        self.check_call(KernelCall::SetGrant)?;
        self.sys
            .mem
            .grant_create(self.self_ep, grantee, offset, len, access)
    }

    /// Revokes a grant created earlier.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadGrant`] if unknown.
    pub fn grant_revoke(&mut self, id: GrantId) -> Result<(), KernelError> {
        self.check_call(KernelCall::SetGrant)?;
        self.sys.mem.grant_revoke(self.self_ep, id)
    }

    /// Copies from a granter's memory into this process's
    /// (`sys_safecopyfrom`).
    ///
    /// # Errors
    ///
    /// See [`MemoryPool::safecopy_from`](crate::memory::MemoryPool::safecopy_from).
    pub fn safecopy_from(
        &mut self,
        granter: Endpoint,
        grant: GrantId,
        grant_offset: usize,
        dst_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        self.check_call(KernelCall::SafeCopy)?;
        self.sys
            .mem
            .safecopy_from(self.self_ep, granter, grant, grant_offset, dst_offset, len)
    }

    /// Copies from this process's memory into a granter's
    /// (`sys_safecopyto`).
    ///
    /// # Errors
    ///
    /// See [`MemoryPool::safecopy_to`](crate::memory::MemoryPool::safecopy_to).
    pub fn safecopy_to(
        &mut self,
        granter: Endpoint,
        grant: GrantId,
        grant_offset: usize,
        src_offset: usize,
        len: usize,
    ) -> Result<(), KernelError> {
        self.check_call(KernelCall::SafeCopy)?;
        self.sys
            .mem
            .safecopy_to(self.self_ep, granter, grant, grant_offset, src_offset, len)
    }
}
