//! phoenix-fleet: multi-node simulation with DIR-Net-style distributed
//! reincarnation.
//!
//! A single-machine phoenix `Os` already survives driver and server
//! failures — its local Reincarnation Server (RS) detects, restarts and
//! reintegrates them. This crate answers the next question the paper's
//! recovery model raises: *who recovers the recoverer?* A fleet runs N
//! independent `Os` instances, each seeded from its own forked RNG
//! stream, in one deterministic event loop:
//!
//! - [`wire`] — the inter-node network: a full mesh of directed links
//!   with fixed latency and per-link partition/loss chaos windows.
//! - [`proto`] — the gossip backbone kinds (heartbeat, typed complaint,
//!   conviction, rebuttal) and the peer-held node-snapshot wire format.
//! - [`agent`] — the per-node fleet agent: a DIR-Net-style two-level
//!   watchdog ring with federated evidence (ghost rejection, accuser
//!   inversion, quorum conviction, ring-successor arbitration).
//! - [`link`] — go-back-N snapshot transfer over the lossy wire, reusing
//!   the `netproto` segment format of the remote file peer.
//! - [`fleet`] — the event loop tying it together: node-level fault
//!   injection, crash-only node microreboot on conviction, and adoption
//!   of the peer-held checkpoint/DS snapshot into the reborn node.
//! - [`campaign`] — the fleet chaos campaign with per-phase node MTTRs
//!   (detect / repair / reintegrate) and a byte-stable fleet digest.
//!
//! Determinism contract: same fleet seed → byte-identical per-node and
//! fleet digests. All cross-node state lives in ordered maps, every
//! node, link and schedule stream is forked off the fleet seed by
//! domain, and nothing reads wall-clock time.

pub mod agent;
pub mod campaign;
pub mod fleet;
pub mod link;
pub mod proto;
pub mod wire;

pub use agent::{FleetAction, FleetAgent, LocalView};
pub use campaign::{
    run_fleet_campaign, run_fleet_control, FleetCampaignConfig, FleetCampaignResult, PhaseStat,
};
pub use fleet::{Fleet, FleetConfig};
pub use proto::{Frame, NodeSnapshot, NodeStat};
pub use wire::{Delivery, FleetWire, Payload};
