//! SLO-attribution integration tests: the open-loop load generators plus
//! the recovery-timeline join must attribute every request to the right
//! phase — in-episode completions land in that episode's phase rows,
//! steady-state traffic is never misattributed to a recovery phase when
//! nothing failed, and the whole fold is a deterministic function of the
//! seed.

use phoenix::campaign::{run_slo_campaign, SloCampaignConfig};
use phoenix::loadgen::{InetLoadConfig, VfsLoadConfig};
use phoenix_simcore::obs::phase;
use phoenix_simcore::time::SimDuration;

/// A small fleet that still produces hundreds of requests: fast enough
/// for a test, busy enough that recovery windows contain completions.
fn small_cfg() -> SloCampaignConfig {
    SloCampaignConfig {
        seed: 1907,
        inet: InetLoadConfig {
            sessions: 300,
            interarrival: SimDuration::from_millis(400),
            ramp: SimDuration::from_millis(400),
            linger: SimDuration::from_millis(300),
            backlog_cap: 4,
            horizon: SimDuration::from_secs(5),
            ..InetLoadConfig::default()
        },
        vfs: VfsLoadConfig {
            clients: 8,
            interarrival: SimDuration::from_millis(50),
            horizon: SimDuration::from_secs(5),
            ..VfsLoadConfig::default()
        },
        intensity: 0.2,
        kills_per_target: 1,
        kill_interval: SimDuration::from_millis(500),
        file_size: 64 * 1024,
    }
}

#[test]
fn in_episode_requests_attribute_to_recovery_phases() {
    let (result, _os) = run_slo_campaign(&small_cfg());
    assert_eq!(result.kills.len(), 2, "one eth kill, one blk kill");
    assert!(
        result.kills.iter().all(|k| k.recovered),
        "all kills must recover: {:?}",
        result.kills
    );
    assert!(result.inet_drained, "inet fleet must drain");
    assert!(result.vfs_drained, "vfs mix must drain");
    assert_eq!(result.unaccounted_episodes, 0, "every episode folds");

    // Steady state carries the bulk of the traffic.
    let steady = result.phase(phase::STEADY).expect("steady row");
    assert!(
        steady.requests > 200,
        "steady requests: {}",
        steady.requests
    );
    assert!(steady.samples > 0 && steady.p50_us > 0);

    // The kills happened mid-load, so recovery phases must have wall
    // time, and at least one of them must have absorbed completions.
    let recovery_req: u64 = [phase::DETECT, phase::REPAIR, phase::REINTEGRATE]
        .iter()
        .filter_map(|ph| result.phase(ph))
        .map(|p| p.requests)
        .sum();
    let recovery_us: u64 = [phase::DETECT, phase::REPAIR, phase::REINTEGRATE]
        .iter()
        .filter_map(|ph| result.phase(ph))
        .map(|p| p.phase_us)
        .sum();
    assert!(recovery_us > 0, "recovery phases must have wall time");
    assert!(
        recovery_req > 0,
        "requests completing mid-recovery must attribute to its phases"
    );

    // Consistency: the per-phase rows partition the request log.
    let by_phase: u64 = result.phases.iter().map(|p| p.requests).sum();
    assert_eq!(
        by_phase,
        result.completed + result.failed + result.shed,
        "every record lands in exactly one phase row"
    );
}

#[test]
fn steady_state_never_misattributed_without_failures() {
    // No kills, no chaos: every single request must fold into the steady
    // row — any recovery-phase row with requests would be misattribution.
    let cfg = SloCampaignConfig {
        intensity: 0.0,
        kills_per_target: 0,
        ..small_cfg()
    };
    let (result, _os) = run_slo_campaign(&cfg);
    assert!(result.kills.is_empty());
    assert!(result.inet_drained && result.vfs_drained);
    let steady = result.phase(phase::STEADY).expect("steady row");
    assert_eq!(
        steady.requests,
        result.completed + result.failed + result.shed,
        "all requests are steady-state"
    );
    for ph in [
        phase::DETECT,
        phase::REPAIR,
        phase::REINTEGRATE,
        phase::REPLAY,
    ] {
        assert!(
            result.phase(ph).is_none(),
            "phase {ph} must not appear in a failure-free run"
        );
    }
    assert_eq!(result.failed, 0, "failure-free run");
    assert_eq!(result.shed, 0, "no shedding without outages");
}

#[test]
fn slo_campaign_is_deterministic() {
    let a = run_slo_campaign(&small_cfg()).0;
    let b = run_slo_campaign(&small_cfg()).0;
    assert_eq!(a.digest, b.digest, "same seed, same digest");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.peak_live, b.peak_live);
    let rows = |r: &phoenix::campaign::SloCampaignResult| -> Vec<(String, u64, u64, u64)> {
        r.phases
            .iter()
            .map(|p| (p.phase.clone(), p.requests, p.p99_us, p.goodput_bytes))
            .collect()
    };
    assert_eq!(rows(&a), rows(&b), "phase rows are seed-determined");
}
