//! Measurement primitives used by the experiment harness.
//!
//! The paper's evaluation reports throughputs (Figs. 7–8), recovery-time
//! means (§7.1), and crash-class breakdowns (§7.2). This module provides the
//! counters, histograms and time series those reports are built from.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Overwrites the value — the gauge escape hatch for quantities that
    /// can shrink (e.g. checkpoint-store occupancy). Gauges live in the
    /// counter map on purpose: they render into the same sorted dump and
    /// therefore into the campaign digest.
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A histogram of `f64` samples with exact min/max/mean and percentile
/// estimation over the stored samples.
///
/// Experiments are short (hundreds to a few thousand samples — e.g. one
/// recovery time per simulated crash), so we keep every sample rather than
/// bucketing.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// `q`-quantile (0.0 ≤ q ≤ 1.0) by nearest-rank, or `None` if empty.
    ///
    /// Edge cases are total: `q` outside `[0, 1]` clamps, a NaN `q` is
    /// treated as 0, a single-sample histogram returns that sample for
    /// every `q`, and NaN *samples* sort via IEEE total order instead of
    /// panicking (they end up at the extremes, where p0/p100 expose them).
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx.min(self.samples.len() - 1)])
    }

    /// `q`-quantile as a [`SimDuration`], for histograms recorded via
    /// [`Histogram::record_duration`]. Negative/NaN values clamp to zero.
    pub fn quantile_duration(&mut self, q: f64) -> Option<SimDuration> {
        self.quantile(q).map(duration_from_secs)
    }

    /// Arithmetic mean as a [`SimDuration`], or `None` if empty.
    pub fn mean_duration(&self) -> Option<SimDuration> {
        self.mean().map(duration_from_secs)
    }

    /// Largest sample as a [`SimDuration`], or `None` if empty.
    pub fn max_duration(&self) -> Option<SimDuration> {
        self.max().map(duration_from_secs)
    }

    /// All samples in insertion order (pre-sort) or sorted order (post
    /// quantile queries).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Converts fractional seconds back to a duration, mapping NaN (a NaN
/// sample surfaced by p0/p100) to zero rather than propagating it.
fn duration_from_secs(secs: f64) -> SimDuration {
    if secs.is_nan() {
        SimDuration::ZERO
    } else {
        SimDuration::from_secs_f64(secs)
    }
}

/// A `(time, value)` series, e.g. instantaneous throughput over a transfer.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a point. Timestamps should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A named collection of counters, histograms and series.
///
/// The registry is shared by the OS components and read out by the harness
/// after a run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter, creating it at zero if absent.
    pub fn incr(&mut self, name: &str) {
        self.counter_mut(name).incr();
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        self.counter_mut(name).add(n);
    }

    /// Sets the named counter to an absolute value (gauge semantics).
    pub fn set(&mut self, name: &str, v: u64) {
        self.counter_mut(name).set(v);
    }

    /// Mutable access to a counter, creating it if absent.
    pub fn counter_mut(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// Value of a counter, zero if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// Mutable access to a histogram, creating it if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Records a duration sample into the named histogram — the typed
    /// convenience for phase timings, so call sites never hand-convert a
    /// [`SimDuration`] to `f64`.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.histogram_mut(name).record_duration(d);
    }

    /// Read access to a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access to a time series, creating it if absent.
    pub fn series_mut(&mut self, name: &str) -> &mut TimeSeries {
        self.series.entry(name.to_string()).or_default()
    }

    /// Read access to a time series, if present.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates over counter `(name, value)` pairs in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Renders all counters as a stable, sorted report (for logs and tests).
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} = {}\n", v.get()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(3.0)); // nearest rank of 4 samples
    }

    #[test]
    fn histogram_empty_is_none() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_duration_samples_in_seconds() {
        let mut h = Histogram::new();
        h.record_duration(SimDuration::from_millis(480));
        assert_eq!(h.mean(), Some(0.48));
    }

    #[test]
    fn histogram_single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(7.5);
        for q in [0.0, 0.5, 1.0, -3.0, 42.0] {
            assert_eq!(h.quantile(q), Some(7.5), "q={q}");
        }
    }

    #[test]
    fn histogram_quantile_clamps_and_survives_nan() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(2.0);
        h.record(3.0);
        assert_eq!(h.quantile(-0.5), Some(1.0), "q below range clamps to p0");
        assert_eq!(h.quantile(1.5), Some(3.0), "q above range clamps to p100");
        assert_eq!(h.quantile(f64::NAN), Some(1.0), "NaN q treated as p0");
        // A NaN *sample* must not panic the sort; total order puts it last.
        h.record(f64::NAN);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert!(h.quantile(1.0).unwrap().is_nan());
    }

    #[test]
    fn histogram_duration_quantiles() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_duration(0.5), None);
        assert_eq!(h.mean_duration(), None);
        h.record_duration(SimDuration::from_millis(10));
        h.record_duration(SimDuration::from_millis(30));
        assert_eq!(h.quantile_duration(0.0), Some(SimDuration::from_millis(10)));
        assert_eq!(h.quantile_duration(1.0), Some(SimDuration::from_millis(30)));
        assert_eq!(h.mean_duration(), Some(SimDuration::from_millis(20)));
        assert_eq!(h.max_duration(), Some(SimDuration::from_millis(30)));
    }

    #[test]
    fn registry_record_duration_convenience() {
        let mut m = MetricsRegistry::new();
        m.record_duration("recovery.phase.repair", SimDuration::from_millis(25));
        let h = m.histogram_mut("recovery.phase.repair");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_duration(), Some(SimDuration::from_millis(25)));
    }

    #[test]
    fn registry_counters_autocreate() {
        let mut m = MetricsRegistry::new();
        m.incr("rs.restarts");
        m.add("rs.restarts", 2);
        assert_eq!(m.counter("rs.restarts"), 3);
        assert_eq!(m.counter("absent"), 0);
        assert_eq!(m.render_counters(), "rs.restarts = 3\n");
    }

    #[test]
    fn gauge_set_overwrites() {
        let mut m = MetricsRegistry::new();
        m.set("ckpt.store_size", 7);
        m.set("ckpt.store_size", 3);
        assert_eq!(m.counter("ckpt.store_size"), 3);
        assert!(m.render_counters().contains("ckpt.store_size = 3"));
    }

    #[test]
    fn registry_series() {
        let mut m = MetricsRegistry::new();
        m.series_mut("tput").push(SimTime::from_micros(1), 10.0);
        assert_eq!(m.series("tput").unwrap().len(), 1);
        assert!(m.series("none").is_none());
    }
}
