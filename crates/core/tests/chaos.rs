//! Chaos-layer integration tests: driver recovery must stay transparent
//! (§6.1, §6.2) while the IPC fabric drops, delays, duplicates and
//! corrupts messages, stalls endpoints, and kills processes mid-recovery —
//! and the hardened RS must neither flap (restart storms) nor miss
//! defects (lost exit reports).

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus, Wget, WgetStatus};
use phoenix::campaign::{run_chaos_campaign, ChaosCampaignConfig};
use phoenix::os::{hwmap, names, NicKind, Os};
use phoenix_fault::{ChaosPlan, ChaosRule, NameFilter};
use phoenix_hw::rtl8139::Rtl8139;
use phoenix_kernel::chaos::IpcClass;
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_servers::netproto::stream_md5;
use phoenix_simcore::time::{SimDuration, SimTime};

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

#[test]
fn network_recovery_transparent_under_chaos() {
    // §6.1 under fire: the full driver-traffic preset (10% drop, 10%
    // delay, 5% duplication, 2% corruption) plus two user kills; wget
    // still completes with an intact MD5.
    let size = 6_000_000u64;
    let content_seed = 77;
    let mut os = Os::builder()
        .seed(40)
        .with_network(NicKind::Rtl8139)
        .heartbeat(ms(500), 3)
        .chaos(ChaosPlan::driver_traffic(1.0))
        .boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget",
        Box::new(Wget::new(inet, size, content_seed, status.clone())),
    );
    os.run_for(ms(150));
    assert!(os.kill_by_user(names::ETH_RTL8139));
    os.run_for(ms(600));
    assert!(os.kill_by_user(names::ETH_RTL8139));
    let mut guard = 0;
    while !status.borrow().done && guard < 1200 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(
        st.done,
        "download must complete under chaos (bytes={})",
        st.bytes
    );
    assert_eq!(st.bytes, size);
    assert_eq!(
        st.md5.as_deref(),
        Some(stream_md5(content_seed, size).as_str()),
        "no end-to-end corruption despite a corrupting fabric"
    );
    assert!(os.metrics().counter("rs.recoveries") >= 2);
    assert!(
        os.metrics().counter("chaos.dropped") > 0,
        "chaos actually engaged"
    );
    assert_eq!(os.metrics().counter("rs.storms"), 0, "no restart storm");
    assert_eq!(os.metrics().counter("rs.gave_up"), 0);
}

#[test]
fn block_recovery_transparent_under_chaos() {
    // §6.2 under fire: kill the SATA driver mid-read while the fabric
    // misbehaves; dd completes with the right SHA-1 and zero errors.
    let disk_seed = 1234;
    let file_size = 2_000_000u64;
    let sectors = file_size / 512 + 1024;
    let files = vec![FileSpec {
        name: "bigfile".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }];
    let mut os = Os::builder()
        .seed(41)
        .with_disk(sectors, disk_seed, files)
        .heartbeat(ms(500), 3)
        .chaos(ChaosPlan::driver_traffic(1.0))
        .boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
    );
    os.run_for(ms(200));
    assert!(os.kill_by_user(names::BLK_SATA));
    let mut guard = 0;
    while !status.borrow().done && guard < 1200 {
        os.run_for(ms(100));
        guard += 1;
    }
    let st = status.borrow();
    assert!(
        st.done,
        "dd must complete under chaos; bytes={} errors={}",
        st.bytes, st.errors
    );
    assert_eq!(st.errors, 0, "block recovery stays transparent");
    let expected = phoenix::experiments::fig8_expected_sha1(sectors, disk_seed, file_size);
    assert_eq!(st.sha1.as_deref(), Some(expected.as_str()));
    assert!(os.metrics().counter("rs.recoveries") >= 1);
    assert_eq!(os.metrics().counter("rs.storms"), 0);
}

#[test]
fn stalled_driver_trips_heartbeat_detection() {
    // A chaos stall window holds every message to the driver (including
    // heartbeat pings); RS counts the misses and replaces it.
    let stall_from = SimTime::from_micros(2_500_000);
    let stall_until = SimTime::from_micros(6_000_000);
    let mut os = Os::builder()
        .seed(42)
        .with_network(NicKind::Rtl8139)
        .heartbeat(ms(250), 2)
        .chaos(ChaosPlan::new().stall(
            NameFilter::exact(names::ETH_RTL8139),
            stall_from,
            stall_until,
        ))
        .boot();
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.run_for(SimDuration::from_secs(8));
    assert!(
        os.metrics().counter("chaos.stalled") > 0,
        "messages were held"
    );
    assert!(
        os.metrics().counter("rs.defect.heartbeat") >= 1,
        "stall long enough for {} misses",
        2
    );
    let new = os.endpoint(names::ETH_RTL8139).unwrap();
    assert_ne!(old, new, "driver replaced after the stall");
}

#[test]
fn crash_during_recovery_still_recovers() {
    // The chaos layer kills the *fresh incarnation* 2 ms after it spawns;
    // RS must treat that as a new defect and recover again.
    let mut os = Os::builder()
        .seed(43)
        .with_network(NicKind::Rtl8139)
        .chaos(ChaosPlan::new().kill_during_recovery(
            NameFilter::exact(names::ETH_RTL8139),
            0,
            1,
            ms(2),
        ))
        .boot();
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(5));
    assert_eq!(
        os.metrics().counter("chaos.kills"),
        1,
        "the scripted mid-recovery kill fired"
    );
    let new = os
        .endpoint(names::ETH_RTL8139)
        .expect("driver up after double failure");
    assert_ne!(old, new);
    assert!(
        os.metrics().counter("rs.recoveries") >= 2,
        "both the original and the mid-recovery crash were recovered"
    );
    assert_eq!(os.metrics().counter("rs.gave_up"), 0);
}

#[test]
fn restart_storm_escalates_then_gives_up() {
    // A wedged card makes every restart die at init: the crash loop blows
    // the restart budget; RS escalates restart -> restart-with-deps ->
    // extended cool-down -> give up instead of flapping forever.
    let mut os = Os::builder()
        .seed(44)
        .with_network(NicKind::Rtl8139)
        .restart_budget(3, SimDuration::from_secs(10))
        .service_deps(names::ETH_RTL8139, &[names::INET])
        .boot();
    let inet_before = os.endpoint(names::INET).unwrap();
    {
        let nic: &mut Rtl8139 = os.device_mut(hwmap::NIC).unwrap();
        nic.force_wedge();
    }
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(30));
    assert!(
        os.metrics().counter("rs.storms") >= 3,
        "budget exceeded repeatedly"
    );
    assert_eq!(
        os.metrics().counter("rs.gave_up"),
        1,
        "ladder ends in give-up"
    );
    assert!(!os.is_up(names::ETH_RTL8139));
    // Level-1 escalation restarted the declared dependent.
    assert!(os.trace().find("restarting dependent inet").is_some());
    assert_ne!(
        os.endpoint(names::INET),
        Some(inet_before),
        "inet was restarted too"
    );
    // The ladder bounds the flapping: without it the 10ms exec latency
    // would allow hundreds of restart attempts in 30s.
    assert!(os.metrics().counter("rs.defect.exit") < 20);
}

#[test]
fn lost_exit_report_is_reconciled() {
    // Chaos drops every PM->RS send (the SIGCHLD path). The liveness
    // audit notices the dead endpoint anyway and runs recovery.
    let mut os = Os::builder()
        .seed(45)
        .with_network(NicKind::Rtl8139)
        .chaos(
            ChaosPlan::new().rule(
                ChaosRule::new()
                    .from(NameFilter::exact("pm"))
                    .to(NameFilter::exact("rs"))
                    .classes(&[IpcClass::Send])
                    .drop(1.0),
            ),
        )
        .boot();
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(5));
    assert!(
        os.metrics().counter("rs.lost_sigchld") >= 1,
        "the loss was detected"
    );
    let new = os
        .endpoint(names::ETH_RTL8139)
        .expect("recovered without any SIGCHLD");
    assert_ne!(old, new);
}

#[test]
fn lost_publish_ack_is_retried_and_alerted() {
    // DS acknowledgements never reach RS: publish verification retries a
    // bounded number of times, then alerts — while recovery itself still
    // completes (the publish *request* did get through).
    let mut os = Os::builder()
        .seed(46)
        .with_network(NicKind::Rtl8139)
        .chaos(
            ChaosPlan::new().rule(
                ChaosRule::new()
                    .from(NameFilter::exact("ds"))
                    .to(NameFilter::exact("rs"))
                    .classes(&[IpcClass::Reply])
                    .drop(1.0),
            ),
        )
        .boot();
    let old = os.endpoint(names::ETH_RTL8139).unwrap();
    os.kill_by_user(names::ETH_RTL8139);
    os.run_for(SimDuration::from_secs(5));
    assert_ne!(
        os.endpoint(names::ETH_RTL8139),
        Some(old),
        "recovery completes"
    );
    assert!(
        os.metrics().counter("rs.publish_retries") >= 1,
        "re-publish attempted"
    );
    assert!(
        os.metrics().counter("rs.publish_failed") >= 1,
        "verification gave up after the retry budget and alerted"
    );
}

#[test]
fn chaos_campaign_moderate_intensity_recovers_everything() {
    // The acceptance bar: at moderate intensity (<=10% drop, one
    // mid-recovery kill) every kill recovers and no restart budget is
    // exceeded.
    let cfg = ChaosCampaignConfig {
        kills_per_target: 2,
        kill_interval: SimDuration::from_secs(3),
        ..ChaosCampaignConfig::default()
    };
    let r = run_chaos_campaign(&cfg);
    assert_eq!(r.kills.len(), 4);
    assert!(
        (r.recovery_rate() - 1.0).abs() < f64::EPSILON,
        "100% eventual recovery required: {}",
        r.render()
    );
    assert_eq!(r.storms, 0, "zero restart storms required: {}", r.render());
    assert_eq!(r.gave_up, 0);
    assert_eq!(r.recovery_kills, 1, "the scripted mid-recovery kill fired");
    assert!(r.mean_mttr() > SimDuration::ZERO);
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    // Determinism regression: chaos draws come from a forked, dedicated
    // stream, so two same-seed campaigns must produce identical metrics
    // digests (and thus identical behavior).
    let cfg = ChaosCampaignConfig {
        kills_per_target: 1,
        kill_interval: SimDuration::from_secs(2),
        ..ChaosCampaignConfig::default()
    };
    let a = run_chaos_campaign(&cfg);
    let b = run_chaos_campaign(&cfg);
    assert!(!a.digest.is_empty());
    assert_eq!(a.digest, b.digest, "same seed, same digest");
    assert_eq!(a.render(), b.render(), "same seed, same summary");
}
