//! The write-ahead request log (caller side) and the consumed-progress
//! cursor (driver side).
//!
//! Together these two halves make stream consumption decidable. The
//! caller appends each chunk to its [`WriteAheadLog`] *before* sending
//! it, stamped with a monotone sequence number and its absolute stream
//! offset. The driver commits bytes to hardware and acknowledges its
//! cumulative consumed watermark in the reply. Entries survive in the
//! log until the watermark passes them; after a driver death the caller
//! simply resends the first unacknowledged entry — the fresh driver's
//! [`ConsumedCursor`] discards any already-committed prefix, so replay
//! duplicates nothing and loses nothing.

use std::collections::VecDeque;

/// One logged request: sequence number, absolute stream offset, payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Monotone per-client sequence number (1-based; 0 is "no WAL").
    pub seq: u64,
    /// Stream offset of `data[0]`.
    pub offset: u64,
    /// The chunk payload.
    pub data: Vec<u8>,
}

/// Caller-held write-ahead log for one stream.
///
/// Invariants: entries are contiguous and offset-ordered; the head entry
/// is the first one not fully covered by the acknowledged watermark.
#[derive(Debug, Default)]
pub struct WriteAheadLog {
    entries: VecDeque<WalEntry>,
    next_seq: u64,
    next_offset: u64,
    acked: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Appends a chunk, assigning its sequence number and offset.
    /// Returns the assigned sequence number.
    // analyze:recovery-root
    pub fn append(&mut self, data: Vec<u8>) -> u64 {
        self.next_seq += 1;
        let entry = WalEntry {
            seq: self.next_seq,
            offset: self.next_offset,
            data,
        };
        self.next_offset += entry.data.len() as u64;
        self.entries.push_back(entry);
        self.next_seq
    }

    /// Applies a consumed-progress acknowledgment (an absolute
    /// watermark). Regressions are ignored — an old in-flight reply must
    /// not roll progress back. Returns the number of newly acknowledged
    /// bytes.
    // analyze:recovery-root
    pub fn ack(&mut self, consumed: u64) -> u64 {
        let consumed = consumed.min(self.next_offset);
        if consumed <= self.acked {
            return 0;
        }
        let gained = consumed - self.acked;
        self.acked = consumed;
        while let Some(front) = self.entries.front() {
            if front.offset + front.data.len() as u64 <= self.acked {
                self.entries.pop_front();
            } else {
                break;
            }
        }
        gained
    }

    /// The first entry not fully acknowledged — what to (re)send next.
    /// A partially consumed entry is returned whole; the driver's cursor
    /// discards the committed prefix.
    // analyze:recovery-root
    pub fn next_unacked(&self) -> Option<&WalEntry> {
        self.entries.front()
    }

    /// Acknowledged consumed watermark.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Total bytes ever appended.
    pub fn appended(&self) -> u64 {
        self.next_offset
    }

    /// Bytes appended but not yet acknowledged.
    pub fn pending_bytes(&self) -> u64 {
        self.next_offset - self.acked
    }

    /// Entries still held for possible replay.
    pub fn pending_entries(&self) -> usize {
        self.entries.len()
    }

    /// Whether every appended byte has been acknowledged.
    pub fn is_drained(&self) -> bool {
        self.acked == self.next_offset
    }
}

/// How an incoming logged request relates to the driver's committed
/// watermark: which bytes are fresh, which are replay duplicates, and
/// whether the request sits past a lost watermark (gap).
#[derive(Debug, PartialEq, Eq)]
pub struct IngestPlan<'a> {
    /// Bytes not yet committed (suffix of the request payload). Empty
    /// for a pure duplicate.
    pub fresh: &'a [u8],
    /// Stream offset of `fresh[0]` (meaningful when `fresh` is
    /// non-empty); pass it to [`ConsumedCursor::commit_at`].
    pub start: u64,
    /// Prefix bytes of this request already committed by a previous
    /// incarnation — replay duplicates to discard.
    pub dup_bytes: u64,
    /// Bytes between the cursor and the request offset. Non-zero only
    /// when the driver's watermark was lost (missing/corrupt snapshot):
    /// the caller's log is authoritative — acknowledgments are only ever
    /// sent for committed bytes — so the cursor jumps forward.
    pub gap_bytes: u64,
}

/// Driver-side consumed-progress watermark with replay deduplication.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConsumedCursor {
    committed: u64,
}

impl ConsumedCursor {
    /// A cursor at stream position zero.
    pub fn new() -> Self {
        ConsumedCursor::default()
    }

    /// Restores the watermark from a snapshot.
    pub fn restore(&mut self, committed: u64) {
        self.committed = committed;
    }

    /// Bytes committed to hardware so far (the acknowledgment value).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Classifies a logged request at `offset` against the watermark.
    pub fn plan<'a>(&self, offset: u64, data: &'a [u8]) -> IngestPlan<'a> {
        let len = data.len() as u64;
        let start = offset.max(self.committed);
        let dup = (self.committed.saturating_sub(offset)).min(len);
        let gap = offset.saturating_sub(self.committed);
        let fresh = if dup >= len {
            &data[data.len()..]
        } else {
            &data[dup as usize..]
        };
        IngestPlan {
            fresh,
            start,
            dup_bytes: dup,
            gap_bytes: gap,
        }
    }

    /// Records `n` bytes committed starting at `start` (from a plan).
    pub fn commit_at(&mut self, start: u64, n: u64) {
        self.committed = self.committed.max(start + n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_contiguous_offsets_and_seqs() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.append(vec![0; 100]), 1);
        assert_eq!(wal.append(vec![0; 50]), 2);
        let e = wal.next_unacked().expect("head entry");
        assert_eq!((e.seq, e.offset), (1, 0));
        assert_eq!(wal.appended(), 150);
        assert_eq!(wal.pending_entries(), 2);
    }

    #[test]
    fn ack_trims_fully_consumed_entries_and_ignores_regressions() {
        let mut wal = WriteAheadLog::new();
        wal.append(vec![0; 100]);
        wal.append(vec![0; 100]);
        assert_eq!(wal.ack(130), 130);
        // Entry 1 trimmed; entry 2 partially consumed stays replayable.
        let e = wal.next_unacked().expect("partial entry retained");
        assert_eq!((e.seq, e.offset), (2, 100));
        assert_eq!(wal.ack(120), 0, "stale ack must not regress");
        assert_eq!(wal.acked(), 130);
        assert_eq!(wal.ack(500), 70, "acks clamp to appended bytes");
        assert!(wal.is_drained());
        assert_eq!(wal.next_unacked(), None);
    }

    #[test]
    fn cursor_discards_replayed_prefix() {
        let mut c = ConsumedCursor::new();
        c.restore(130);
        let data = vec![7u8; 100];
        // Entry at offset 100: 30 bytes already committed, 70 fresh.
        let plan = c.plan(100, &data);
        assert_eq!(plan.dup_bytes, 30);
        assert_eq!(plan.gap_bytes, 0);
        assert_eq!(plan.start, 130);
        assert_eq!(plan.fresh.len(), 70);
        c.commit_at(plan.start, plan.fresh.len() as u64);
        assert_eq!(c.committed(), 200);
    }

    #[test]
    fn cursor_reports_pure_duplicates_and_gaps() {
        let mut c = ConsumedCursor::new();
        c.restore(200);
        let dup = c.plan(100, &[0u8; 100]);
        assert!(dup.fresh.is_empty());
        assert_eq!(dup.dup_bytes, 100);
        // Lost watermark: caller replays from its acked offset 300.
        c.restore(0);
        let gap = c.plan(300, &[0u8; 10]);
        assert_eq!(gap.gap_bytes, 300);
        assert_eq!(gap.start, 300);
        assert_eq!(gap.fresh.len(), 10);
        c.commit_at(gap.start, 10);
        assert_eq!(c.committed(), 310, "cursor jumps past the gap");
    }
}
