//! Red/green fixture suite for the conformance and reachability passes.
//!
//! Each scenario is a pair: a *red* fixture that must produce exactly
//! the expected finding, and a *green* twin differing only in the
//! property under test that must stay silent. This pins the analyzer's
//! sensitivity in both directions — a pass that goes quiet on the red
//! fixture has lost its teeth; one that fires on the green fixture has
//! started crying wolf.

use std::collections::BTreeMap;

use phoenix_analyze::deadedge::DeadEdgeReport;
use phoenix_analyze::{conformance, lint, reach, report};

fn src_pair(rel: &str, src: &str) -> Vec<(String, String)> {
    vec![(rel.to_string(), src.to_string())]
}

fn reach_input(rel: &str, krate: &str, src: &str) -> reach::Input {
    reach::Input {
        rel: rel.to_string(),
        krate: krate.to_string(),
        source: src.to_string(),
    }
}

fn no_closure() -> BTreeMap<String, std::collections::BTreeSet<String>> {
    BTreeMap::new()
}

// ---------------------------------------------------------------- slots

const SLOT_COLLISION_RED: &str = r#"
pub mod ping {
    /// proto: request, reply=PONG, reply-params 1=alpha
    pub const PING: u32 = 0x100;
    /// proto: request, reply=PONG, reply-params 1=beta
    pub const PROBE: u32 = 0x102;
    /// proto: reply, params 0=status
    pub const PONG: u32 = 0x101;
}
"#;

const SLOT_COLLISION_GREEN: &str = r#"
pub mod ping {
    /// proto: request, reply=PONG, reply-params 1=alpha
    pub const PING: u32 = 0x100;
    /// proto: request, reply=PONG, reply-params 1=alpha
    pub const PROBE: u32 = 0x102;
    /// proto: reply, params 0=status
    pub const PONG: u32 = 0x101;
}
"#;

#[test]
fn slot_collision_red_green() {
    let red = conformance::analyze(&src_pair("crates/x/src/proto.rs", SLOT_COLLISION_RED), &[]);
    let hits: Vec<_> = red
        .findings
        .iter()
        .filter(|f| f.rule == "proto-slot-collision")
        .collect();
    assert_eq!(hits.len(), 1, "exactly one collision: {:?}", red.findings);
    assert!(
        hits[0].message.contains("alpha") && hits[0].message.contains("beta"),
        "collision names both owners: {}",
        hits[0].message
    );

    let green = conformance::analyze(
        &src_pair("crates/x/src/proto.rs", SLOT_COLLISION_GREEN),
        &[],
    );
    assert!(
        green.findings.is_empty(),
        "same-owner claims merge: {:?}",
        green.findings
    );
}

// ------------------------------------------------------------- coverage

const COVERAGE_PROTO: &str = r#"
pub mod ping {
    /// proto: request, reply=PONG, params 0=nonce
    pub const PING: u32 = 0x100;
    /// proto: reply, params 0=nonce
    pub const PONG: u32 = 0x101;
}
"#;

const COVERAGE_USAGE_RED: &str = r#"
use crate::proto::ping;
fn client(ctx: &mut Ctx, dst: Endpoint) {
    ctx.sendrec(dst, Message::new(ping::PING));
}
fn client_done(reply: &Message) -> bool {
    reply.mtype == ping::PONG
}
"#;

const COVERAGE_USAGE_GREEN: &str = r#"
use crate::proto::ping;
fn client(ctx: &mut Ctx, dst: Endpoint) {
    ctx.sendrec(dst, Message::new(ping::PING));
}
fn client_done(reply: &Message) -> bool {
    reply.mtype == ping::PONG
}
fn server(ctx: &mut Ctx, call: CallId, msg: &Message) {
    match msg.mtype {
        ping::PING => ctx.reply(call, Message::new(ping::PONG)),
        _ => {}
    }
}
"#;

#[test]
fn sent_but_unhandled_red_green() {
    let proto = src_pair("crates/x/src/proto.rs", COVERAGE_PROTO);

    // Red: a client sends PING, but no dispatch arm anywhere matches it
    // — the message is emitted and dropped on the floor. Its reply is
    // the dual: compared against but never constructed.
    let red = conformance::analyze(
        &proto,
        &src_pair("crates/x/src/client.rs", COVERAGE_USAGE_RED),
    );
    let rules: Vec<&str> = red.findings.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"proto-unhandled"), "findings: {rules:?}");
    assert!(rules.contains(&"proto-unsent"), "findings: {rules:?}");

    // Green: add the server's dispatch arm and the reply construction.
    let green = conformance::analyze(
        &proto,
        &src_pair("crates/x/src/client.rs", COVERAGE_USAGE_GREEN),
    );
    assert!(green.findings.is_empty(), "findings: {:?}", green.findings);
    let ping = &green.usage["ping::PING"];
    assert!(ping.sends >= 1 && ping.handles >= 1);
}

const SUPPRESSED_PROTO: &str = r#"
pub mod ping {
    /// proto: request, reply=PONG, params 0=nonce
    // analyze:allow(proto-unhandled): fixture — the handler ships next PR.
    pub const PING: u32 = 0x100;
    /// proto: reply, params 0=nonce
    // analyze:allow(proto-unsent): dual of PING's proto-unhandled.
    pub const PONG: u32 = 0x101;
}
"#;

#[test]
fn conformance_pragma_moves_finding_to_suppressed() {
    let out = conformance::analyze(
        &src_pair("crates/x/src/proto.rs", SUPPRESSED_PROTO),
        &src_pair("crates/x/src/client.rs", COVERAGE_USAGE_RED),
    );
    assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    let rules: Vec<&str> = out.suppressed.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["proto-unhandled", "proto-unsent"]);
}

// -------------------------------------------------------------    reach

const REACH_RED: &str = r#"
// analyze:recovery-root
fn on_event(x: Option<u32>) {
    helper(x);
}
fn helper(x: Option<u32>) {
    deeper(x);
}
fn deeper(x: Option<u32>) {
    let _ = x.unwrap();
}
"#;

// Identical call chain, no root marker: nothing is recovery-critical.
const REACH_GREEN: &str = r#"
fn on_event(x: Option<u32>) {
    helper(x);
}
fn helper(x: Option<u32>) {
    deeper(x);
}
fn deeper(x: Option<u32>) {
    let _ = x.unwrap();
}
"#;

#[test]
fn transitive_panic_through_helper_red_green() {
    let red = reach::analyze(
        &[reach_input("crates/x/src/srv.rs", "x", REACH_RED)],
        &no_closure(),
    );
    assert_eq!(red.findings.len(), 1, "findings: {:?}", red.findings);
    let f = &red.findings[0];
    assert_eq!(f.what, ".unwrap()");
    assert_eq!(
        f.path.len(),
        3,
        "root -> helper -> deeper, got {:?}",
        f.path
    );
    assert!(f.path[0].ends_with("on_event"));
    assert!(f.path[2].ends_with("deeper"));
    assert_eq!(red.reachable, 3);

    let green = reach::analyze(
        &[reach_input("crates/x/src/srv.rs", "x", REACH_GREEN)],
        &no_closure(),
    );
    assert!(green.findings.is_empty());
    assert_eq!(green.reachable, 0, "no roots, nothing reachable");
    assert_eq!(green.functions, 3, "the graph still sees every fn");
}

const REACH_SUPPRESSED: &str = r#"
// analyze:recovery-root
fn on_event(x: Option<u32>) {
    helper(x);
}
fn helper(x: Option<u32>) {
    // analyze:allow(panic-reach): fixture — invariant justified here.
    let _ = x.unwrap();
}
"#;

#[test]
fn reach_pragma_moves_site_to_suppressed() {
    let out = reach::analyze(
        &[reach_input("crates/x/src/srv.rs", "x", REACH_SUPPRESSED)],
        &no_closure(),
    );
    assert!(out.findings.is_empty(), "findings: {:?}", out.findings);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].what, ".unwrap()");
}

// ------------------------------------------------------- subsumption

/// The lexical `unwrap-recovery` rule only watches an `only_in` path
/// list; the reachability pass follows the call graph wherever it goes.
/// Both halves below share one source: a recovery root whose helper
/// unwraps.
const SUBSUMPTION_SRC: &str = r#"
// analyze:recovery-root
fn on_event(x: Option<u32>) {
    helper(x);
}
fn helper(x: Option<u32>) {
    let _ = x.unwrap();
}
"#;

#[test]
fn reachability_subsumes_lexical_rule() {
    let rules = lint::default_rules();

    // Inside the lexical scope (rs.rs is in `only_in`): both fire.
    let lexical_in = lint::lint_source("crates/servers/src/rs.rs", SUBSUMPTION_SRC, &rules);
    assert!(
        lexical_in.iter().any(|f| f.rule == "unwrap-recovery"),
        "lexical rule covers its scope"
    );
    let reach_in = reach::analyze(
        &[reach_input(
            "crates/servers/src/rs.rs",
            "servers",
            SUBSUMPTION_SRC,
        )],
        &no_closure(),
    );
    assert_eq!(
        reach_in.findings.len(),
        1,
        "reach fires wherever lexical does"
    );

    // Outside the lexical scope: the lexical rule is blind, the
    // reachability pass still fires — strict subsumption.
    let lexical_out = lint::lint_source("crates/hw/src/gadget.rs", SUBSUMPTION_SRC, &rules);
    assert!(
        !lexical_out.iter().any(|f| f.rule == "unwrap-recovery"),
        "gadget.rs is outside unwrap-recovery's only_in list"
    );
    let reach_out = reach::analyze(
        &[reach_input(
            "crates/hw/src/gadget.rs",
            "hw",
            SUBSUMPTION_SRC,
        )],
        &no_closure(),
    );
    assert_eq!(
        reach_out.findings.len(),
        1,
        "reachability is path-scope-free"
    );
}

// ------------------------------------------------------------- report

#[test]
fn report_is_byte_stable() {
    let conf = conformance::analyze(
        &src_pair("crates/x/src/proto.rs", COVERAGE_PROTO),
        &src_pair("crates/x/src/client.rs", COVERAGE_USAGE_RED),
    );
    let rch = reach::analyze(
        &[reach_input("crates/x/src/srv.rs", "x", REACH_RED)],
        &no_closure(),
    );
    let dead = DeadEdgeReport::default();

    let a = report::build(&[], &dead, &conf, &rch).render();
    let b = report::build(&[], &dead, &conf, &rch).render();
    assert_eq!(a, b, "two builds over identical inputs are byte-identical");
    assert!(a.ends_with('\n'));
    assert!(a.contains("\"schema\": \"phoenix-analyze/v1\""));
}

#[test]
fn empty_report_golden() {
    let conf = conformance::analyze(&[], &[]);
    let rch = reach::analyze(&[], &no_closure());
    let dead = DeadEdgeReport::default();
    let rendered = report::build(&[], &dead, &conf, &rch).render();
    let golden = "{\n\
                  \x20 \"conformance\": {\n\
                  \x20   \"findings\": [],\n\
                  \x20   \"kinds\": [],\n\
                  \x20   \"slot_registry\": {},\n\
                  \x20   \"suppressed\": []\n\
                  \x20 },\n\
                  \x20 \"dead_edges\": {\n\
                  \x20   \"edges\": [],\n\
                  \x20   \"glob_warnings\": []\n\
                  \x20 },\n\
                  \x20 \"lint\": {\n\
                  \x20   \"findings\": []\n\
                  \x20 },\n\
                  \x20 \"reach\": {\n\
                  \x20   \"findings\": [],\n\
                  \x20   \"functions\": 0,\n\
                  \x20   \"reachable\": 0,\n\
                  \x20   \"roots\": [],\n\
                  \x20   \"suppressed\": []\n\
                  \x20 },\n\
                  \x20 \"schema\": \"phoenix-analyze/v1\"\n\
                  }\n";
    assert_eq!(rendered, golden);
}
