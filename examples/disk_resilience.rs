//! The Fig. 5 / Fig. 8 scenario: `dd` reads a large file through VFS and
//! the file server while the SATA driver is repeatedly killed. Because
//! block I/O is idempotent, the file server parks the aborted request,
//! waits for the reincarnated driver, reissues it — and the application
//! sees nothing but a throughput dip. The SHA-1 proves data integrity.
//!
//! Run with: `cargo run --release --example disk_resilience`

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus};
use phoenix::experiments::{fig8_expected_sha1, fig8_files};
use phoenix::os::{names, Os};
use phoenix_simcore::time::SimDuration;

fn main() {
    let file_size: u64 = 100_000_000; // 100 MB file
    let disk_seed = 77;
    let sectors = file_size / 512 + 1024;
    let kill_interval = SimDuration::from_secs(2);

    let mut os = Os::builder()
        .seed(9)
        .with_disk(sectors, disk_seed, fig8_files(file_size))
        .boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up");
    let status = Rc::new(RefCell::new(DdStatus::default()));
    let start = os.now();
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 128 * 1024, status.clone())),
    );
    println!(
        "dd-ing {} MB off the SATA disk while killing {} every {kill_interval} ...",
        file_size / 1_000_000,
        names::BLK_SATA
    );

    let mut kills = 0;
    let mut next_kill = start + kill_interval;
    while !status.borrow().done {
        os.run_for(SimDuration::from_millis(100));
        if os.now() >= next_kill && !status.borrow().done {
            if os.kill_by_user(names::BLK_SATA) {
                kills += 1;
                println!(
                    "  t={} kill #{kills} (request marked pending, reissued after restart)",
                    os.now()
                );
            }
            next_kill = os.now() + kill_interval;
        }
    }

    let st = status.borrow();
    let elapsed = st.finished_at.expect("done").since(start);
    let expected = fig8_expected_sha1(sectors, disk_seed, file_size);
    println!(
        "\nread finished in {elapsed} ({:.2} MB/s)",
        file_size as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!(
        "driver kills: {kills}, application-visible errors: {}",
        st.errors
    );
    println!("sha1 received: {}", st.sha1.as_deref().unwrap_or("?"));
    println!("sha1 expected: {expected}");
    assert_eq!(st.sha1.as_deref(), Some(expected.as_str()));
    assert_eq!(st.errors, 0);
    println!(
        "=> transparent recovery: {} aborted requests reissued by the file server",
        os.metrics().counter("mfs.reissues")
    );
}
