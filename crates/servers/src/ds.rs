//! The data store (§5.3): naming, publish-subscribe, and private state
//! backup.
//!
//! The data store is "a simple name server that stores stable component
//! names along with the component's current IPC endpoint". The
//! reincarnation server keeps the naming records up to date; dependent
//! components subscribe to prefix patterns (the network server registers
//! `eth.*`) and are notified when a matching record changes, which is what
//! kicks off their own reintegration procedure after a driver restart.
//!
//! Private records let stateful components back up data and retrieve it
//! after a restart; ownership is authenticated against the *stable name*
//! bound to the caller's endpoint in the naming records, so a restarted
//! incarnation (new endpoint, same name) can still read its own backups.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use phoenix_ckpt::proto::{ckpt, ckpt_status};
use phoenix_ckpt::{CheckpointStore, RestoreOutcome, SaveOutcome};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{Endpoint, Message};
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::proto::{ds, pack_endpoint, unpack_endpoint};

/// Status codes in DS replies.
pub mod ds_status {
    /// Success.
    pub const OK: u64 = 0;
    /// Key not found.
    pub const NOT_FOUND: u64 = 1;
    /// No pending update (CHECK drained the queue).
    pub const NO_UPDATE: u64 = 11;
    /// Caller may not publish (only the reincarnation server may).
    pub const DENIED: u64 = 13;
    /// Owner authentication failed.
    pub const NOT_OWNER: u64 = 14;
    /// Malformed request.
    pub const BAD_REQUEST: u64 = 22;
}

/// The DS private-record table: key → (owner stable name, value). Shared
/// between the DS process and the embedding machine (same pattern as the
/// checkpoint store) so a fleet agent can export a node's private state
/// for peer-held snapshots and re-seed a reborn node's DS from one.
pub type SharedRecords = Rc<RefCell<BTreeMap<String, (String, Vec<u8>)>>>;

#[derive(Debug, Clone)]
struct Subscription {
    subscriber: Endpoint,
    /// Prefix before the `*` wildcard (or whole key for exact match).
    prefix: String,
    exact: bool,
}

impl Subscription {
    fn matches(&self, key: &str) -> bool {
        if self.exact {
            key == self.prefix
        } else {
            key.starts_with(&self.prefix)
        }
    }
}

/// The data store server.
#[derive(Debug)]
pub struct DataStore {
    /// Who may publish/retract naming records (the reincarnation server).
    publisher: Option<Endpoint>,
    names: BTreeMap<String, Endpoint>,
    subs: Vec<Subscription>,
    /// Pending `(key, endpoint, recovery id, span id)` updates per
    /// subscriber, drained by CHECK. The trailing wire-encoded ids (0 =
    /// none) let a subscriber tag its reintegration work with the episode
    /// that caused the update.
    pending: BTreeMap<Endpoint, VecDeque<(String, Endpoint, u64, u64)>>,
    /// Private records: key -> (owner stable name, value). Behind a
    /// shared handle so the embedding machine can export/import them
    /// out-of-band (fleet snapshot replication); the DS process remains
    /// the only in-band writer.
    records: SharedRecords,
    /// Driver checkpoint store (the `phoenix-ckpt` DS extension). Shared
    /// with the embedding `Os` so tests and benches can inspect — or
    /// tamper with — records at rest. `None` = extension disabled:
    /// SAVE/RESTORE answer `DENIED`.
    ckpt_store: Option<Rc<RefCell<CheckpointStore>>>,
    /// Recovery episode behind the most recent publish of each stable
    /// name (rid, span wire values). Returned with RESTORE replies so a
    /// restarted driver can tag its restore/replay trace events with the
    /// episode that restarted it.
    last_publish: BTreeMap<String, (u64, u64)>,
}

impl DataStore {
    /// Creates an empty data store. The first process to publish becomes
    /// the trusted publisher if none was set (the machine wires RS in via
    /// [`DataStore::with_publisher`] in practice).
    pub fn new() -> Self {
        DataStore {
            publisher: None,
            names: BTreeMap::new(),
            subs: Vec::new(),
            pending: BTreeMap::new(),
            records: Rc::new(RefCell::new(BTreeMap::new())),
            ckpt_store: None,
            last_publish: BTreeMap::new(),
        }
    }

    /// Restricts publishing to `publisher` from the start.
    pub fn with_publisher(publisher: Endpoint) -> Self {
        let mut d = Self::new();
        d.publisher = Some(publisher);
        d
    }

    /// Enables the driver-checkpoint extension, backed by `store`
    /// (builder style). The handle is shared: the embedding machine keeps
    /// a clone for out-of-band inspection and fault injection.
    pub fn with_checkpoint_store(mut self, store: Rc<RefCell<CheckpointStore>>) -> Self {
        self.ckpt_store = Some(store);
        self
    }

    /// Backs the private-record table with a shared handle (builder
    /// style). The embedding machine keeps a clone so node-level state
    /// can be exported for peer-held snapshots and restored into a
    /// rebooted node's DS.
    pub fn with_shared_records(mut self, records: SharedRecords) -> Self {
        self.records = records;
        self
    }

    fn owner_name_of(&self, ep: Endpoint) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, &e)| e == ep)
            .map(|(k, _)| k.as_str())
    }

    // [recovery:begin]
    fn publish(&mut self, ctx: &mut Ctx<'_>, key: String, ep: Endpoint, rid: u64, span: u64) {
        self.names.insert(key.clone(), ep);
        self.last_publish.insert(key.clone(), (rid, span));
        let ev = ctx
            .event(TraceLevel::Info, format!("publish {key} -> {ep}"))
            .with_field("ev", "publish")
            .with_field("key", key.as_str())
            .in_recovery_opt(RecoveryId::from_wire(rid))
            .with_parent_opt(SpanId::from_wire(span));
        ctx.trace_event(ev);
        ctx.metrics().incr("ds.publishes");
        // Queue an update + notify for every matching subscriber. The
        // notify is payload-free (MINIX `notify`); subscribers come and
        // CHECK for the actual update, decoupling producer and consumers.
        let matches: Vec<Endpoint> = self
            .subs
            .iter()
            .filter(|s| s.matches(&key))
            .map(|s| s.subscriber)
            .collect();
        for sub in matches {
            self.pending
                .entry(sub)
                .or_default()
                .push_back((key.clone(), ep, rid, span));
            let _ = ctx.notify(sub);
        }
    }

    fn handle_ckpt_save(&mut self, ctx: &mut Ctx<'_>, msg: &Message) -> Message {
        let fail = |st: u64| Message::new(ckpt::SAVE_REPLY).with_param(0, st);
        let Some(store) = self.ckpt_store.as_ref() else {
            return fail(ckpt_status::DENIED);
        };
        let Some(owner) = self.owner_name_of(msg.source).map(str::to_string) else {
            ctx.metrics().incr("ds.ckpt_denied");
            return fail(ckpt_status::DENIED);
        };
        let klen = msg.param(0) as usize;
        if klen == 0 || klen > msg.data.len() {
            return fail(ckpt_status::CORRUPT);
        }
        let key = String::from_utf8_lossy(&msg.data[..klen]).to_string();
        let outcome = store.borrow_mut().save(&owner, &key, &msg.data[klen..]);
        match outcome {
            SaveOutcome::Stored { seq } => {
                ctx.metrics().incr("ds.ckpt_saves");
                // Occupancy gauges: campaign digests surface checkpoint-
                // store growth (a leaking snapshot shows up as a drifting
                // gauge, not an invisible heap).
                let (bytes, records) = {
                    let s = store.borrow();
                    (s.total_bytes(), s.len() as u64)
                };
                ctx.metrics().set("ds.snapshot_bytes", bytes);
                ctx.metrics().set("ckpt.store_size", records);
                Message::new(ckpt::SAVE_REPLY)
                    .with_param(0, ckpt_status::OK)
                    .with_param(1, seq)
            }
            SaveOutcome::Stale { .. } => {
                ctx.metrics().incr("ds.ckpt_stale_rejected");
                fail(ckpt_status::STALE)
            }
            SaveOutcome::Corrupt => {
                ctx.metrics().incr("ds.ckpt_corrupt_rejected");
                fail(ckpt_status::CORRUPT)
            }
        }
    }

    fn handle_ckpt_restore(&mut self, ctx: &mut Ctx<'_>, msg: &Message) -> Message {
        let fail = |st: u64| Message::new(ckpt::RESTORE_REPLY).with_param(0, st);
        let Some(store) = self.ckpt_store.as_ref() else {
            return fail(ckpt_status::DENIED);
        };
        let Some(owner) = self.owner_name_of(msg.source).map(str::to_string) else {
            ctx.metrics().incr("ds.ckpt_denied");
            return fail(ckpt_status::DENIED);
        };
        // Thread the recovery episode that (re)published this name so the
        // driver can tag its restore/replay trace events with it; 0/0 on
        // a boot-time publish.
        let (rid, span) = self.last_publish.get(&owner).copied().unwrap_or((0, 0));
        let key = String::from_utf8_lossy(&msg.data).to_string();
        let outcome = store.borrow_mut().restore(&owner, &key);
        let reply = match outcome {
            RestoreOutcome::Found(snap) => {
                ctx.metrics().incr("ds.ckpt_restores");
                Message::new(ckpt::RESTORE_REPLY)
                    .with_param(0, ckpt_status::OK)
                    .with_data(snap.encode())
            }
            RestoreOutcome::Missing => {
                ctx.metrics().incr("ds.ckpt_restore_missing");
                fail(ckpt_status::NOT_FOUND)
            }
            RestoreOutcome::Corrupt => {
                ctx.metrics().incr("ds.ckpt_restore_corrupt");
                fail(ckpt_status::CORRUPT)
            }
        };
        reply.with_param(1, rid).with_param(2, span)
    }

    /// Serves a warm spare's `ckpt::TAIL` poll: the latest snapshot
    /// frame of the *primary's* record. Authorization is by naming
    /// convention — only the endpoint published under `standby.<name>`
    /// may tail `<name>`'s records — which, like every owner check here,
    /// binds the capability to the caller's live endpoint generation.
    fn handle_ckpt_tail(&mut self, ctx: &mut Ctx<'_>, msg: &Message) -> Message {
        let fail = |st: u64| Message::new(ckpt::TAIL_REPLY).with_param(0, st);
        let Some(store) = self.ckpt_store.as_ref() else {
            return fail(ckpt_status::DENIED);
        };
        let Some(primary) = self
            .owner_name_of(msg.source)
            .and_then(|n| n.strip_prefix("standby."))
            .map(str::to_string)
        else {
            ctx.metrics().incr("ds.ckpt_tail_denied");
            return fail(ckpt_status::DENIED);
        };
        let key = String::from_utf8_lossy(&msg.data).to_string();
        let outcome = store.borrow_mut().restore(&primary, &key);
        match outcome {
            RestoreOutcome::Found(snap) => {
                ctx.metrics().incr("ds.ckpt_tails");
                Message::new(ckpt::TAIL_REPLY)
                    .with_param(0, ckpt_status::OK)
                    .with_data(snap.encode())
            }
            RestoreOutcome::Missing => fail(ckpt_status::NOT_FOUND),
            RestoreOutcome::Corrupt => {
                ctx.metrics().incr("ds.ckpt_restore_corrupt");
                fail(ckpt_status::CORRUPT)
            }
        }
    }

    /// Re-frames every checkpoint record owned by the named primary with
    /// a clamped incarnation, so a promoted spare — which lives in a
    /// younger slot generation than the dead primary — can keep saving
    /// without tripping the store's ghost check. Only the trusted
    /// publisher (RS) may request this.
    fn handle_ckpt_promote(&mut self, ctx: &mut Ctx<'_>, msg: &Message) -> Message {
        if self.publisher != Some(msg.source) {
            ctx.metrics().incr("ds.ckpt_promote_denied");
            return Message::new(ckpt::PROMOTE_REPLY).with_param(0, ckpt_status::DENIED);
        }
        let Some(store) = self.ckpt_store.as_ref() else {
            return Message::new(ckpt::PROMOTE_REPLY).with_param(0, ckpt_status::NOT_FOUND);
        };
        let owner = String::from_utf8_lossy(&msg.data).to_string();
        let frames: Vec<(String, Vec<u8>)> = store
            .borrow()
            .export()
            .into_iter()
            .filter(|(o, _, _)| *o == owner)
            .map(|(_, k, w)| (k, w))
            .collect();
        let mut adopted = 0u64;
        for (k, w) in &frames {
            if store.borrow_mut().adopt(&owner, k, w) {
                adopted += 1;
            }
        }
        // The spare is the primary now: drop its standby binding so the
        // endpoint resolves to exactly one owner name (and the tail
        // capability dies with the role).
        self.names.remove(&format!("standby.{owner}"));
        ctx.metrics().incr("ds.ckpt_promotions");
        Message::new(ckpt::PROMOTE_REPLY)
            .with_param(0, ckpt_status::OK)
            .with_param(1, adopted)
    }
    // [recovery:end]
}

impl Default for DataStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Process for DataStore {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        let ProcEvent::Request { call, msg } = event else {
            return;
        };
        match msg.mtype {
            ds::PUBLISH => {
                // First publisher wins the role if unset (boot wiring);
                // afterwards only RS may update naming records.
                if self.publisher.is_none() {
                    self.publisher = Some(msg.source);
                }
                if self.publisher != Some(msg.source) {
                    let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, ds_status::DENIED));
                    return;
                }
                let key = String::from_utf8_lossy(&msg.data).to_string();
                let ep = unpack_endpoint(msg.param(0), msg.param(1));
                self.publish(ctx, key, ep, msg.param(2), msg.param(3));
                let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, ds_status::OK));
            }
            ds::RETRACT => {
                if self.publisher != Some(msg.source) {
                    let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, ds_status::DENIED));
                    return;
                }
                let key = String::from_utf8_lossy(&msg.data).to_string();
                let st = if self.names.remove(&key).is_some() {
                    ds_status::OK
                } else {
                    ds_status::NOT_FOUND
                };
                let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, st));
            }
            ds::LOOKUP => {
                let key = String::from_utf8_lossy(&msg.data).to_string();
                let reply = match self.names.get(&key) {
                    Some(&ep) => {
                        let (s, g) = pack_endpoint(ep);
                        Message::new(ds::LOOKUP_REPLY)
                            .with_param(0, ds_status::OK)
                            .with_param(1, s)
                            .with_param(2, g)
                    }
                    None => Message::new(ds::LOOKUP_REPLY).with_param(0, ds_status::NOT_FOUND),
                };
                let _ = ctx.reply(call, reply);
            }
            // [recovery:begin]
            ds::SUBSCRIBE => {
                let pat = String::from_utf8_lossy(&msg.data).to_string();
                let (prefix, exact) = match pat.strip_suffix('*') {
                    Some(p) => (p.to_string(), false),
                    None => (pat.clone(), true),
                };
                let sub = Subscription {
                    subscriber: msg.source,
                    prefix,
                    exact,
                };
                // Replay records that already match, so subscribers need
                // not race the publisher at boot.
                let existing: Vec<(String, Endpoint, u64, u64)> = self
                    .names
                    .iter()
                    .filter(|(k, _)| sub.matches(k))
                    .map(|(k, &e)| (k.clone(), e, 0, 0))
                    .collect();
                let has_existing = !existing.is_empty();
                self.pending.entry(msg.source).or_default().extend(existing);
                if has_existing {
                    let _ = ctx.notify(msg.source);
                }
                self.subs.push(sub);
                ctx.trace(
                    TraceLevel::Info,
                    format!("{} subscribed to {pat}", msg.source),
                );
                let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, ds_status::OK));
            }
            ds::CHECK => {
                let q = self.pending.entry(msg.source).or_default();
                let reply = match q.pop_front() {
                    Some((key, ep, rid, span)) => {
                        let (s, g) = pack_endpoint(ep);
                        Message::new(ds::CHECK_REPLY)
                            .with_param(0, ds_status::OK)
                            .with_param(1, s)
                            .with_param(2, g)
                            .with_param(3, rid)
                            .with_param(4, span)
                            .with_data(key.into_bytes())
                    }
                    None => Message::new(ds::CHECK_REPLY).with_param(0, ds_status::NO_UPDATE),
                };
                let _ = ctx.reply(call, reply);
            }
            // [recovery:end]
            // [recovery:begin]
            ds::STORE => {
                let klen = msg.param(0) as usize;
                if klen == 0 || klen > msg.data.len() {
                    let _ = ctx.reply(
                        call,
                        Message::new(ds::ACK).with_param(0, ds_status::BAD_REQUEST),
                    );
                    return;
                }
                // Authenticate: the caller must have a published stable
                // name; the record is bound to that *name*, not the
                // endpoint, so it survives the owner's restarts (§5.3).
                let Some(owner) = self.owner_name_of(msg.source).map(str::to_string) else {
                    let _ = ctx.reply(
                        call,
                        Message::new(ds::ACK).with_param(0, ds_status::NOT_OWNER),
                    );
                    return;
                };
                let key = String::from_utf8_lossy(&msg.data[..klen]).to_string();
                let value = msg.data[klen..].to_vec();
                let foreign = self
                    .records
                    .borrow()
                    .get(&key)
                    .is_some_and(|(existing_owner, _)| *existing_owner != owner);
                if foreign {
                    let _ = ctx.reply(
                        call,
                        Message::new(ds::ACK).with_param(0, ds_status::NOT_OWNER),
                    );
                    return;
                }
                self.records.borrow_mut().insert(key, (owner, value));
                ctx.metrics().incr("ds.stores");
                let _ = ctx.reply(call, Message::new(ds::ACK).with_param(0, ds_status::OK));
            }
            ds::RETRIEVE => {
                let key = String::from_utf8_lossy(&msg.data).to_string();
                let requester = self.owner_name_of(msg.source).map(str::to_string);
                let records = self.records.borrow();
                let reply = match (records.get(&key), requester) {
                    (Some((owner, value)), Some(name)) if *owner == name => {
                        Message::new(ds::RETRIEVE_REPLY)
                            .with_param(0, ds_status::OK)
                            .with_data(value.clone())
                    }
                    (Some(_), _) => {
                        Message::new(ds::RETRIEVE_REPLY).with_param(0, ds_status::NOT_OWNER)
                    }
                    (None, _) => {
                        Message::new(ds::RETRIEVE_REPLY).with_param(0, ds_status::NOT_FOUND)
                    }
                };
                let _ = ctx.reply(call, reply);
            }
            ckpt::SAVE => {
                // Driver checkpoint save. Authenticated like STORE: the
                // record is scoped to the caller's *stable name*, so a
                // restarted incarnation reads its own snapshots while a
                // ghost (previous incarnation racing its replacement) is
                // rejected by the store's incarnation tag.
                let reply = self.handle_ckpt_save(ctx, &msg);
                let _ = ctx.reply(call, reply);
            }
            ckpt::RESTORE => {
                let reply = self.handle_ckpt_restore(ctx, &msg);
                let _ = ctx.reply(call, reply);
            }
            ckpt::TAIL => {
                let reply = self.handle_ckpt_tail(ctx, &msg);
                let _ = ctx.reply(call, reply);
            }
            ckpt::PROMOTE => {
                let reply = self.handle_ckpt_promote(ctx, &msg);
                let _ = ctx.reply(call, reply);
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(ds::ACK).with_param(0, ds_status::BAD_REQUEST),
                );
            } // [recovery:end]
        }
    }
}
