//! The process abstraction: event-driven user-mode components.
//!
//! Every server and driver is a [`Process`]: a state machine that the kernel
//! invokes with [`ProcEvent`]s (messages, replies, notifications, signals,
//! alarms, IRQs). Handlers perform system calls through
//! [`crate::system::Ctx`] and return; blocking is modeled by keeping
//! explicit continuation state, which is how the file server "waits" for a
//! restarted disk driver while its pending requests are parked (§6.2).

use crate::system::Ctx;
use crate::types::{CallId, ExitStatus, IpcError, IrqLine, Message, Signal};

/// Events delivered to a process by the kernel.
#[derive(Debug, Clone)]
pub enum ProcEvent {
    /// First event after the process is created; perform initialization
    /// (register IRQs, announce to DS, reset the device...).
    Start,
    /// An asynchronous one-way message.
    Message(Message),
    /// A request sent with `sendrec`; the receiver must eventually
    /// [`Ctx::reply`] using `call`.
    Request {
        /// Call to reply to.
        call: CallId,
        /// The request message.
        msg: Message,
    },
    /// Completion of an earlier `sendrec` issued by this process.
    ///
    /// `Err(IpcError::DeadDestination)` is the aborted rendezvous of §6.2:
    /// the callee died before replying.
    Reply {
        /// The call this reply answers.
        call: CallId,
        /// The reply message or the abort error.
        result: Result<Message, IpcError>,
    },
    /// A pending notification (MINIX `notify`): no payload beyond origin.
    Notify {
        /// Sender endpoint.
        from: crate::types::Endpoint,
    },
    /// A catchable signal (only [`Signal::Term`] is ever delivered).
    Signal(Signal),
    /// An alarm set with [`Ctx::set_alarm`] fired.
    Alarm {
        /// The token passed when the alarm was set.
        token: u64,
    },
    /// A hardware interrupt on a line this process registered for.
    Irq {
        /// The interrupt line.
        line: IrqLine,
    },
    /// A child process exited (delivered to the parent; this is the
    /// `SIGCHLD` + `wait()` path the process manager uses, §5.1).
    ChildExited(ExitStatus),
}

/// A user-mode system component (server, driver, or application).
///
/// Implementations should be deterministic functions of their event stream
/// plus any randomness drawn from [`Ctx::rng`].
pub trait Process {
    /// Handles one kernel-delivered event.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent);
}

/// A factory producing fresh instances of a program, used by the process
/// manager to execute a binary image. Successive registrations of the same
/// program name model *dynamic updates* (§5.1, defect class 6).
pub type ProgramFactory = Box<dyn Fn() -> Box<dyn Process>>;
