//! Warm-spare WAL tailing: the driver-side client a hot-standby
//! incarnation uses to continuously shadow its primary's checkpoint
//! record.
//!
//! A spare is spawned by RS next to a healthy primary and polls the
//! checkpoint store for the primary's latest snapshot frame on a fixed
//! period (the period rides in RS's `drv::STANDBY` message, so the
//! cadence stays a policy decision). Each reply is *sequence-gated*: the
//! tail keeps a monotone `(incarnation, seq)` cursor and drops frames
//! that do not advance it, so duplicated, reordered, or replayed store
//! replies can never rewind the shadow state. Authentication is on the
//! store side — only the endpoint published under `standby.<key>` may
//! tail `<key>`, which ties the read capability to the spare's live
//! endpoint generation.
//!
//! At promotion the driver hands the adopted frame to its own
//! [`crate::DriverCkpt`] via `adopt_warm` and continues exactly where
//! the primary's last quiescent point left off — the restore round-trip
//! of a cold restart is never paid.

use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, IpcError, Message};
use phoenix_simcore::trace::TraceLevel;

use crate::proto::{ckpt, ckpt_status};
use crate::snapshot::Snapshot;

/// Driver-side tail cursor over the primary's checkpoint record.
#[derive(Debug)]
pub struct SpareTail {
    ds: Endpoint,
    /// The *primary's* checkpoint key (not the standby name).
    key: String,
    poll_call: Option<CallId>,
    /// Highest `(incarnation, seq)` adopted so far; later frames must
    /// strictly advance it.
    cursor: Option<(u32, u64)>,
    /// The most recent adopted frame.
    latest: Option<Snapshot>,
}

impl SpareTail {
    /// A tail over the primary's record `key`, served by the checkpoint
    /// store hosted at `ds`.
    pub fn new(ds: Endpoint, key: impl Into<String>) -> Self {
        SpareTail {
            ds,
            key: key.into(),
            poll_call: None,
            cursor: None,
            latest: None,
        }
    }

    /// The tailed sequence number (0 until the first frame lands).
    pub fn seq(&self) -> u64 {
        self.cursor.map_or(0, |(_, s)| s)
    }

    /// The consumed watermark of the latest adopted frame, if it is a
    /// watermark snapshot.
    pub fn watermark(&self) -> Option<u64> {
        self.latest.as_ref().and_then(Snapshot::as_watermark)
    }

    /// The latest adopted frame.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.latest.as_ref()
    }

    /// Issues one tail poll (called from the spare's tail alarm). At
    /// most one poll is in flight; a tick that lands while the previous
    /// reply is outstanding is skipped rather than queued.
    // analyze:recovery-root
    pub fn poll(&mut self, ctx: &mut Ctx) {
        if self.poll_call.is_some() {
            return;
        }
        let req = Message::new(ckpt::TAIL).with_data(self.key.clone().into_bytes());
        match ctx.sendrec(self.ds, req) {
            Ok(call) => {
                self.poll_call = Some(call);
                ctx.metrics().incr("ckpt.tail_polls");
            }
            Err(_) => {
                // DS unreachable this tick; the next alarm retries.
                ctx.metrics().incr("ckpt.tail_send_failed");
            }
        }
    }

    /// Routes a `ProcEvent::Reply`. Returns `true` when the reply was a
    /// tail reply (consumed here), `false` when it belongs to someone
    /// else. A frame is adopted only if it strictly advances the
    /// `(incarnation, seq)` cursor.
    // analyze:recovery-root
    pub fn on_reply(
        &mut self,
        ctx: &mut Ctx,
        call: CallId,
        result: &Result<Message, IpcError>,
    ) -> bool {
        if self.poll_call != Some(call) {
            return false;
        }
        self.poll_call = None;
        let reply = match result {
            Ok(reply) if reply.mtype == ckpt::TAIL_REPLY => reply,
            Ok(reply) => {
                ctx.metrics().incr("ckpt.tail_bad_reply");
                ctx.trace(
                    TraceLevel::Warn,
                    format!("tail poll got reply type {:#x}", reply.mtype),
                );
                return true;
            }
            Err(_) => {
                // DS died mid-poll; the next alarm retries.
                ctx.metrics().incr("ckpt.tail_aborted");
                return true;
            }
        };
        match reply.param(0) {
            s if s == ckpt_status::OK => match Snapshot::decode(&reply.data) {
                Ok(snap) => {
                    let frame = (snap.incarnation, snap.seq);
                    if self.cursor.is_some_and(|cur| frame <= cur) {
                        // Duplicated or reordered reply: the cursor only
                        // moves forward.
                        ctx.metrics().incr("ckpt.tail_stale");
                    } else {
                        self.cursor = Some(frame);
                        self.latest = Some(snap);
                        ctx.metrics().incr("ckpt.tail_adopted");
                    }
                }
                Err(_) => {
                    ctx.metrics().incr("ckpt.tail_corrupt");
                }
            },
            s if s == ckpt_status::NOT_FOUND => {
                // The primary has not checkpointed yet; nothing to shadow.
            }
            _ => {
                ctx.metrics().incr("ckpt.tail_corrupt");
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tail() -> SpareTail {
        SpareTail::new(Endpoint::new(1, 1), "printer")
    }

    #[test]
    fn cursor_is_monotone_over_incarnation_then_seq() {
        let mut t = tail();
        assert_eq!(t.seq(), 0);
        t.cursor = Some((2, 5));
        assert!((2u32, 5u64) <= t.cursor.unwrap());
        assert!((2u32, 4u64) <= t.cursor.unwrap(), "older seq is stale");
        assert!(
            (1u32, 9u64) <= t.cursor.unwrap(),
            "older incarnation is stale"
        );
        assert!((2u32, 6u64) > t.cursor.unwrap(), "next seq advances");
        assert!((3u32, 1u64) > t.cursor.unwrap(), "new incarnation advances");
    }

    #[test]
    fn watermark_reads_the_latest_frame() {
        let mut t = tail();
        assert_eq!(t.watermark(), None);
        t.latest = Some(Snapshot::watermark(1, 3, 4096));
        t.cursor = Some((1, 3));
        assert_eq!(t.watermark(), Some(4096));
        assert_eq!(t.seq(), 3);
    }
}
