//! Chaos campaign: recovery rate and MTTR vs. IPC-fabric hostility.
//!
//! Sweeps the chaos intensity of the [`phoenix_fault::ChaosPlan`] driver-
//! traffic preset (drop, delay, duplicate, corrupt) while repeatedly
//! killing the network and block drivers, with one scripted kill landing
//! *inside* an ongoing recovery. Reports the §7.2-style summary per
//! intensity and gates on the invariants the sweep demonstrates: every
//! kill recovers, no restart budget is exceeded (zero storms), and
//! nothing gives up, at every intensity. Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_chaos_campaign, ChaosCampaignConfig};
use phoenix_bench::{print_table, write_report, CampaignGate};

fn main() -> ExitCode {
    println!("chaos campaign — driver recovery under a hostile IPC fabric\n");
    let mut gate = CampaignGate::new();
    let mut report = String::new();
    let mut rows = Vec::new();
    for intensity in [0.0, 0.25, 0.5, 1.0, 2.0] {
        let cfg = ChaosCampaignConfig {
            intensity,
            ..ChaosCampaignConfig::default()
        };
        let r = run_chaos_campaign(&cfg);
        println!("{}", r.render());
        let _ = writeln!(report, "{}", r.render());
        gate.require(
            r.recovery_rate() >= 1.0,
            format!(
                "intensity {intensity:.2}: recovery rate {:.0}% below 100%",
                r.recovery_rate() * 100.0
            ),
        );
        gate.require(
            r.storms == 0,
            format!("intensity {intensity:.2}: {} restart storms", r.storms),
        );
        gate.require(
            r.gave_up == 0,
            format!("intensity {intensity:.2}: {} give-ups", r.gave_up),
        );
        rows.push(vec![
            format!("{intensity:.2}"),
            format!("{}", r.kills.len()),
            format!("{:.0}%", r.recovery_rate() * 100.0),
            format!("{}", r.mean_mttr()),
            format!("{}", r.recovery_kills),
            format!("{}", r.storms),
            format!("{}", r.gave_up),
            format!("{}", r.dropped),
            format!("{}", r.corrupted),
        ]);
    }
    println!();
    let headers = [
        "intensity",
        "kills",
        "recovered",
        "mean MTTR",
        "mid-recovery kills",
        "storms",
        "give-ups",
        "dropped",
        "corrupted",
    ];
    print_table(&headers, &rows);
    let _ = writeln!(report);
    for row in &rows {
        let cells: Vec<String> = headers
            .iter()
            .zip(row)
            .map(|(h, c)| format!("{h}={c}"))
            .collect();
        let _ = writeln!(report, "{}", cells.join(" "));
    }
    write_report("chaos_campaign", false, &report);

    gate.finish(
        "all gates passed: 100% recovery, zero storms and zero give-ups at\n\
         every intensity; the preset attacks driver traffic, so MTTR stays\n\
         flat while the transport absorbs the losses",
    )
}
