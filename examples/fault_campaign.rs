//! A miniature §7.2 fault-injection campaign: mutate the running DP8390
//! driver's binary code with the paper's seven fault types until it
//! crashes, classify each detected defect, and verify recovery.
//!
//! Run with: `cargo run --release --example fault_campaign`
//! (the full-size campaign lives in `cargo run -p phoenix-bench --bin
//! sec72_fault_injection`)

use phoenix::campaign::{run_campaign, CampaignConfig};
use phoenix_servers::policy::reason;

fn main() {
    let cfg = CampaignConfig {
        injections: 500,
        ..CampaignConfig::default()
    };
    println!(
        "injecting {} random binary faults into the running eth.dp8390 driver ...\n",
        cfg.injections
    );
    let (result, traffic) = run_campaign(&cfg);

    println!("{}\n", result.render());
    println!("per-crash log (defect class, faults since previous crash):");
    for (i, c) in result.crashes.iter().enumerate() {
        println!(
            "  crash #{:<3} {:<10} after {:>3} faults  recovered={}{}",
            i + 1,
            reason::name(c.defect),
            c.injections_since_last,
            c.recovered,
            if c.needed_hard_reset {
                " (BIOS reset)"
            } else {
                ""
            },
        );
    }
    let t = traffic.borrow();
    println!(
        "\nbackground traffic stayed alive throughout: {} datagrams echoed, {} resent",
        t.echoed, t.resent
    );
}
