//! Benchmark harness for the paper's evaluation: one binary per table and
//! figure, plus Criterion micro-benchmarks.
//!
//! | artifact | binary |
//! |---|---|
//! | Fig. 3 (recovery schemes) | `fig3_schemes` |
//! | Fig. 7 (network throughput vs. kill interval) | `fig7_network` |
//! | Fig. 8 (disk throughput vs. kill interval) | `fig8_disk` |
//! | §7.2 (fault-injection campaign) | `sec72_fault_injection` |
//! | Fig. 9 (reengineering effort, LoC) | `fig9_loc` |
//!
//! Every binary accepts `--quick` for a scaled-down run (CI-sized) and
//! prints the same rows/series the paper reports.

pub mod loc;

/// Simple fixed-width table printer for harness output.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Returns true when `--quick` was passed (scaled-down run).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Regression-gate accumulator shared by the campaign binaries: collect
/// violation messages while the run is summarized, then fold them into
/// the process exit code. Keeps every bin on the same contract — all
/// violations are reported (not just the first), each on its own
/// `GATE FAILED:` stderr line, non-zero exit on any.
#[derive(Debug, Default)]
pub struct CampaignGate {
    failures: Vec<String>,
}

impl CampaignGate {
    /// An empty gate (no violations yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `msg` as a violation unless `ok` holds.
    pub fn require(&mut self, ok: bool, msg: impl Into<String>) {
        if !ok {
            self.failures.push(msg.into());
        }
    }

    /// Records an unconditional violation.
    pub fn fail(&mut self, msg: impl Into<String>) {
        self.failures.push(msg.into());
    }

    /// Whether no violation has been recorded.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints `pass_note` and returns success if clean; otherwise prints
    /// one `GATE FAILED:` line per violation and returns failure.
    pub fn finish(self, pass_note: &str) -> std::process::ExitCode {
        if self.failures.is_empty() {
            println!("\n{pass_note}");
            std::process::ExitCode::SUCCESS
        } else {
            for f in &self.failures {
                eprintln!("GATE FAILED: {f}");
            }
            std::process::ExitCode::FAILURE
        }
    }
}

/// Writes a campaign report to `results/<name><suffix>.txt` under the
/// workspace root (`_quick` suffix for scaled-down runs) and echoes the
/// path, matching the convention every campaign binary follows.
pub fn write_report(name: &str, quick: bool, body: &str) {
    let suffix = if quick { "_quick" } else { "" };
    let dir = workspace_root().join("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}{suffix}.txt"));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        println!("\nwrote {}", path.display());
    }
}

/// Workspace root (assumes the binary runs via `cargo run` from anywhere
/// inside the workspace).
pub fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir;
        }
        if !dir.pop() {
            panic!("run from inside the workspace");
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_prints_without_panic() {
        super::print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn gate_collects_only_violations() {
        let mut gate = super::CampaignGate::new();
        gate.require(true, "never recorded");
        assert!(gate.is_clean());
        gate.require(false, "first");
        gate.fail("second");
        assert!(!gate.is_clean());
        assert_eq!(gate.failures, vec!["first", "second"]);
    }
}
