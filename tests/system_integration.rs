//! Repository-level integration tests spanning all crates: the Fig. 3
//! recovery-scheme matrix through the public experiment drivers, the §5.3
//! state-backup mechanism for stateful components, and cross-cutting
//! determinism.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::experiments::{fig3_schemes, fig7_network_run, fig8_disk_run};
use phoenix::os::{names, NicKind, Os};
use phoenix_kernel::platform::NullPlatform;
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{Endpoint, Message};
use phoenix_servers::policy::PolicyScript;
use phoenix_servers::proto::{ds, pm as pm_proto};
use phoenix_servers::rs::{ReincarnationServer, ServiceConfig};
use phoenix_servers::{DataStore, ProcessManager};
use phoenix_simcore::time::SimDuration;

#[test]
fn fig3_matrix_matches_the_paper() {
    let outcomes = fig3_schemes(2007);
    let by_class = |c: &str| {
        outcomes
            .iter()
            .find(|o| o.class == c)
            .unwrap_or_else(|| panic!("missing class {c}"))
    };
    // Fig. 3: Network -> yes, recovered by the network server.
    assert!(by_class("network").transparent);
    // Fig. 3: Block -> yes, recovered by the file server.
    assert!(by_class("block").transparent);
    // Fig. 3: Character -> maybe, recovered (or not) by the application.
    let lp = by_class("character (printer)");
    assert!(!lp.transparent && lp.app_recovered);
    let cd = by_class("character (cd burn)");
    assert!(!cd.transparent && !cd.app_recovered && cd.user_informed);
}

#[test]
fn fig7_and_fig8_shape_holds_in_miniature() {
    // Small-scale versions of the §7.1 claims: recovery costs throughput
    // but never correctness, and shorter kill intervals cost more.
    let size = 8_000_000;
    let base = fig7_network_run(size, None, 11);
    let k1 = fig7_network_run(size, Some(SimDuration::from_millis(300)), 11);
    assert!(base.md5_ok && k1.md5_ok, "md5 must always match");
    assert!(k1.kills >= 1);
    assert!(
        k1.elapsed > base.elapsed,
        "kills must cost time: {} vs {}",
        k1.elapsed,
        base.elapsed
    );

    // The kill interval must exceed the SATA link-renegotiation time
    // (500 ms) or no read can ever complete — which is why the paper's
    // smallest interval is 1 s.
    let fsize = 48_000_000;
    let dbase = fig8_disk_run(fsize, None, 12);
    let dk = fig8_disk_run(fsize, Some(SimDuration::from_millis(700)), 12);
    assert!(dbase.sha1_ok && dk.sha1_ok, "sha1 must always match");
    assert_eq!(dk.app_errors, 0);
    assert!(dk.kills >= 1);
    assert!(dk.elapsed > dbase.elapsed);
}

/// A stateful component that backs its state up in the data store (§5.3):
/// every tick it increments a counter and stores it; on (re)start it
/// retrieves the backup. The paper: "a restarted component may need to
/// retrieve state that is lost when it crashed... all mechanisms needed to
/// recover from failures in stateful components are present."
struct Statefuld {
    ds: Endpoint,
    counter: u64,
    restored: Rc<RefCell<Vec<u64>>>,
    retrieving: bool,
}

impl Statefuld {
    fn store(&mut self, ctx: &mut Ctx<'_>) {
        let key = b"statefuld.counter";
        let mut data = key.to_vec();
        data.extend_from_slice(&self.counter.to_le_bytes());
        let _ = ctx.sendrec(
            self.ds,
            Message::new(ds::STORE)
                .with_param(0, key.len() as u64)
                .with_data(data),
        );
    }
}

impl Process for Statefuld {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                // Recover lost state from the data store. Authentication
                // works even though our endpoint changed, because the
                // record is bound to our *stable name* (§5.3).
                self.retrieving = true;
                let _ = ctx.sendrec(
                    self.ds,
                    Message::new(ds::RETRIEVE).with_data(b"statefuld.counter".to_vec()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if self.retrieving => {
                if reply.mtype == ds::RETRIEVE_REPLY && reply.param(0) == 14 {
                    // NOT_OWNER: RS has not republished our name yet
                    // (we restarted moments ago); retry shortly.
                    let _ = ctx.set_alarm(SimDuration::from_millis(20), 1);
                    return;
                }
                self.retrieving = false;
                if reply.mtype == ds::RETRIEVE_REPLY && reply.param(0) == 0 && reply.data.len() == 8
                {
                    self.counter = u64::from_le_bytes(reply.data[..8].try_into().expect("8 bytes"));
                }
                self.restored.borrow_mut().push(self.counter);
                let _ = ctx.set_alarm(SimDuration::from_millis(10), 0);
            }
            ProcEvent::Alarm { token: 1 } => {
                let _ = ctx.sendrec(
                    self.ds,
                    Message::new(ds::RETRIEVE).with_data(b"statefuld.counter".to_vec()),
                );
            }
            ProcEvent::Alarm { .. } => {
                self.counter += 1;
                self.store(ctx);
                let _ = ctx.set_alarm(SimDuration::from_millis(10), 0);
            }
            _ => {}
        }
    }
}

#[test]
fn stateful_component_recovers_state_from_data_store() {
    let mut sys = System::new(SystemConfig::default());
    let pm = sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(ProcessManager::new()),
    );
    let dse = sys.spawn_boot("ds", Privileges::server(), Box::new(DataStore::new()));
    let restored: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = restored.clone();
    let svc = ServiceConfig::driver("statefuld", "statefuld")
        .with_policy(PolicyScript::direct_restart())
        .without_heartbeat();
    let rs = sys.spawn_boot(
        "rs",
        Privileges::reincarnation_server(),
        Box::new(ReincarnationServer::new(pm, dse, vec![svc], vec![])),
    );
    let _ = rs;
    sys.register_program(
        "statefuld",
        Privileges::server(),
        Box::new(move || {
            Box::new(Statefuld {
                ds: dse,
                counter: 0,
                restored: r2.clone(),
                retrieving: false,
            })
        }),
    );
    // Run ~1s: the counter should reach ~100 and be backed up.
    sys.run_until(
        &mut NullPlatform,
        phoenix_simcore::time::SimTime::from_micros(1_000_000),
    );
    assert_eq!(
        restored.borrow().as_slice(),
        &[0],
        "first start restores nothing"
    );

    // Kill it; RS restarts it; the new incarnation resumes from backup.
    let ep = sys.endpoint_by_name("statefuld").expect("up");
    sys.kill_by_user(ep, phoenix_kernel::types::Signal::Kill);
    sys.run_until(
        &mut NullPlatform,
        phoenix_simcore::time::SimTime::from_micros(2_000_000),
    );
    let restored = restored.borrow();
    assert_eq!(restored.len(), 2, "restarted once");
    assert!(
        restored[1] >= 80,
        "state recovered from the data store, not reset to zero (got {})",
        restored[1]
    );
    assert!(sys.endpoint_by_name("statefuld").is_some());
}

#[test]
fn pm_rejects_unauthorized_service_control() {
    // Only the registered reaper (RS) may start or kill services via PM.
    let mut sys = System::new(SystemConfig::default());
    let pm = sys.spawn_boot(
        "pm",
        Privileges::process_manager(),
        Box::new(ProcessManager::new()),
    );
    // RS registers first...
    struct Registrar {
        pm: Endpoint,
    }
    impl Process for Registrar {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            if matches!(ev, ProcEvent::Start) {
                let _ = ctx.send(self.pm, Message::new(pm_proto::REGISTER));
            }
        }
    }
    sys.spawn_boot(
        "rs",
        Privileges::reincarnation_server(),
        Box::new(Registrar { pm }),
    );
    // ...then an interloper tries to start a program through PM.
    let denied: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let d2 = denied.clone();
    struct Interloper {
        pm: Endpoint,
        denied: Rc<RefCell<Option<u64>>>,
    }
    impl Process for Interloper {
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: ProcEvent) {
            match ev {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(
                        self.pm,
                        Message::new(pm_proto::START).with_data(b"anything".to_vec()),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    *self.denied.borrow_mut() = Some(reply.param(0));
                }
                _ => {}
            }
        }
    }
    sys.spawn_boot(
        "interloper",
        Privileges::server(),
        Box::new(Interloper { pm, denied: d2 }),
    );
    sys.run_until_idle(&mut NullPlatform, 100);
    assert_eq!(*denied.borrow(), Some(13), "EACCES for non-RS callers");
}

#[test]
fn same_seed_reproduces_the_exact_trace_counters() {
    let run = |seed: u64| {
        let mut os = Os::builder()
            .seed(seed)
            .with_network(NicKind::Rtl8139)
            .boot();
        os.kill_by_user(names::ETH_RTL8139);
        os.run_for(SimDuration::from_secs(2));
        (
            os.metrics().counter("rs.recoveries"),
            os.metrics().counter("ipc.sends"),
            os.metrics().counter("irq.delivered"),
            os.now(),
        )
    };
    assert_eq!(run(31337), run(31337));
}

#[test]
fn hot_standby_promotes_spare_instead_of_cold_restart() {
    use phoenix::apps::{CkptLpd, CkptLpdStatus};
    use phoenix::campaign::ckpt_print_job;

    let mut os = Os::builder()
        .seed(4242)
        .heartbeat(SimDuration::from_millis(500), 3)
        .with_hot_standby()
        .boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");
    let job = ckpt_print_job(4242, 96 * 1024);
    let status = Rc::new(RefCell::new(CkptLpdStatus::default()));
    os.spawn_app("lpd", Box::new(CkptLpd::new(vfs, job, status.clone())));
    os.run_for(SimDuration::from_secs(1));
    assert!(
        os.metrics().counter("rs.standby.spares_started") >= 2,
        "both char-driver classes should have warm spares tailing"
    );
    // A wedge traps the driver in a loop on its next request; the print
    // job supplies the request, the missed heartbeats convict it.
    assert!(os.wedge_driver_in_loop(names::CHR_PRINTER));
    os.run_for(SimDuration::from_secs(10));
    assert!(
        os.metrics().counter("rs.standby.promotions") >= 1,
        "a wedged primary must be replaced by promoting its spare"
    );
    assert!(os.metrics().counter("rs.recoveries") >= 1);
    assert!(
        os.metrics().counter("rs.standby.spares_started") >= 3,
        "the spare slot must be refilled behind the promotion"
    );
    assert_eq!(status.borrow().app_errors, 0);
    assert!(
        status.borrow().done,
        "the print job must ride out the failover on its write-ahead log"
    );
}

#[test]
fn adaptation_trajectory_is_deterministic_per_seed() {
    use phoenix::campaign::{run_standby_campaign, StandbyCampaignConfig};
    let cfg = StandbyCampaignConfig {
        faults: 4,
        ..StandbyCampaignConfig::default()
    };
    let (a, _) = run_standby_campaign(&cfg);
    let (b, _) = run_standby_campaign(&cfg);
    assert!(a.adapt_updates > 0, "the adapt controllers never stepped");
    assert_eq!(a.digest, b.digest, "same-seed metrics digests diverged");
    assert_eq!(a.adapt_gauges, b.adapt_gauges);
    assert_eq!(a.adapt_trace, b.adapt_trace);
    assert!(a.adapt_out_of_band.is_empty(), "{:?}", a.adapt_out_of_band);
}

#[test]
fn floppy_and_sata_coexist() {
    let os = Os::builder()
        .seed(77)
        .with_disk(4096, 1, vec![])
        .with_floppy()
        .boot();
    assert!(os.is_up(names::BLK_SATA));
    assert!(os.is_up(names::BLK_FLOPPY));
}
