//! The device bus: routes kernel device I/O to device models, wires NICs to
//! remote peers, and implements the kernel's [`Platform`] trait.

use std::any::Any;
use std::collections::BTreeMap;

use phoenix_kernel::memory::DmaFault;
use phoenix_kernel::platform::{HwCtx, Platform};
use phoenix_kernel::types::{DeviceId, IrqLine};
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

/// External-event channel kinds used on the bus (low 16 bits of a channel;
/// the device id occupies bits 16..32).
mod chan {
    /// Frame transmitted by a NIC, entering the wire.
    pub const WIRE_TX: u64 = 1;
    /// Frame arriving at the remote peer.
    pub const WIRE_TO_PEER: u64 = 2;
    /// Frame arriving back at the NIC from the wire.
    pub const WIRE_TO_HOST: u64 = 3;
    /// Timer set by the remote peer.
    pub const PEER_TIMER: u64 = 4;
}

fn encode_chan(dev: DeviceId, kind: u64) -> u64 {
    (u64::from(dev.0) << 16) | kind
}

fn decode_chan(channel: u64) -> (DeviceId, u64) {
    (DeviceId((channel >> 16) as u16), channel & 0xFFFF)
}

/// The external-event channel on which frames arrive at a NIC "from the
/// wire". Machine-level harnesses use this to inject raw frames (e.g.
/// malformed garbage) without a peer.
pub fn wire_to_host_channel(dev: DeviceId) -> u64 {
    encode_chan(dev, chan::WIRE_TO_HOST)
}

/// Context handed to a device model; wraps the kernel's [`HwCtx`] with the
/// device's identity so IRQ and timer bookkeeping is automatic.
pub struct DevCtx<'a, 'b> {
    dev: DeviceId,
    irq: IrqLine,
    hw: &'a mut HwCtx<'b>,
}

impl<'a, 'b> DevCtx<'a, 'b> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.hw.now()
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.hw.rng()
    }

    /// This device's id.
    pub fn device(&self) -> DeviceId {
        self.dev
    }

    /// Asserts this device's interrupt line.
    pub fn raise_irq(&mut self) {
        self.hw.raise_irq(self.irq);
    }

    /// Schedules a timer callback on this device after `delay`.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) {
        let at = self.hw.now() + delay;
        // Kernel convention: device id in the token's top 16 bits.
        self.hw.set_timer(
            at,
            (u64::from(self.dev.0) << 48) | (token & 0xFFFF_FFFF_FFFF),
        );
    }

    /// DMA read from the driver's memory through the IOMMU.
    ///
    /// # Errors
    ///
    /// See [`DmaFault`].
    pub fn dma_read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), DmaFault> {
        self.hw.dma_read(self.dev, addr, buf)
    }

    /// DMA write into the driver's memory through the IOMMU.
    ///
    /// # Errors
    ///
    /// See [`DmaFault`].
    pub fn dma_write(&mut self, addr: u64, data: &[u8]) -> Result<(), DmaFault> {
        self.hw.dma_write(self.dev, addr, data)
    }

    /// Transmits a frame onto the wire attached to this device (NICs).
    pub fn tx_frame(&mut self, frame: Vec<u8>) {
        self.hw
            .emit_external(encode_chan(self.dev, chan::WIRE_TX), frame);
    }
}

/// An emulated device on the bus.
///
/// Register width is 32 bits; `reg` is a register offset, not a raw port
/// number. Default implementations make timers, frames and block I/O
/// optional for simple devices.
pub trait Device {
    /// Short device name for diagnostics (e.g. `"rtl8139"`).
    fn name(&self) -> &str;

    /// Register read.
    fn read(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32;

    /// Register write.
    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32);

    /// A timer set via [`DevCtx::set_timer_after`] fired.
    fn timer(&mut self, _ctx: &mut DevCtx<'_, '_>, _token: u64) {}

    /// A frame arrived from the attached wire (NICs only).
    fn frame_in(&mut self, _ctx: &mut DevCtx<'_, '_>, _frame: &[u8]) {}

    /// Buffered read from a data port (`sys_sdevio`); devices with a
    /// byte-stream port (DP8390 remote DMA) override this.
    fn read_block(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.read(ctx, reg) as u8).collect()
    }

    /// Buffered write to a data port (`sys_sdevio`).
    fn write_block(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, data: &[u8]) {
        for &b in data {
            self.write(ctx, reg, u32::from(b));
        }
    }

    /// Out-of-band full reset (models a BIOS-level reset, §7.2: "a
    /// low-level BIOS reset was needed"). Must clear any wedged state.
    fn hard_reset(&mut self) {}

    /// Downcasting support for tests and machine-level observers.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// Context handed to a [`RemotePeer`].
pub struct PeerCtx<'a, 'b> {
    dev: DeviceId,
    latency: SimDuration,
    loss_to_host: f64,
    cut_to_host: bool,
    hw: &'a mut HwCtx<'b>,
}

impl<'a, 'b> PeerCtx<'a, 'b> {
    /// Builds a peer context for the peer-to-host direction of a wire.
    /// The bus builds one per delivery; protocol harnesses (e.g. the
    /// file-peer's one-way-loss tests) build their own to drive a
    /// [`RemotePeer`] without a full bus.
    pub fn new(
        dev: DeviceId,
        latency: SimDuration,
        loss_to_host: f64,
        cut_to_host: bool,
        hw: &'a mut HwCtx<'b>,
    ) -> Self {
        PeerCtx {
            dev,
            latency,
            loss_to_host,
            cut_to_host,
            hw,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.hw.now()
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut SimRng {
        self.hw.rng()
    }

    /// Sends a frame towards the host NIC; it arrives after the wire
    /// latency unless lost.
    pub fn send_to_host(&mut self, frame: Vec<u8>) {
        self.send_to_host_after(SimDuration::ZERO, frame);
    }

    /// Sends a frame towards the host NIC after an extra `delay` (used by
    /// peers to pace transmissions at their uplink rate).
    pub fn send_to_host_after(&mut self, delay: SimDuration, frame: Vec<u8>) {
        if self.cut_to_host {
            return;
        }
        let lost = self.loss_to_host > 0.0 && {
            let p = self.loss_to_host;
            self.hw.rng().chance(p)
        };
        if lost {
            return;
        }
        let at = self.hw.now() + delay + self.latency;
        self.hw
            .emit_external_at(at, encode_chan(self.dev, chan::WIRE_TO_HOST), frame);
    }

    /// Schedules a peer timer after `delay`.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) {
        let at = self.hw.now() + delay;
        self.hw.emit_external_at(
            at,
            encode_chan(self.dev, chan::PEER_TIMER),
            token.to_le_bytes().to_vec(),
        );
    }
}

/// The entity at the far end of a NIC's wire — e.g. the Internet server
/// `wget` downloads from in Fig. 7. Protocol logic (TCP-like retransmission)
/// lives in the peer implementation, not here.
pub trait RemotePeer {
    /// A frame from the host NIC arrived at the peer.
    fn frame_from_host(&mut self, ctx: &mut PeerCtx<'_, '_>, frame: &[u8]);

    /// A peer timer fired.
    fn timer(&mut self, _ctx: &mut PeerCtx<'_, '_>, _token: u64) {}

    /// Downcasting support for tests.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// Wire parameters between a NIC and its remote peer.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// One-way propagation + queueing latency.
    pub latency: SimDuration,
    /// Independent per-frame loss probability in each direction.
    pub loss_prob: f64,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            latency: SimDuration::from_micros(200),
            loss_prob: 0.0,
        }
    }
}

/// Directional wire fault state, applied *on top of* [`WireConfig`]'s
/// symmetric per-frame loss. This is the chaos layer's seam for network
/// partitions and asymmetric loss: a hard `cut_*` drops every frame in
/// that direction (a partition), while `loss_*` raises one direction's
/// per-frame drop probability to `max(baseline, chaos)` — the failure
/// mode the symmetric `loss_prob` cannot express. Cleared (all-zero)
/// chaos is
/// byte-for-byte equivalent to no chaos, including RNG consumption, so
/// installing and removing it never perturbs unrelated streams.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WireChaos {
    /// Extra per-frame loss probability in the host→peer direction.
    pub loss_to_peer: f64,
    /// Extra per-frame loss probability in the peer→host direction.
    pub loss_to_host: f64,
    /// Hard partition host→peer: every outbound frame is dropped.
    pub cut_to_peer: bool,
    /// Hard partition peer→host: every inbound frame is dropped.
    pub cut_to_host: bool,
}

impl WireChaos {
    /// A full (two-way) partition.
    pub fn partition() -> Self {
        WireChaos {
            cut_to_peer: true,
            cut_to_host: true,
            ..Self::default()
        }
    }

    /// A one-way partition: host frames still reach the peer, nothing
    /// comes back (the asymmetric failure a symmetric loss knob cannot
    /// model — ACK starvation with an intact forward path).
    pub fn one_way_to_host_cut() -> Self {
        WireChaos {
            cut_to_host: true,
            ..Self::default()
        }
    }

    /// A one-way partition in the opposite direction: the peer's frames
    /// arrive, the host's never leave.
    pub fn one_way_to_peer_cut() -> Self {
        WireChaos {
            cut_to_peer: true,
            ..Self::default()
        }
    }
}

struct DeviceSlot {
    irq: IrqLine,
    dev: Box<dyn Device>,
}

struct WireSlot {
    cfg: WireConfig,
    chaos: WireChaos,
    peer: Box<dyn RemotePeer>,
}

/// The platform bus: a set of devices plus optional wires to remote peers.
#[derive(Default)]
pub struct Bus {
    devices: BTreeMap<DeviceId, DeviceSlot>,
    wires: BTreeMap<DeviceId, WireSlot>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a device with its interrupt line.
    ///
    /// # Panics
    ///
    /// Panics if the device id is already taken.
    pub fn add_device(&mut self, dev: DeviceId, irq: IrqLine, device: Box<dyn Device>) {
        let prev = self.devices.insert(dev, DeviceSlot { irq, dev: device });
        assert!(prev.is_none(), "device id {dev} already on the bus");
    }

    /// Attaches a wire + remote peer to a NIC device.
    pub fn attach_peer(&mut self, dev: DeviceId, cfg: WireConfig, peer: Box<dyn RemotePeer>) {
        self.wires.insert(
            dev,
            WireSlot {
                cfg,
                chaos: WireChaos::default(),
                peer,
            },
        );
    }

    /// Installs directional wire chaos (partition / asymmetric loss) on
    /// the wire attached to `dev`. Replaces any previous chaos state.
    pub fn set_wire_chaos(&mut self, dev: DeviceId, chaos: WireChaos) {
        if let Some(slot) = self.wires.get_mut(&dev) {
            slot.chaos = chaos;
        }
    }

    /// Heals the wire attached to `dev` (removes directional chaos).
    pub fn clear_wire_chaos(&mut self, dev: DeviceId) {
        self.set_wire_chaos(dev, WireChaos::default());
    }

    /// Typed access to a device model (tests and machine-level observers).
    pub fn device_mut<T: Device + 'static>(&mut self, dev: DeviceId) -> Option<&mut T> {
        self.devices
            .get_mut(&dev)
            .and_then(|s| s.dev.as_any().downcast_mut::<T>())
    }

    /// Typed access to a remote peer.
    pub fn peer_mut<T: RemotePeer + 'static>(&mut self, dev: DeviceId) -> Option<&mut T> {
        self.wires
            .get_mut(&dev)
            .and_then(|s| s.peer.as_any().downcast_mut::<T>())
    }

    /// Performs an out-of-band full reset of a device (models operator /
    /// BIOS intervention for a wedged card, §7.2).
    pub fn hard_reset(&mut self, dev: DeviceId) {
        if let Some(slot) = self.devices.get_mut(&dev) {
            slot.dev.hard_reset();
        }
    }

    fn with_device<R>(
        &mut self,
        dev: DeviceId,
        ctx: &mut HwCtx<'_>,
        f: impl FnOnce(&mut dyn Device, &mut DevCtx<'_, '_>) -> R,
    ) -> Option<R> {
        let slot = self.devices.get_mut(&dev)?;
        let mut dctx = DevCtx {
            dev,
            irq: slot.irq,
            hw: ctx,
        };
        Some(f(slot.dev.as_mut(), &mut dctx))
    }
}

impl Platform for Bus {
    fn io_read(&mut self, dev: DeviceId, reg: u16, ctx: &mut HwCtx<'_>) -> u32 {
        self.with_device(dev, ctx, |d, c| d.read(c, reg))
            .unwrap_or(0)
    }

    fn io_write(&mut self, dev: DeviceId, reg: u16, value: u32, ctx: &mut HwCtx<'_>) {
        self.with_device(dev, ctx, |d, c| d.write(c, reg, value));
    }

    fn io_read_block(
        &mut self,
        dev: DeviceId,
        reg: u16,
        len: usize,
        ctx: &mut HwCtx<'_>,
    ) -> Vec<u8> {
        self.with_device(dev, ctx, |d, c| d.read_block(c, reg, len))
            .unwrap_or_default()
    }

    fn io_write_block(&mut self, dev: DeviceId, reg: u16, data: &[u8], ctx: &mut HwCtx<'_>) {
        self.with_device(dev, ctx, |d, c| d.write_block(c, reg, data));
    }

    fn timer(&mut self, dev: DeviceId, token: u64, ctx: &mut HwCtx<'_>) {
        self.with_device(dev, ctx, |d, c| d.timer(c, token));
    }

    fn external(&mut self, channel: u64, payload: Vec<u8>, ctx: &mut HwCtx<'_>) {
        let (dev, kind) = decode_chan(channel);
        match kind {
            chan::WIRE_TX => {
                // NIC -> wire: apply partition, loss, and latency towards
                // the peer. The baseline symmetric loss and the directional
                // chaos loss are independent drop trials.
                let Some(w) = self.wires.get(&dev) else {
                    return;
                };
                if w.chaos.cut_to_peer {
                    return;
                }
                let latency = w.cfg.latency;
                let loss = w.cfg.loss_prob.max(w.chaos.loss_to_peer);
                if loss > 0.0 && ctx.rng().chance(loss) {
                    return;
                }
                let at = ctx.now() + latency;
                ctx.emit_external_at(at, encode_chan(dev, chan::WIRE_TO_PEER), payload);
            }
            chan::WIRE_TO_PEER => {
                let Some(w) = self.wires.get_mut(&dev) else {
                    return;
                };
                let mut pctx = PeerCtx::new(
                    dev,
                    w.cfg.latency,
                    w.cfg.loss_prob.max(w.chaos.loss_to_host),
                    w.chaos.cut_to_host,
                    ctx,
                );
                w.peer.frame_from_host(&mut pctx, &payload);
            }
            chan::WIRE_TO_HOST => {
                self.with_device(dev, ctx, |d, c| d.frame_in(c, &payload));
            }
            chan::PEER_TIMER => {
                let Some(w) = self.wires.get_mut(&dev) else {
                    return;
                };
                let token = u64::from_le_bytes(payload.try_into().unwrap_or_default());
                let mut pctx = PeerCtx::new(
                    dev,
                    w.cfg.latency,
                    w.cfg.loss_prob.max(w.chaos.loss_to_host),
                    w.chaos.cut_to_host,
                    ctx,
                );
                w.peer.timer(&mut pctx, token);
            }
            _ => {}
        }
    }

    fn has_device(&self, dev: DeviceId) -> bool {
        self.devices.contains_key(&dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_kernel::memory::MemoryPool;

    /// Loopback NIC: every transmitted frame is reflected by an echo peer.
    struct EchoNic {
        rx: Vec<Vec<u8>>,
    }
    impl Device for EchoNic {
        fn name(&self) -> &str {
            "echo-nic"
        }
        fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, _reg: u16) -> u32 {
            self.rx.len() as u32
        }
        fn write(&mut self, ctx: &mut DevCtx<'_, '_>, _reg: u16, value: u32) {
            ctx.tx_frame(vec![value as u8]);
        }
        fn frame_in(&mut self, ctx: &mut DevCtx<'_, '_>, frame: &[u8]) {
            self.rx.push(frame.to_vec());
            ctx.raise_irq();
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct EchoPeer;
    impl RemotePeer for EchoPeer {
        fn frame_from_host(&mut self, ctx: &mut PeerCtx<'_, '_>, frame: &[u8]) {
            let mut f = frame.to_vec();
            f.push(0xEE);
            ctx.send_to_host(f);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn drive(bus: &mut Bus, fx: Vec<phoenix_kernel::platform::HwSideEffect>) {
        // Minimal event pump for bus-only tests: process External effects
        // in time order.
        use phoenix_kernel::platform::HwSideEffect;
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut pending: Vec<(SimTime, u64, Vec<u8>)> = fx
            .into_iter()
            .filter_map(|e| match e {
                HwSideEffect::External {
                    at,
                    channel,
                    payload,
                } => Some((at, channel, payload)),
                _ => None,
            })
            .collect();
        while !pending.is_empty() {
            pending.sort_by_key(|(at, _, _)| *at);
            let (at, chanl, payload) = pending.remove(0);
            let mut fx2 = Vec::new();
            let mut ctx = HwCtx::new(at, &mut mem, &mut rng, &mut fx2);
            bus.external(chanl, payload, &mut ctx);
            for e in fx2 {
                if let HwSideEffect::External {
                    at,
                    channel,
                    payload,
                } = e
                {
                    pending.push((at, channel, payload));
                }
            }
        }
    }

    #[test]
    fn frame_roundtrip_through_wire_and_peer() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(dev, WireConfig::default(), Box::new(EchoPeer));
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        {
            let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
            bus.io_write(dev, 0, 0x42, &mut ctx);
        }
        drive(&mut bus, fx);
        let nic: &mut EchoNic = bus.device_mut(dev).unwrap();
        assert_eq!(nic.rx, vec![vec![0x42, 0xEE]]);
    }

    #[test]
    fn lossy_wire_drops_everything_at_p1() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(
            dev,
            WireConfig {
                latency: SimDuration::from_micros(10),
                loss_prob: 1.0,
            },
            Box::new(EchoPeer),
        );
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        {
            let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
            bus.io_write(dev, 0, 1, &mut ctx);
        }
        drive(&mut bus, fx);
        let nic: &mut EchoNic = bus.device_mut(dev).unwrap();
        assert!(nic.rx.is_empty());
    }

    /// Peer that counts frames it receives and echoes them (for
    /// asymmetric-loss tests: the count proves the forward path worked
    /// even when nothing makes it back).
    struct CountingPeer {
        seen: u64,
    }
    impl RemotePeer for CountingPeer {
        fn frame_from_host(&mut self, ctx: &mut PeerCtx<'_, '_>, frame: &[u8]) {
            self.seen += 1;
            ctx.send_to_host(frame.to_vec());
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn send_one(bus: &mut Bus, dev: DeviceId, byte: u32) {
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        {
            let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
            bus.io_write(dev, 0, byte, &mut ctx);
        }
        drive(bus, fx);
    }

    #[test]
    fn one_way_cut_to_host_starves_replies_but_not_requests() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(
            dev,
            WireConfig::default(),
            Box::new(CountingPeer { seen: 0 }),
        );
        bus.set_wire_chaos(dev, WireChaos::one_way_to_host_cut());
        send_one(&mut bus, dev, 0x11);
        // Forward path intact: the peer saw the frame...
        assert_eq!(bus.peer_mut::<CountingPeer>(dev).unwrap().seen, 1);
        // ...but nothing came back.
        assert!(bus.device_mut::<EchoNic>(dev).unwrap().rx.is_empty());
    }

    #[test]
    fn one_way_cut_to_peer_blocks_requests() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(
            dev,
            WireConfig::default(),
            Box::new(CountingPeer { seen: 0 }),
        );
        bus.set_wire_chaos(dev, WireChaos::one_way_to_peer_cut());
        send_one(&mut bus, dev, 0x22);
        assert_eq!(bus.peer_mut::<CountingPeer>(dev).unwrap().seen, 0);
        assert!(bus.device_mut::<EchoNic>(dev).unwrap().rx.is_empty());
    }

    #[test]
    fn asymmetric_loss_probability_starves_one_direction() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(
            dev,
            WireConfig::default(),
            Box::new(CountingPeer { seen: 0 }),
        );
        bus.set_wire_chaos(
            dev,
            WireChaos {
                loss_to_host: 1.0,
                ..WireChaos::default()
            },
        );
        send_one(&mut bus, dev, 0x33);
        assert_eq!(bus.peer_mut::<CountingPeer>(dev).unwrap().seen, 1);
        assert!(bus.device_mut::<EchoNic>(dev).unwrap().rx.is_empty());
    }

    #[test]
    fn healed_partition_restores_roundtrip() {
        let dev = DeviceId(1);
        let mut bus = Bus::new();
        bus.add_device(dev, 3, Box::new(EchoNic { rx: Vec::new() }));
        bus.attach_peer(
            dev,
            WireConfig::default(),
            Box::new(CountingPeer { seen: 0 }),
        );
        bus.set_wire_chaos(dev, WireChaos::partition());
        send_one(&mut bus, dev, 0x44);
        assert!(bus.device_mut::<EchoNic>(dev).unwrap().rx.is_empty());
        bus.clear_wire_chaos(dev);
        send_one(&mut bus, dev, 0x55);
        assert_eq!(bus.device_mut::<EchoNic>(dev).unwrap().rx, vec![vec![0x55]]);
    }

    #[test]
    fn unknown_device_reads_zero() {
        let mut bus = Bus::new();
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
        assert_eq!(bus.io_read(DeviceId(99), 0, &mut ctx), 0);
        assert!(!bus.has_device(DeviceId(99)));
    }

    #[test]
    #[should_panic(expected = "already on the bus")]
    fn duplicate_device_id_panics() {
        let mut bus = Bus::new();
        bus.add_device(DeviceId(1), 1, Box::new(EchoNic { rx: Vec::new() }));
        bus.add_device(DeviceId(1), 2, Box::new(EchoNic { rx: Vec::new() }));
    }

    #[test]
    fn block_io_defaults_stream_bytes() {
        let dev = DeviceId(5);
        struct Port {
            buf: Vec<u8>,
        }
        impl Device for Port {
            fn name(&self) -> &str {
                "port"
            }
            fn read(&mut self, _c: &mut DevCtx<'_, '_>, _r: u16) -> u32 {
                self.buf.pop().map_or(0, u32::from)
            }
            fn write(&mut self, _c: &mut DevCtx<'_, '_>, _r: u16, v: u32) {
                self.buf.push(v as u8);
            }
            fn as_any(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut bus = Bus::new();
        bus.add_device(dev, 1, Box::new(Port { buf: Vec::new() }));
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
        bus.io_write_block(dev, 0, b"abc", &mut ctx);
        let port: &mut Port = bus.device_mut(dev).unwrap();
        assert_eq!(port.buf, b"abc");
    }
}
