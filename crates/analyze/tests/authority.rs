//! Least-authority audit integration tests: the real system must pass
//! the audit clean (green), and a deliberately over-granted driver must
//! be caught (red). Together they prove the gate can actually fail — a
//! clean run is only meaningful if the instrument detects violations
//! when they exist.

use phoenix::os::{hwmap, names};
use phoenix::OverGrant;
use phoenix_analyze::audit::{run_audit, AUDIT_SEED};
use phoenix_kernel::{KernelCall, PolaViolation};

#[test]
fn real_system_passes_the_audit_clean() {
    let outcome = run_audit(AUDIT_SEED, Vec::new());
    assert!(
        outcome.violations.is_empty(),
        "declared privilege tables must match exercised authority: {:?}",
        outcome.violations
    );
    // The justified wildcards are exactly the three dynamic-destination
    // servers — anything else must be narrowed, not excused.
    let justified: Vec<&str> = outcome
        .justified
        .iter()
        .map(|(f, _)| f.component.as_str())
        .collect();
    assert_eq!(justified, ["ds", "inet", "rs"]);
    // Sanity: the workload exercised the full breadth of the system.
    assert!(outcome.snapshot.scope.len() >= 14);
    let report = phoenix_analyze::audit::render_report(&outcome);
    assert!(report.contains("no violations"));
    assert!(report.contains("eth.rtl8139"));
}

#[test]
fn overgranted_kernel_call_is_caught() {
    // Seed a driver with a call it never issues; the audit must flag
    // exactly that grant and nothing else.
    let outcome = run_audit(
        AUDIT_SEED,
        vec![(
            names::BLK_SATA.to_string(),
            OverGrant::Call(KernelCall::SetAlarm),
        )],
    );
    assert_eq!(outcome.violations.len(), 1, "{:?}", outcome.violations);
    let v = &outcome.violations[0];
    assert_eq!(v.component, names::BLK_SATA);
    assert_eq!(v.grant_key(), "call:sys_setalarm");
    assert!(matches!(
        v.violation,
        PolaViolation::CallUnused {
            call: KernelCall::SetAlarm
        }
    ));
}

#[test]
fn overgranted_device_and_ipc_are_caught() {
    // A keyboard driver that could touch the SATA controller and chat
    // with the file server is precisely the §4 scenario the privilege
    // tables exist to prevent.
    let outcome = run_audit(
        AUDIT_SEED,
        vec![
            (names::CHR_KBD.to_string(), OverGrant::Device(hwmap::SATA)),
            (
                names::CHR_KBD.to_string(),
                OverGrant::Ipc("mfs".to_string()),
            ),
        ],
    );
    let keys: Vec<String> = outcome
        .violations
        .iter()
        .map(|v| format!("{}/{}", v.component, v.grant_key()))
        .collect();
    assert_eq!(keys, ["chr.kbd/ipc:mfs", "chr.kbd/dev:2"], "{keys:?}");
}
