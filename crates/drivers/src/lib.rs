//! User-mode device drivers for the Phoenix failure-resilient OS.
//!
//! Every driver is an isolated process built on the shared
//! [`libdriver::Driver`] loop, which contributes the generic protocol
//! handling — including the heartbeat and shutdown support that §7.3
//! reports cost "exactly 5 lines of code in the shared driver library"
//! (marked `// [recovery]` in the source so the Fig. 9 counter finds them).
//!
//! Driver hot paths execute on the fault-injection VM (see
//! [`routines`]); the §7.2 campaign mutates the *running* driver's code
//! through [`libdriver::FaultPort`], and a restarted driver comes up with a
//! pristine copy, exactly like restarting from the on-disk binary.
//!
//! Drivers by recovery class (Fig. 3):
//!
//! | class | drivers | transparent recovery |
//! |---|---|---|
//! | network | [`net::Rtl8139Driver`], [`net::Dp8390Driver`] | yes, by the network server |
//! | block | [`block::DiskDriver`] (SATA/floppy), [`block::RamDiskDriver`] | yes, by the file server |
//! | character | [`chardrv::PrinterDriver`], [`chardrv::AudioDriver`], [`chardrv::ScsiCdDriver`] | maybe, by the application |

pub mod block;
pub mod chardrv;
pub mod libdriver;
pub mod net;
pub mod proto;
pub mod routines;

pub use block::{DiskDriver, RamDiskDriver};
pub use chardrv::{AudioDriver, KeyboardDriver, PrinterDriver, ScsiCdDriver};
pub use libdriver::{Driver, DriverLogic, FaultPort, GuardedRoutine};
pub use net::{Dp8390Driver, Rtl8139Driver};
