//! Character device models: printer, audio DAC, and SCSI CD burner.
//!
//! These are the devices of §6.3, where *transparent* recovery is
//! impossible because nobody can tell how much of the stream was consumed.
//! Each model therefore exposes exactly the observable consequences the
//! paper describes: the printer may print duplicates when a job is redone,
//! the audio DAC records an underrun "hiccup", and the CD burner ruins the
//! disc if the burn stream stops.

use std::any::Any;
use std::collections::VecDeque;

use phoenix_simcore::time::SimDuration;

use crate::bus::{DevCtx, Device};

/// Printer register map.
pub mod printer_regs {
    /// Data port; supports block writes.
    pub const DATA: u16 = 0x00;
    /// Status: bit 0 = ready, bit 1 = printing.
    pub const STATUS: u16 = 0x04;
    /// Control: write 1 to reset (clears the FIFO, not the paper).
    pub const CONTROL: u16 = 0x08;
    /// Free FIFO space in bytes (read-only).
    pub const FIFO_FREE: u16 = 0x0C;
}

/// A line printer consuming its FIFO at a fixed rate.
#[derive(Debug)]
pub struct Printer {
    fifo: VecDeque<u8>,
    fifo_cap: usize,
    rate: u64,
    draining: bool,
    printed: Vec<u8>,
}

impl Printer {
    /// Creates a printer with a 4 KB FIFO printing at `rate` bytes/second.
    pub fn new(rate: u64) -> Self {
        Printer {
            fifo: VecDeque::new(),
            fifo_cap: 4096,
            rate,
            draining: false,
            printed: Vec::new(),
        }
    }

    /// Everything that has physically hit the paper.
    pub fn printed(&self) -> &[u8] {
        &self.printed
    }

    const CHUNK: usize = 64;

    fn arm(&mut self, ctx: &mut DevCtx<'_, '_>) {
        if !self.draining && !self.fifo.is_empty() {
            self.draining = true;
            let n = self.fifo.len().min(Self::CHUNK);
            ctx.set_timer_after(SimDuration::for_transfer(n as u64, self.rate), 0);
        }
    }
}

impl Device for Printer {
    fn name(&self) -> &str {
        "printer"
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            printer_regs::STATUS => {
                let mut s = 0;
                if self.fifo.len() < self.fifo_cap {
                    s |= 1; // ready
                }
                if self.draining {
                    s |= 2; // printing
                }
                s
            }
            printer_regs::FIFO_FREE => (self.fifo_cap - self.fifo.len()) as u32,
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            printer_regs::DATA if self.fifo.len() < self.fifo_cap => {
                self.fifo.push_back(value as u8);
                self.arm(ctx);
            }
            printer_regs::CONTROL if value & 1 != 0 => {
                self.fifo.clear();
            }
            _ => {}
        }
    }

    fn write_block(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, data: &[u8]) {
        if reg != printer_regs::DATA {
            return;
        }
        let room = self.fifo_cap - self.fifo.len();
        for &b in &data[..data.len().min(room)] {
            self.fifo.push_back(b);
        }
        self.arm(ctx);
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, _token: u64) {
        let n = self.fifo.len().min(Self::CHUNK);
        for _ in 0..n {
            self.printed
                .push(self.fifo.pop_front().expect("fifo len checked"));
        }
        self.draining = false;
        if self.fifo.is_empty() {
            // FIFO drained: interrupt so the driver can feed more.
            ctx.raise_irq();
        } else {
            self.arm(ctx);
        }
    }

    fn hard_reset(&mut self) {
        self.fifo.clear();
        self.draining = false;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Audio DAC register map.
pub mod audio_regs {
    /// Control: bit 0 = enable, bit 1 = reset.
    pub const CTRL: u16 = 0x00;
    /// DMA address of the next sample block.
    pub const BUF_ADDR: u16 = 0x04;
    /// Length of the next sample block.
    pub const BUF_LEN: u16 = 0x08;
    /// Write anything to queue the block described by BUF_ADDR/BUF_LEN.
    pub const START: u16 = 0x0C;
    /// Underrun count (read-only).
    pub const UNDERRUNS: u16 = 0x10;
}

/// An audio DAC playing queued sample blocks at a fixed byte rate.
///
/// If playback finishes and no block is queued while enabled, an *underrun*
/// is recorded — that is the audible "hiccup" of §6.3 when an MP3 player
/// rides out a driver recovery.
#[derive(Debug)]
pub struct AudioDac {
    rate: u64,
    enabled: bool,
    buf_addr: u32,
    buf_len: u32,
    queue: VecDeque<Vec<u8>>,
    playing: bool,
    samples_played: u64,
    underruns: u32,
}

impl AudioDac {
    /// Creates a DAC consuming `rate` bytes/second (e.g. 176,400 for CD
    /// stereo 16-bit).
    pub fn new(rate: u64) -> Self {
        AudioDac {
            rate,
            enabled: false,
            buf_addr: 0,
            buf_len: 0,
            queue: VecDeque::new(),
            playing: false,
            samples_played: 0,
            underruns: 0,
        }
    }

    /// Total bytes played.
    pub fn samples_played(&self) -> u64 {
        self.samples_played
    }

    /// Number of audible gaps.
    pub fn underruns(&self) -> u32 {
        self.underruns
    }

    fn start_next(&mut self, ctx: &mut DevCtx<'_, '_>) {
        if self.playing || !self.enabled {
            return;
        }
        if let Some(block) = self.queue.front() {
            self.playing = true;
            let d = SimDuration::for_transfer(block.len() as u64, self.rate);
            ctx.set_timer_after(d, 0);
        }
    }
}

impl Device for AudioDac {
    fn name(&self) -> &str {
        "audio"
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            audio_regs::CTRL => u32::from(self.enabled),
            audio_regs::UNDERRUNS => self.underruns,
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            audio_regs::CTRL => {
                if value & 2 != 0 {
                    self.queue.clear();
                    self.playing = false;
                    self.enabled = false;
                } else {
                    self.enabled = value & 1 != 0;
                    self.start_next(ctx);
                }
            }
            audio_regs::BUF_ADDR => self.buf_addr = value,
            audio_regs::BUF_LEN => self.buf_len = value,
            audio_regs::START => {
                let len = self.buf_len as usize;
                if len == 0 || len > 1 << 20 {
                    return;
                }
                let mut block = vec![0u8; len];
                if ctx.dma_read(u64::from(self.buf_addr), &mut block).is_ok() {
                    self.queue.push_back(block);
                    self.start_next(ctx);
                }
            }
            _ => {}
        }
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, _token: u64) {
        if let Some(block) = self.queue.pop_front() {
            self.samples_played += block.len() as u64;
        }
        self.playing = false;
        if self.enabled {
            if self.queue.is_empty() {
                // Nothing queued: audible gap.
                self.underruns += 1;
                ctx.raise_irq(); // "feed me" interrupt
            } else {
                ctx.raise_irq(); // block-done interrupt
                self.start_next(ctx);
            }
        }
    }

    fn hard_reset(&mut self) {
        self.queue.clear();
        self.playing = false;
        self.enabled = false;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// SCSI CD burner register map.
pub mod scsi_regs {
    /// Command: see [`super::scsi_cmd`].
    pub const CMD: u16 = 0x00;
    /// Sequence number of the chunk being written.
    pub const CHUNK_SEQ: u16 = 0x04;
    /// DMA address of the chunk.
    pub const DMA_ADDR: u16 = 0x08;
    /// Chunk length in bytes.
    pub const CHUNK_LEN: u16 = 0x0C;
    /// Status: see [`super::scsi_status`].
    pub const STATUS: u16 = 0x10;
    /// Total chunks of the burn (set before START).
    pub const TOTAL_CHUNKS: u16 = 0x14;
}

/// SCSI burner commands.
pub mod scsi_cmd {
    /// Begin a burn of `TOTAL_CHUNKS` chunks.
    pub const START_BURN: u32 = 1;
    /// Write the chunk described by CHUNK_SEQ/DMA_ADDR/CHUNK_LEN.
    pub const WRITE_CHUNK: u32 = 2;
    /// Finalize the session (only valid after the last chunk).
    pub const FINALIZE: u32 = 3;
    /// Reset the drive. Resetting mid-burn ruins the disc.
    pub const RESET: u32 = 4;
}

/// SCSI burner status codes.
pub mod scsi_status {
    /// No session.
    pub const IDLE: u32 = 0;
    /// Burn in progress.
    pub const BURNING: u32 = 1;
    /// Disc completed successfully.
    pub const COMPLETE: u32 = 2;
    /// Disc ruined (stream interrupted, wrong sequence, or reset mid-burn).
    pub const RUINED: u32 = 3;
}

/// A CD burner whose laser cannot pause: chunks are written to the medium
/// at the drive's real write rate, must arrive in order, and the next
/// chunk must arrive within a deadline of the previous one completing, or
/// the disc is ruined (§6.3: "continuing the CD or DVD burn process if the
/// SCSI driver fails will most certainly produce a corrupted disc").
#[derive(Debug)]
pub struct ScsiCdBurner {
    /// Per-chunk feed deadline (after the previous chunk finished).
    deadline: SimDuration,
    /// Medium write rate, bytes/second.
    write_rate: u64,
    status: u32,
    total: u32,
    next_seq: u32,
    seq_reg: u32,
    dma: u32,
    len: u32,
    /// Chunk currently being written by the laser.
    writing: Option<Vec<u8>>,
    /// Epoch guard for deadline and completion timers.
    epoch: u64,
    burned: Vec<u8>,
    discs_ruined: u32,
    discs_completed: u32,
}

const TOK_CHUNK_DONE: u64 = 1 << 40;
const TOK_DEADLINE: u64 = 2 << 40;

impl ScsiCdBurner {
    /// Creates a burner with the given per-chunk feed deadline and medium
    /// write rate (4x CD ≈ 600 KB/s).
    pub fn new(deadline: SimDuration, write_rate: u64) -> Self {
        assert!(write_rate > 0, "write rate must be positive");
        ScsiCdBurner {
            deadline,
            write_rate,
            status: scsi_status::IDLE,
            total: 0,
            next_seq: 0,
            seq_reg: 0,
            dma: 0,
            len: 0,
            writing: None,
            epoch: 0,
            burned: Vec::new(),
            discs_ruined: 0,
            discs_completed: 0,
        }
    }

    /// Bytes burned to the current/last disc.
    pub fn burned(&self) -> &[u8] {
        &self.burned
    }

    /// Number of discs ruined so far.
    pub fn discs_ruined(&self) -> u32 {
        self.discs_ruined
    }

    /// Number of discs completed so far.
    pub fn discs_completed(&self) -> u32 {
        self.discs_completed
    }

    fn ruin(&mut self) {
        if self.status == scsi_status::BURNING {
            self.status = scsi_status::RUINED;
            self.discs_ruined += 1;
            self.writing = None;
        }
    }

    fn arm_deadline(&mut self, ctx: &mut DevCtx<'_, '_>) {
        self.epoch += 1;
        ctx.set_timer_after(self.deadline, TOK_DEADLINE | self.epoch);
    }
}

impl Device for ScsiCdBurner {
    fn name(&self) -> &str {
        "scsi-cd"
    }

    fn read(&mut self, _ctx: &mut DevCtx<'_, '_>, reg: u16) -> u32 {
        match reg {
            scsi_regs::STATUS => self.status,
            scsi_regs::CHUNK_SEQ => self.next_seq,
            scsi_regs::TOTAL_CHUNKS => self.total,
            _ => 0,
        }
    }

    fn write(&mut self, ctx: &mut DevCtx<'_, '_>, reg: u16, value: u32) {
        match reg {
            scsi_regs::CHUNK_SEQ => self.seq_reg = value,
            scsi_regs::DMA_ADDR => self.dma = value,
            scsi_regs::CHUNK_LEN => self.len = value,
            scsi_regs::TOTAL_CHUNKS => self.total = value,
            scsi_regs::CMD => match value {
                scsi_cmd::START_BURN => {
                    self.ruin(); // starting over mid-burn ruins the old disc
                    if self.total == 0 {
                        return;
                    }
                    self.status = scsi_status::BURNING;
                    self.next_seq = 0;
                    self.writing = None;
                    self.burned.clear();
                    self.arm_deadline(ctx);
                }
                scsi_cmd::WRITE_CHUNK => {
                    if self.status != scsi_status::BURNING {
                        return;
                    }
                    if self.writing.is_some() {
                        // Chunk while the laser is still writing: the
                        // driver lost track of the protocol.
                        self.ruin();
                        return;
                    }
                    if self.seq_reg != self.next_seq {
                        // Out-of-order stream: a restarted driver cannot
                        // know where the laser is; the disc is lost.
                        self.ruin();
                        return;
                    }
                    let len = self.len as usize;
                    let mut chunk = vec![0u8; len];
                    if ctx.dma_read(u64::from(self.dma), &mut chunk).is_err() {
                        self.ruin();
                        return;
                    }
                    // The laser writes at the medium rate; completion is
                    // announced by IRQ.
                    let d = SimDuration::for_transfer(len as u64, self.write_rate);
                    self.writing = Some(chunk);
                    self.epoch += 1;
                    ctx.set_timer_after(d, TOK_CHUNK_DONE | self.epoch);
                }
                scsi_cmd::FINALIZE => {
                    if self.status == scsi_status::BURNING
                        && self.next_seq == self.total
                        && self.writing.is_none()
                    {
                        self.status = scsi_status::COMPLETE;
                        self.discs_completed += 1;
                        self.epoch += 1;
                        ctx.raise_irq();
                    } else {
                        self.ruin();
                    }
                }
                scsi_cmd::RESET => {
                    self.ruin();
                    if self.status != scsi_status::RUINED {
                        self.status = scsi_status::IDLE;
                    }
                    self.epoch += 1;
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn timer(&mut self, ctx: &mut DevCtx<'_, '_>, token: u64) {
        let (kind, epoch) = (token & (0xFF << 40), token & 0xFF_FFFF_FFFF);
        if epoch != self.epoch || self.status != scsi_status::BURNING {
            return;
        }
        match kind {
            TOK_CHUNK_DONE => {
                let chunk = self
                    .writing
                    .take()
                    .expect("chunk completion implies writing");
                self.burned.extend_from_slice(&chunk);
                self.next_seq += 1;
                if self.next_seq == self.total {
                    self.epoch += 1; // disarm: only FINALIZE remains
                } else {
                    self.arm_deadline(ctx);
                }
                ctx.raise_irq(); // chunk written
            }
            TOK_DEADLINE => {
                // The stream dried up (driver dead): the laser ran off
                // the end of the written area.
                self.ruin();
            }
            _ => {}
        }
    }

    fn hard_reset(&mut self) {
        self.ruin();
        self.status = scsi_status::IDLE;
        self.writing = None;
        self.epoch += 1;
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
