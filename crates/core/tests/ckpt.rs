//! phoenix-ckpt integration tests: checkpointed character-driver recovery
//! must be *transparent* — byte-exact device streams across kills, replay
//! past the acked watermark, stale-incarnation snapshots rejected — while
//! applications that opt out still get the paper's §6.3 error-push
//! behavior. All of it byte-identical under a fixed seed.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{CkptLpd, CkptLpdStatus, CkptMp3Player, CkptMp3Status, Lpd, LpdStatus};
use phoenix::campaign::{metrics_digest, run_ckpt_campaign, CkptCampaignConfig};
use phoenix::ckpt::{crc32, Snapshot};
use phoenix::os::{hwmap, names, Os};
use phoenix_hw::chardev::{AudioDac, Printer};
use phoenix_simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn job_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(167) >> 2) as u8)
        .collect()
}

/// The app's `done` means every byte is *acked by the driver*; the printer
/// FIFO may still be draining to paper. Run until the hardware catches up.
fn drain_printer(os: &mut Os, expected: usize) {
    let mut guard = 0;
    while guard < 400 {
        let printed = os
            .device_mut::<Printer>(hwmap::PRINTER)
            .map_or(0, |p| p.printed().len());
        if printed >= expected {
            break;
        }
        os.run_for(ms(50));
        guard += 1;
    }
}

/// A print job survives a mid-job driver kill with zero duplicated and
/// zero lost bytes: the printed stream equals the job exactly.
#[test]
fn printer_job_byte_exact_across_kill() {
    let mut os = Os::builder().seed(91).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let job = job_bytes(91, 40 * 1024);
    let status = Rc::new(RefCell::new(CkptLpdStatus::default()));
    os.spawn_app(
        "ckpt-lpd",
        Box::new(CkptLpd::new(vfs, job.clone(), status.clone())),
    );

    // Kill the printer driver twice, mid-job.
    os.run_for(ms(60));
    assert!(os.kill_by_user(names::CHR_PRINTER));
    os.run_for(ms(700));
    assert!(os.kill_by_user(names::CHR_PRINTER));

    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(50));
        guard += 1;
    }
    {
        let st = status.borrow();
        assert!(st.done, "job must complete (acked={})", st.acked);
        assert!(st.replays >= 1, "at least one kill must hit the job");
        assert_eq!(st.app_errors, 0, "recovery must be transparent to lpd");
    }

    drain_printer(&mut os, job.len());
    let printer = os.device_mut::<Printer>(hwmap::PRINTER).unwrap();
    assert_eq!(
        printer.printed().len(),
        job.len(),
        "no lost and no duplicated bytes"
    );
    assert_eq!(printer.printed(), &job[..], "printed stream byte-exact");
    assert!(os.metrics().counter("ckpt.saves_acked") > 0);
    assert!(os.metrics().counter("ckpt.restores") >= 1);
}

/// Audio playback resumes past the acked watermark after a driver kill:
/// every logged block reaches the DAC exactly once, no app-level drops.
#[test]
fn audio_resumes_past_acked_watermark() {
    let mut os = Os::builder().seed(92).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let blocks = 40u64;
    let block_bytes = 4410usize;
    let status = Rc::new(RefCell::new(CkptMp3Status::default()));
    os.spawn_app(
        "ckpt-mp3",
        Box::new(CkptMp3Player::new(
            vfs,
            blocks,
            block_bytes,
            ms(25),
            status.clone(),
        )),
    );

    os.run_for(ms(120));
    assert!(os.kill_by_user(names::CHR_AUDIO));

    let expected = blocks * block_bytes as u64;
    let mut guard = 0;
    loop {
        let played = os
            .device_mut::<AudioDac>(hwmap::AUDIO)
            .map_or(0, |d| d.samples_played());
        if (status.borrow().done && played >= expected) || guard >= 600 {
            break;
        }
        os.run_for(ms(50));
        guard += 1;
    }
    let st = status.borrow();
    assert!(st.done, "stream must finish (acked={})", st.acked);
    assert!(st.replays >= 1, "the kill must interrupt the stream");
    assert_eq!(st.app_errors, 0, "recovery must be transparent to mp3");
    assert_eq!(st.acked, expected, "every logged byte acked exactly once");
    let dac = os.device_mut::<AudioDac>(hwmap::AUDIO).unwrap();
    assert_eq!(dac.samples_played(), expected, "DAC played each byte once");
}

/// At-least-once oracle for runs where the snapshot was lost or unusable:
/// `printed` must be `job[0..c] ++ job[a..]` with `a <= c` — nothing lost,
/// duplicates only where the caller log replayed past a lost watermark.
fn assert_stream_covers(printed: &[u8], job: &[u8]) {
    assert!(
        printed.len() >= job.len(),
        "bytes lost: printed {} < job {}",
        printed.len(),
        job.len()
    );
    let c = printed
        .iter()
        .zip(job.iter())
        .take_while(|(p, j)| p == j)
        .count();
    let resume = job.len() - (printed.len() - c);
    assert!(
        resume <= c,
        "gap in replayed stream (prefix {c}, resume {resume})"
    );
    assert_eq!(&printed[c..], &job[resume..], "tail must be a job suffix");
}

/// A snapshot sequence regression (a ghost record shadowing the live
/// incarnation) is rejected by DS as stale; after a kill the driver
/// distrusts the useless watermark, falls back to the caller-held log,
/// and the job still completes with nothing lost.
#[test]
fn stale_incarnation_snapshot_rejected() {
    let mut os = Os::builder().seed(93).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let job = job_bytes(93, 48 * 1024);
    let status = Rc::new(RefCell::new(CkptLpdStatus::default()));
    os.spawn_app(
        "ckpt-lpd",
        Box::new(CkptLpd::new(vfs, job.clone(), status.clone())),
    );
    os.run_for(ms(80));

    // Forge a ghost record that shadows the live incarnation: a far-future
    // incarnation tag and sequence number, but a useless (zero) watermark.
    // Every later save from the live incarnation regresses the sequence
    // and must be rejected as stale.
    let store = os.ckpt_store().expect("checkpointing boots a store");
    let forged = Snapshot::watermark(u32::MAX, u64::MAX / 2, 0).encode();
    store.borrow_mut().insert_raw(
        names::CHR_PRINTER,
        "printer",
        u32::MAX,
        u64::MAX / 2,
        forged,
    );

    os.run_for(ms(150));
    assert!(
        os.metrics().counter("ds.ckpt_stale_rejected") > 0,
        "live saves after the forgery must be rejected as stale"
    );

    // Kill the driver: the fresh incarnation restores the forged snapshot,
    // whose watermark says nothing useful — the caller log replays from
    // its own acked cursor (a watermark jump) and nothing is lost.
    assert!(os.kill_by_user(names::CHR_PRINTER));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(50));
        guard += 1;
    }
    assert!(status.borrow().done, "job must still complete");
    assert_eq!(status.borrow().app_errors, 0);
    assert!(
        os.metrics().counter("ckpt.watermark_jumps") >= 1,
        "the useless watermark must be jumped, trusting the caller log"
    );
    drain_printer(&mut os, job.len());
    let printer = os.device_mut::<Printer>(hwmap::PRINTER).unwrap();
    assert_stream_covers(printer.printed(), &job);
}

/// A corrupt snapshot (bad CRC) is caught on restore; the driver falls
/// back to caller-log replay with at-least-once semantics — nothing lost,
/// and the corruption is detected rather than silently restored.
#[test]
fn corrupt_snapshot_detected_on_restore() {
    let mut os = Os::builder().seed(94).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let job = job_bytes(94, 48 * 1024);
    let status = Rc::new(RefCell::new(CkptLpdStatus::default()));
    os.spawn_app(
        "ckpt-lpd",
        Box::new(CkptLpd::new(vfs, job.clone(), status.clone())),
    );
    os.run_for(ms(100));

    // Flip bits in the stored snapshot *behind* DS's back, keeping the
    // header fields intact so only the CRC check can catch it.
    let store = os.ckpt_store().expect("checkpointing boots a store");
    {
        let mut s = store.borrow_mut();
        let stored = s
            .get(names::CHR_PRINTER, "printer")
            .expect("driver has checkpointed by now");
        let (inc, seq) = (stored.incarnation, stored.seq);
        let mut wire = stored.wire.clone();
        let n = wire.len();
        wire[n - 6] ^= 0xFF; // payload byte, CRC now wrong
        s.insert_raw(names::CHR_PRINTER, "printer", inc, seq, wire);
    }

    assert!(os.kill_by_user(names::CHR_PRINTER));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(50));
        guard += 1;
    }
    assert!(
        status.borrow().done,
        "job must complete past the corruption"
    );
    assert_eq!(status.borrow().app_errors, 0);
    assert!(
        os.metrics().counter("ds.ckpt_corrupt_rejected") > 0
            || os.metrics().counter("ckpt.restore_corrupt") > 0,
        "the corruption must be detected, not silently restored"
    );
    drain_printer(&mut os, job.len());
    let printer = os.device_mut::<Printer>(hwmap::PRINTER).unwrap();
    assert_stream_covers(printer.printed(), &job);
}

/// §6.3 regression: applications opting OUT of checkpointing still get the
/// paper's error-push behavior. The recovery-aware lpd reissues the whole
/// job (duplicates possible); the recovery-unaware one surfaces a fatal
/// error to the user.
#[test]
fn opt_out_keeps_error_push_semantics() {
    // Recovery-aware legacy lpd: restarts the job, duplicates appear.
    let mut os = Os::builder().seed(95).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let job = job_bytes(95, 12 * 1024);
    let aware = Rc::new(RefCell::new(LpdStatus::default()));
    os.spawn_app("lpd", Box::new(Lpd::new(vfs, job.clone(), aware.clone())));
    os.run_for(ms(60));
    assert!(os.kill_by_user(names::CHR_PRINTER));
    let mut guard = 0;
    while !aware.borrow().done && guard < 600 {
        os.run_for(ms(50));
        guard += 1;
    }
    assert!(aware.borrow().done);
    assert!(
        aware.borrow().job_restarts >= 1,
        "aware app must see the failure and restart the job"
    );
    os.run_for(ms(2000)); // let the printer FIFO drain to paper
    let printer = os.device_mut::<Printer>(hwmap::PRINTER).unwrap();
    assert!(
        printer.printed().len() > job.len(),
        "whole-job reissue duplicates output ({} vs {})",
        printer.printed().len(),
        job.len()
    );

    // Recovery-unaware legacy lpd: the error reaches the user, job dies.
    let mut os = Os::builder().seed(96).with_checkpointing().boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let unaware = Rc::new(RefCell::new(LpdStatus::default()));
    os.spawn_app(
        "lpd-unaware",
        Box::new(Lpd::new_unaware(vfs, job.clone(), unaware.clone())),
    );
    os.run_for(ms(60));
    assert!(os.kill_by_user(names::CHR_PRINTER));
    let mut guard = 0;
    while !unaware.borrow().done && guard < 600 {
        os.run_for(ms(50));
        guard += 1;
    }
    let st = unaware.borrow();
    assert!(st.done, "unaware app gives up and reports");
    assert!(st.fatal >= 1, "failure must surface to the user (§6.3)");
    assert_eq!(st.job_restarts, 0, "unaware app never replays");
}

/// The whole checkpoint campaign is deterministic: same seed, same digest.
#[test]
fn ckpt_campaign_same_seed_same_digest() {
    let cfg = CkptCampaignConfig {
        faults: 6,
        ..CkptCampaignConfig::default()
    };
    let (a, os_a) = run_ckpt_campaign(&cfg);
    let (b, os_b) = run_ckpt_campaign(&cfg);
    assert_eq!(a.digest, b.digest, "same seed must be byte-identical");
    assert_eq!(metrics_digest(&os_a), metrics_digest(&os_b));
    assert!(a.workloads_done, "campaign workloads must finish");
    assert!(a.printer_byte_exact, "campaign printer stream exact");
    assert_eq!(a.app_visible_errors, 0, "campaign fully transparent");
    assert_eq!(a.samples_played, a.expected_samples);
}

/// Snapshot wire format: CRC covers the payload; decode round-trips.
#[test]
fn snapshot_wire_roundtrip() {
    let snap = Snapshot::new(3, 17, vec![1, 2, 3, 4]);
    let wire = snap.encode();
    assert_eq!(Snapshot::decode(&wire).unwrap(), snap);
    assert_ne!(crc32(&[1, 2, 3]), crc32(&[1, 2, 4]));
}
