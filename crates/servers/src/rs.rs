//! The reincarnation server (§5): defect detection and policy-driven
//! recovery.
//!
//! RS is the parent-of-record for every system service: it asks the
//! process manager to execute service binaries, publishes their endpoints
//! in the data store, and then guards them continuously. Defects reach RS
//! through all six §5.1 inputs:
//!
//! 1. process exit or panic — SIGCHLD report from PM;
//! 2. killed by CPU/MMU exception — SIGCHLD report from PM;
//! 3. killed by user — SIGCHLD report, or an explicit `service restart`;
//! 4. heartbeat missing N consecutive times — RS's own periodic pings;
//! 5. complaint by an authorized component — `rs::COMPLAIN`;
//! 6. dynamic update — `rs::UPDATE` (SIGTERM, escalating to SIGKILL).
//!
//! On a defect RS runs the component's policy script (§5.2) and carries
//! out its decision: restart after (possibly exponential-backoff) delay,
//! restart dependent components, raise alerts, give up, or request a
//! whole-system reboot. After a restart RS publishes the *new* endpoint in
//! the data store before dependents learn about it (§5.3).

use std::collections::HashMap;

use phoenix_drivers::proto::drv;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, Message};
use phoenix_simcore::time::{SimDuration, SimTime};
use phoenix_simcore::trace::TraceLevel;

use crate::policy::{reason, PolicyDecision, PolicyInput, PolicyScript};
use crate::proto::{ds, pm, rs as rsp, unpack_endpoint};

/// Configuration of one guarded service, as passed to the `service`
/// utility in MINIX (§5: "the driver's binary, a stable name, the process'
/// precise privileges, a heartbeat period, and, optionally, a parametrized
/// policy script").
///
/// Privileges live in the kernel's program registry (bound to the binary),
/// so they are not repeated here.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Program name in the kernel registry; doubles as the stable name.
    pub program: String,
    /// Key published in the data store (e.g. `eth.rtl8139`, `blk.sata`).
    pub publish_key: String,
    /// Heartbeat period; `None` disables heartbeats for this service.
    pub heartbeat_period: Option<SimDuration>,
    /// Consecutive missed heartbeats before recovery is initiated
    /// ("failing to respond N consecutive times", §5.1).
    pub heartbeat_misses: u32,
    /// Recovery policy; `None` means a direct restart with no script
    /// (like disk drivers, whose script could not be read from the dead
    /// disk, §6.2).
    pub policy: Option<PolicyScript>,
    /// Parameters passed to the policy script (`$1`, ...).
    pub policy_params: Vec<String>,
}

impl ServiceConfig {
    /// A driver config with the generic Fig. 2 policy and 1 s heartbeats.
    pub fn driver(program: &str, publish_key: &str) -> Self {
        ServiceConfig {
            program: program.to_string(),
            publish_key: publish_key.to_string(),
            heartbeat_period: Some(SimDuration::from_secs(1)),
            heartbeat_misses: 3,
            policy: Some(PolicyScript::generic()),
            policy_params: Vec::new(),
        }
    }

    /// Replaces the policy script (builder style).
    pub fn with_policy(mut self, policy: PolicyScript) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Disables the policy script: direct restart (§6.2 disk drivers).
    pub fn without_policy(mut self) -> Self {
        self.policy = None;
        self
    }

    /// Sets the policy parameters (builder style).
    pub fn with_params(mut self, params: Vec<String>) -> Self {
        self.policy_params = params;
        self
    }

    /// Sets the heartbeat period (builder style).
    pub fn with_heartbeat(mut self, period: SimDuration, misses: u32) -> Self {
        self.heartbeat_period = Some(period);
        self.heartbeat_misses = misses;
        self
    }

    /// Disables heartbeats (builder style).
    pub fn without_heartbeat(mut self) -> Self {
        self.heartbeat_period = None;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SvcState {
    /// Not running, no restart scheduled.
    Down,
    /// PM_START in flight.
    Starting,
    /// Running and guarded.
    Up,
    /// Dead; restart alarm armed.
    WaitRestart,
    /// Policy gave up (or administrative down); no automatic recovery.
    GivenUp,
}

struct Service {
    cfg: ServiceConfig,
    state: SvcState,
    endpoint: Option<Endpoint>,
    /// Failure count fed to the policy as `repetition`.
    failures: u32,
    /// Defect class RS already knows (set before RS-initiated kills).
    pending_reason: Option<u8>,
    /// Program version to use for the next start (None = latest).
    next_version: Option<u32>,
    hb_nonce: u64,
    hb_outstanding: u32,
    died_at: Option<SimTime>,
    admin_down: bool,
}

/// Minimum time between a service's death and its restarted incarnation
/// (fork + exec + image load).
const EXEC_LATENCY: SimDuration = SimDuration::from_millis(10);

// Alarm token layout: kind in the high 32 bits, service index below.
const TOK_HB: u64 = 1;
const TOK_RESTART: u64 = 2;
const TOK_ESCALATE: u64 = 3;

fn token(kind: u64, idx: usize) -> u64 {
    (kind << 32) | idx as u64
}

/// The reincarnation server.
pub struct ReincarnationServer {
    pm: Endpoint,
    ds: Endpoint,
    services: Vec<Service>,
    by_name: HashMap<String, usize>,
    /// Service names authorized to file complaints (trusted servers with
    /// `may_complain`).
    complainants: Vec<String>,
    /// In-flight PM_START calls.
    start_calls: HashMap<CallId, usize>,
    started_boot: bool,
}

impl ReincarnationServer {
    /// Creates RS, wired to PM and DS, guarding `services`.
    pub fn new(pm: Endpoint, ds: Endpoint, services: Vec<ServiceConfig>, complainants: Vec<String>) -> Self {
        let mut by_name = HashMap::new();
        let services: Vec<Service> = services
            .into_iter()
            .map(|cfg| Service {
                cfg,
                state: SvcState::Down,
                endpoint: None,
                failures: 0,
                pending_reason: None,
                next_version: None,
                hb_nonce: 0,
                hb_outstanding: 0,
                died_at: None,
                admin_down: false,
            })
            .collect();
        for (i, s) in services.iter().enumerate() {
            by_name.insert(s.cfg.program.clone(), i);
        }
        ReincarnationServer {
            pm,
            ds,
            services,
            by_name,
            complainants,
            start_calls: HashMap::new(),
            started_boot: false,
        }
    }

    fn start_service(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let svc = &mut self.services[idx];
        if matches!(svc.state, SvcState::Starting | SvcState::Up) {
            return;
        }
        let version = svc.next_version.take().map_or(0, u64::from);
        let msg = Message::new(pm::START)
            .with_param(0, version)
            .with_data(svc.cfg.program.clone().into_bytes());
        match ctx.sendrec(self.pm, msg) {
            Ok(call) => {
                svc.state = SvcState::Starting;
                self.start_calls.insert(call, idx);
            }
            Err(e) => {
                svc.state = SvcState::GivenUp;
                ctx.trace(
                    TraceLevel::Error,
                    format!("cannot reach PM to start {}: {e}", svc.cfg.program),
                );
            }
        }
    }

    fn kill_service(&mut self, ctx: &mut Ctx<'_>, idx: usize, term: bool) {
        let Some(ep) = self.services[idx].endpoint else { return };
        let msg = Message::new(pm::KILL)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_param(2, u64::from(!term));
        let _ = ctx.sendrec(self.pm, msg);
    }

    fn publish(&mut self, ctx: &mut Ctx<'_>, idx: usize, ep: Endpoint) {
        let key = self.services[idx].cfg.publish_key.clone();
        let msg = Message::new(ds::PUBLISH)
            .with_param(0, u64::from(ep.slot()))
            .with_param(1, u64::from(ep.generation()))
            .with_data(key.into_bytes());
        let _ = ctx.sendrec(self.ds, msg);
    }

    // [recovery:begin]
    /// Common defect entry point: classify, run the policy, act (§5.2).
    fn handle_defect(&mut self, ctx: &mut Ctx<'_>, idx: usize, defect: u8) {
        let now = ctx.now();
        let svc = &mut self.services[idx];
        svc.state = SvcState::Down;
        svc.endpoint = None;
        svc.hb_outstanding = 0;
        svc.died_at = Some(now);
        if svc.admin_down {
            svc.admin_down = false;
            ctx.trace(
                TraceLevel::Info,
                format!("service {} administratively down", svc.cfg.program),
            );
            return;
        }
        if defect != reason::UPDATE {
            svc.failures += 1;
        }
        let name = svc.cfg.program.clone();
        ctx.metrics()
            .incr(&format!("rs.defect.{}", reason::name(defect)));
        ctx.trace(
            TraceLevel::Warn,
            format!(
                "defect in {name}: {} (failure #{})",
                reason::name(defect),
                self.services[idx].failures
            ),
        );
        // Execute the policy script associated with the component. No
        // script (disk drivers) means a direct restart from the copy in
        // RAM (§6.2).
        let svc = &self.services[idx];
        let input = PolicyInput {
            component: name.clone(),
            reason: defect,
            repetition: svc.failures.max(1),
            params: svc.cfg.policy_params.clone(),
        };
        let decision = match &svc.cfg.policy {
            Some(script) => script.run(&input),
            None => PolicyDecision {
                restart: true,
                ..PolicyDecision::default()
            },
        };
        for alert in &decision.alerts {
            ctx.metrics().incr("rs.alerts");
            ctx.trace(TraceLevel::Warn, format!("ALERT: {alert}"));
        }
        for line in &decision.logs {
            ctx.trace(TraceLevel::Info, format!("policy log: {line}"));
        }
        for dep in decision.restart_components.clone() {
            if let Some(&dep_idx) = self.by_name.get(&dep) {
                if self.services[dep_idx].state == SvcState::Up {
                    self.services[dep_idx].pending_reason = Some(reason::KILLED);
                    self.kill_service(ctx, dep_idx, false);
                }
            }
        }
        if decision.reboot {
            ctx.metrics().incr("rs.reboot_requested");
            ctx.trace(TraceLevel::Error, "policy requested system reboot".to_string());
        }
        if decision.gave_up || !decision.restart {
            self.services[idx].state = SvcState::GivenUp;
            ctx.metrics().incr("rs.gave_up");
            ctx.trace(TraceLevel::Error, format!("giving up on {name}"));
            return;
        }
        self.services[idx].next_version = decision.version;
        // Even a "direct" restart pays the fork+exec+image-load cost; this
        // also keeps a component that dies at initialization from turning
        // into an unthrottled crash loop.
        let delay = decision.delay.max(EXEC_LATENCY);
        self.services[idx].state = SvcState::WaitRestart;
        if !decision.delay.is_zero() {
            ctx.trace(
                TraceLevel::Info,
                format!("restarting {name} after {}", decision.delay),
            );
        }
        let _ = ctx.set_alarm(delay, token(TOK_RESTART, idx));
    }

    fn service_by_endpoint(&self, ep: Endpoint) -> Option<usize> {
        self.services.iter().position(|s| s.endpoint == Some(ep))
    }

    fn endpoint_is_complainant(&self, ep: Endpoint) -> bool {
        self.complainants.iter().any(|name| {
            self.by_name
                .get(name)
                .is_some_and(|&i| self.services[i].endpoint == Some(ep))
        })
    }
    // [recovery:end]
}

impl Process for ReincarnationServer {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                if self.started_boot {
                    return;
                }
                self.started_boot = true;
                // Become PM's exit-report sink before any child can die.
                let _ = ctx.send(self.pm, Message::new(pm::REGISTER));
                for idx in 0..self.services.len() {
                    self.start_service(ctx, idx);
                }
            }
            ProcEvent::Reply { call, result } => {
                let Some(idx) = self.start_calls.remove(&call) else {
                    return; // replies to KILL/PUBLISH need no action
                };
                let svc_name = self.services[idx].cfg.program.clone();
                match result {
                    Ok(reply) if reply.mtype == pm::START_REPLY && reply.param(0) == 0 => {
                        let ep = unpack_endpoint(reply.param(1), reply.param(2));
                        let was_recovery = self.services[idx].died_at.is_some();
                        self.services[idx].state = SvcState::Up;
                        self.services[idx].endpoint = Some(ep);
                        self.services[idx].hb_outstanding = 0;
                        // Publish the new endpoint *before* dependents are
                        // notified — the data store does both atomically
                        // from the subscribers' point of view (§5.3).
                        self.publish(ctx, idx, ep);
                        if let Some(died) = self.services[idx].died_at.take() {
                            let dt = ctx.now().since(died);
                            ctx.metrics().incr("rs.recoveries");
                            ctx.metrics()
                                .histogram_mut("rs.recovery_time")
                                .record_duration(dt);
                            ctx.trace(
                                TraceLevel::Info,
                                format!("recovered {svc_name} as {ep} in {dt}"),
                            );
                        } else {
                            ctx.metrics().incr("rs.starts");
                            ctx.trace(TraceLevel::Info, format!("started {svc_name} as {ep}"));
                        }
                        let _ = was_recovery;
                        if let Some(period) = self.services[idx].cfg.heartbeat_period {
                            let _ = ctx.set_alarm(period, token(TOK_HB, idx));
                        }
                    }
                    other => {
                        self.services[idx].state = SvcState::GivenUp;
                        ctx.metrics().incr("rs.gave_up");
                        ctx.trace(
                            TraceLevel::Error,
                            format!("failed to start {svc_name}: {other:?}"),
                        );
                    }
                }
            }
            ProcEvent::Message(msg) => match msg.mtype {
    // [recovery:begin]
                pm::SIGCHLD => {
                    let ep = unpack_endpoint(msg.param(0), msg.param(1));
                    let Some(idx) = self.service_by_endpoint(ep) else {
                        return; // not one of ours (e.g. a user process)
                    };
                    // Defect classes 1-3 (§5.1) from the exit status,
                    // unless RS already knows why it killed the process
                    // (heartbeat 4, complaint 5, update 6, user 3).
                    let defect = self.services[idx].pending_reason.take().unwrap_or({
                        match msg.param(2) {
                            0 | 1 => reason::EXIT,
                            2 => reason::EXCEPTION,
                            _ => reason::KILLED,
                        }
                    });
                    self.handle_defect(ctx, idx, defect);
                }
                drv::HB_PONG => {
                    if let Some(idx) = self.service_by_endpoint(msg.source) {
                        self.services[idx].hb_outstanding = 0;
                    }
                }
    // [recovery:end]
                _ => {}
            },
            ProcEvent::Request { call, msg } => {
                let name = String::from_utf8_lossy(&msg.data).to_string();
                let idx = self.by_name.get(&name).copied();
                let mut st = 0u64;
                match (msg.mtype, idx) {
                    (rsp::UP, Some(i)) => {
                        self.services[i].admin_down = false;
                        if self.services[i].state == SvcState::GivenUp {
                            self.services[i].state = SvcState::Down;
                        }
                        self.start_service(ctx, i);
                    }
                    (rsp::RESTART, Some(i)) => {
                        // User-initiated replacement, defect class 3.
                        if self.services[i].state == SvcState::Up {
                            self.services[i].pending_reason = Some(reason::KILLED);
                            self.kill_service(ctx, i, false);
                        } else {
                            self.start_service(ctx, i);
                        }
                    }
                    (rsp::UPDATE, Some(i)) => {
                        // Dynamic update, defect class 6: ask nicely with
                        // SIGTERM, escalate to SIGKILL if ignored (§6).
                        if self.services[i].state == SvcState::Up {
                            self.services[i].pending_reason = Some(reason::UPDATE);
                            self.kill_service(ctx, i, true);
                            let _ = ctx.set_alarm(SimDuration::from_millis(500), token(TOK_ESCALATE, i));
                        } else {
                            self.start_service(ctx, i);
                        }
                    }
                    (rsp::DOWN, Some(i)) => {
                        if self.services[i].state == SvcState::Up {
                            self.services[i].admin_down = true;
                            self.kill_service(ctx, i, false);
                        } else {
                            self.services[i].state = SvcState::GivenUp;
                        }
                    }
                    (rsp::COMPLAIN, Some(i)) => {
                        // Defect class 5: an authorized server reports a
                        // protocol violation; RS arbitrates (§5.1).
                        if self.endpoint_is_complainant(msg.source) {
                            if self.services[i].state == SvcState::Up {
                                ctx.trace(
                                    TraceLevel::Warn,
                                    format!("complaint about {name} from {}", msg.source),
                                );
                                self.services[i].pending_reason = Some(reason::COMPLAINT);
                                self.kill_service(ctx, i, false);
                            }
                        } else {
                            st = 13; // EACCES
                        }
                    }
                    _ => st = 22, // EINVAL / unknown service
                }
                let _ = ctx.reply(call, Message::new(rsp::ACK).with_param(0, st));
            }
    // [recovery:begin]
            ProcEvent::Alarm { token: t } => {
                let (kind, idx) = (t >> 32, (t & 0xFFFF_FFFF) as usize);
                if idx >= self.services.len() {
                    return;
                }
                match kind {
                    TOK_HB => {
                        let svc = &mut self.services[idx];
                        if svc.state != SvcState::Up {
                            return; // heartbeat chain ends; restart rearms
                        }
                        if svc.hb_outstanding >= svc.cfg.heartbeat_misses {
                            // Defect class 4: the process is stuck.
                            svc.pending_reason = Some(reason::HEARTBEAT);
                            let name = svc.cfg.program.clone();
                            ctx.trace(
                                TraceLevel::Warn,
                                format!("{name} missed {} heartbeats, killing", svc.hb_outstanding),
                            );
                            self.kill_service(ctx, idx, false);
                            return;
                        }
                        svc.hb_nonce += 1;
                        let nonce = svc.hb_nonce;
                        svc.hb_outstanding += 1;
                        let ep = svc.endpoint;
                        let period = svc.cfg.heartbeat_period.expect("hb alarm implies period");
                        if let Some(ep) = ep {
                            // Nonblocking status request (§5.1): a sick
                            // driver can never hang RS.
                            let _ = ctx.send(ep, Message::new(drv::HB_PING).with_param(0, nonce));
                        }
                        let _ = ctx.set_alarm(period, token(TOK_HB, idx));
                    }
                    TOK_RESTART
                        if self.services[idx].state == SvcState::WaitRestart => {
                            self.start_service(ctx, idx);
                        }
                    TOK_ESCALATE
                        if self.services[idx].state == SvcState::Up => {
                            // SIGTERM was ignored; escalate to SIGKILL.
                            self.kill_service(ctx, idx, false);
                        }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}
    // [recovery:end]
