//! The virtual file system server.
//!
//! VFS routes application I/O: paths under `/dev/` go to character device
//! drivers (discovered via the data store under `chr.*`), everything else
//! goes to the file server (`fs.*`). For character devices VFS implements
//! the §6.3 contract: a driver failure mid-stream cannot be recovered
//! transparently, so the error — including an explicit "driver died"
//! indication — is pushed up to the application, which may be
//! recovery-aware (reissue the print job) or must inform the user.

use std::collections::BTreeMap;

use phoenix_ckpt::driver::{DriverCkpt, RestoreEvent};
use phoenix_ckpt::proto::wal_params;
use phoenix_drivers::proto::{cdev, status};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, Endpoint, Message};
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::faultplane::{garble_message, FaultAction, FaultPlane, FaultState};
use crate::proto::{ds, evidence, fs, pack_endpoint, rs as rsp, unpack_endpoint};

/// Extra reply parameter index: set to 1 when the failure was a dead
/// driver (aborted rendezvous) rather than an ordinary I/O error.
pub const DRIVER_DIED_PARAM: usize = 2;

/// Built-in device-name table: `/dev/<name>` -> data-store key.
const DEV_TABLE: &[(&str, &str)] = &[
    ("/dev/lp", "chr.printer"),
    ("/dev/audio", "chr.audio"),
    ("/dev/cd", "chr.scsi"),
    ("/dev/kbd", "chr.kbd"),
];

#[derive(Debug, Clone)]
struct Forward {
    client: CallId,
    /// Write-ahead-log sequence of the forwarded request (0 = not
    /// logged). Echoed in the failure reply so a checkpointing client
    /// can mark exactly which log entry was in flight when the driver
    /// died — the entry it must replay first.
    wal_seq: u64,
    /// Protocol-sentinel expectation for char-driver forwards; `None`
    /// for file-server forwards (those have their own sentinels in MFS).
    sentinel: Option<SentinelExpect>,
    /// For file-server forwards: the accused `(stable name, endpoint)`
    /// should the reply violate the fs protocol — VFS vets its sibling
    /// servers' replies just as it vets char drivers'.
    fs_accused: Option<(String, Endpoint)>,
}

/// What a char-driver reply must conform to (the protocol sentinel's
/// state-machine expectation, recorded when the request was forwarded).
#[derive(Debug, Clone, Copy)]
struct SentinelExpect {
    /// Data-store key (doubles as the accused service name).
    key: &'static str,
    /// Driver incarnation the request went to.
    driver: Endpoint,
    /// Forwarded request type.
    kind: u32,
    /// Request payload length (WRITE) or requested byte cap (READ).
    len: usize,
    /// Byte-sum of the forwarded payload (WRITE only).
    sum: Option<u32>,
}

/// Plain byte-sum, mirroring the checksum the char-driver fault routine
/// computes over the payload it processed.
fn byte_sum(data: &[u8]) -> u32 {
    data.iter().map(|&b| u32::from(b)).sum()
}

/// Validates a char-driver reply against the sentinel expectation.
/// Returns the evidence class and description of the violation, if any.
fn vet_reply(exp: &SentinelExpect, reply: &Message) -> Option<(u32, &'static str)> {
    if reply.mtype != cdev::REPLY {
        return Some((evidence::BAD_REPLY, "wrong reply type"));
    }
    if reply.param(0) != status::OK {
        return None; // error replies carry nothing to vet
    }
    let bytes = reply.param(1) as usize;
    match exp.kind {
        cdev::WRITE if bytes > exp.len => {
            return Some((evidence::SUSPECT_REPLY, "accepted more bytes than sent"));
        }
        cdev::READ if bytes != reply.data.len() || reply.data.len() > exp.len => {
            return Some((evidence::SUSPECT_REPLY, "reply length inconsistent"));
        }
        _ => {}
    }
    // Checksum echo (params[2] = 1 + sum, 0 = driver does not echo):
    // writes are checked against the payload we forwarded, reads
    // against the data the driver delivered.
    let echo = reply.param(2);
    if echo != 0 {
        let sum = match exp.kind {
            cdev::WRITE => exp.sum,
            cdev::READ => Some(byte_sum(&reply.data)),
            _ => None,
        };
        if let Some(s) = sum {
            if echo != 1 + u64::from(s) {
                return Some((evidence::CRC_MISMATCH, "checksum echo mismatch"));
            }
        }
    }
    None
}

/// The VFS server.
pub struct Vfs {
    ds: Endpoint,
    rs: Endpoint,
    fs_key: String,
    fs: Option<Endpoint>,
    /// Optional second file server (Fig. 5's FAT) mounted at `/fat/`.
    fat_key: Option<String>,
    fat: Option<Endpoint>,
    chr: BTreeMap<String, Endpoint>,
    check_call: Option<CallId>,
    forwards: BTreeMap<CallId, Forward>,
    /// Requests parked until the file server is known.
    waiting_fs: Vec<(CallId, Message)>,
    /// Mount-table checkpoint client (crash-only contract): the route
    /// bindings are externalized so a restarted incarnation serves its
    /// first request without waiting for the DS re-subscribe round-trips.
    ckpt: Option<DriverCkpt>,
    /// Mount table changed since the last checkpoint save.
    dirty: bool,
    /// Injected-defect latches (microreboot campaign).
    fault: FaultState,
}

impl Vfs {
    /// Creates VFS; the file server is discovered under `fs_key`
    /// (e.g. `"mfs"`). `rs` receives protocol-sentinel complaints.
    pub fn new(ds: Endpoint, rs: Endpoint, fs_key: &str) -> Self {
        Vfs {
            ds,
            rs,
            fs_key: fs_key.to_string(),
            fs: None,
            fat_key: None,
            fat: None,
            chr: BTreeMap::new(),
            check_call: None,
            forwards: BTreeMap::new(),
            waiting_fs: Vec::new(),
            ckpt: None,
            dirty: false,
            fault: FaultState::detached(),
        }
    }

    /// Enables mount-table checkpointing: the fs/fat/char-driver bindings
    /// are saved to the DS store on every change and rehydrated lazily
    /// after a microreboot.
    pub fn with_checkpointing(mut self) -> Self {
        self.ckpt = Some(DriverCkpt::new(self.ds, "mounts"));
        self
    }

    /// Attaches the server fault plane (campaign defect injection).
    pub fn with_fault_plane(mut self, plane: &FaultPlane, name: &str) -> Self {
        self.fault = FaultState::attached(plane, name);
        self
    }

    // ---------------- mount-table externalization ----------------

    fn push_ep(out: &mut Vec<u8>, ep: Option<Endpoint>) {
        match ep {
            Some(ep) => {
                out.push(1);
                out.extend_from_slice(&ep.slot().to_le_bytes());
                out.extend_from_slice(&ep.generation().to_le_bytes());
            }
            None => out.push(0),
        }
    }

    fn read_ep(buf: &[u8], at: &mut usize) -> Option<Option<Endpoint>> {
        let &tag = buf.get(*at)?;
        *at += 1;
        if tag == 0 {
            return Some(None);
        }
        let slot = u16::from_le_bytes(buf.get(*at..*at + 2)?.try_into().ok()?);
        let generation = u32::from_le_bytes(buf.get(*at + 2..*at + 6)?.try_into().ok()?);
        *at += 6;
        Some(Some(Endpoint::new(slot, generation)))
    }

    /// Serializes the route bindings (fs, fat, char drivers).
    fn encode_mounts(&self) -> Vec<u8> {
        let mut out = Vec::new();
        Self::push_ep(&mut out, self.fs);
        Self::push_ep(&mut out, self.fat);
        out.extend_from_slice(&(self.chr.len() as u16).to_le_bytes());
        for (key, &ep) in &self.chr {
            out.push(key.len() as u8);
            out.extend_from_slice(key.as_bytes());
            Self::push_ep(&mut out, Some(ep));
        }
        out
    }

    /// Rehydrates the route bindings, filling in only what the DS replay
    /// has not already delivered (fresher endpoints win over the
    /// snapshot; a stale binding merely costs one driver-died failure).
    fn apply_mounts(&mut self, ctx: &mut Ctx<'_>, payload: &[u8]) -> bool {
        let mut at = 0usize;
        let Some(fs) = Self::read_ep(payload, &mut at) else {
            return false;
        };
        let Some(fat) = Self::read_ep(payload, &mut at) else {
            return false;
        };
        let Some(count_bytes) = payload.get(at..at + 2) else {
            return false;
        };
        let count = u16::from_le_bytes(count_bytes.try_into().unwrap_or([0; 2]));
        at += 2;
        let mut chr = Vec::new();
        for _ in 0..count {
            let Some(&klen) = payload.get(at) else {
                return false;
            };
            at += 1;
            let Some(kraw) = payload.get(at..at + klen as usize) else {
                return false;
            };
            let key = String::from_utf8_lossy(kraw).to_string();
            at += klen as usize;
            let Some(Some(ep)) = Self::read_ep(payload, &mut at) else {
                return false;
            };
            chr.push((key, ep));
        }
        if self.fs.is_none() {
            self.fs = fs;
        }
        if self.fat.is_none() {
            self.fat = fat;
        }
        for (key, ep) in chr {
            self.chr.entry(key).or_insert(ep);
        }
        ctx.metrics().incr("vfs.mounts_restored");
        true
    }

    /// Quiescent-point save of the mount table.
    fn maybe_save(&mut self, ctx: &mut Ctx<'_>) {
        if !self.dirty {
            return;
        }
        match self.ckpt.as_ref() {
            Some(ckpt) if ckpt.ready() => {}
            Some(_) => return,
            None => {
                self.dirty = false;
                return;
            }
        }
        let payload = self.encode_mounts();
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.save(ctx, payload);
        }
        self.dirty = false;
    }

    /// Sends a client-facing reply through the injected-garble filter.
    fn client_reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        let msg = if self.fault.garbling() {
            ctx.metrics().incr("vfs.garbled_replies");
            garble_message(msg)
        } else {
            msg
        };
        let _ = ctx.reply(call, msg);
    }

    /// Additionally mounts a FAT server (discovered under `fat_key`) at
    /// the `/fat/` prefix (builder style).
    pub fn with_fat(mut self, fat_key: &str) -> Self {
        self.fat_key = Some(fat_key.to_string());
        self
    }

    fn ds_check(&mut self, ctx: &mut Ctx<'_>) {
        if self.check_call.is_none() {
            self.check_call = ctx.sendrec(self.ds, Message::new(ds::CHECK)).ok();
        }
    }

    fn device_key(path: &str) -> Option<&'static str> {
        DEV_TABLE
            .iter()
            .find(|(dev, _)| *dev == path)
            .map(|(_, key)| *key)
    }

    fn fail(&mut self, ctx: &mut Ctx<'_>, call: CallId, st: u64, driver_died: bool) {
        self.fail_wal(ctx, call, st, driver_died, 0);
    }

    fn fail_wal(
        &mut self,
        ctx: &mut Ctx<'_>,
        call: CallId,
        st: u64,
        driver_died: bool,
        wal_seq: u64,
    ) {
        if wal_seq != 0 {
            ctx.metrics().incr("vfs.ckpt_aborted_requests");
        }
        self.client_reply(
            ctx,
            call,
            Message::new(fs::DATA_REPLY)
                .with_param(0, st)
                .with_param(DRIVER_DIED_PARAM, u64::from(driver_died))
                .with_param(wal_params::ACK_SEQ, wal_seq),
        );
    }

    /// Forwards to a file server, recording the accused identity so the
    /// reply can be vetted against the fs protocol.
    fn forward(
        &mut self,
        ctx: &mut Ctx<'_>,
        fs_name: &str,
        dst: Endpoint,
        client: CallId,
        msg: Message,
    ) {
        let accused = Some((fs_name.to_string(), dst));
        self.forward_vetted(ctx, dst, client, msg, None, accused);
    }

    /// Forwards to a char driver, recording the sentinel expectation its
    /// reply will be vetted against.
    fn forward_dev(
        &mut self,
        ctx: &mut Ctx<'_>,
        key: &'static str,
        drv: Endpoint,
        client: CallId,
        msg: Message,
    ) {
        let exp = SentinelExpect {
            key,
            driver: drv,
            kind: msg.mtype,
            len: match msg.mtype {
                cdev::READ => msg.param(0) as usize,
                _ => msg.data.len(),
            },
            sum: match msg.mtype {
                cdev::WRITE => Some(byte_sum(&msg.data)),
                _ => None,
            },
        };
        self.forward_vetted(ctx, drv, client, msg, Some(exp), None);
    }

    fn forward_vetted(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: Endpoint,
        client: CallId,
        msg: Message,
        sentinel: Option<SentinelExpect>,
        fs_accused: Option<(String, Endpoint)>,
    ) {
        let wal_seq = msg.param(wal_params::REQ_SEQ);
        match ctx.sendrec(dst, msg) {
            Ok(call) => {
                self.forwards.insert(
                    call,
                    Forward {
                        client,
                        wal_seq,
                        sentinel,
                        fs_accused,
                    },
                );
            }
            Err(_) => self.fail_wal(ctx, client, status::EIO, true, wal_seq),
        }
    }

    /// Files a sentinel complaint with RS about a char driver.
    fn complain(&mut self, ctx: &mut Ctx<'_>, exp: &SentinelExpect, kind: u32, why: &str) {
        self.complain_named(ctx, exp.key, exp.driver, kind, why);
    }

    /// Files a typed complaint with RS against any accused component —
    /// char drivers and sibling servers go through the same arbiter.
    fn complain_named(
        &mut self,
        ctx: &mut Ctx<'_>,
        name: &str,
        accused: Endpoint,
        kind: u32,
        why: &str,
    ) {
        ctx.trace(TraceLevel::Warn, format!("complaining about {name}: {why}"));
        ctx.metrics().incr("vfs.complaints");
        ctx.metrics()
            .incr(&format!("sentinel.vfs.{}", evidence::name(kind)));
        let (slot, generation) = pack_endpoint(accused);
        let _ = ctx.sendrec(
            self.rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(kind))
                .with_param(1, slot)
                .with_param(2, generation)
                .with_data(name.as_bytes().to_vec()),
        );
    }

    fn route(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: Message) {
        // Character-device traffic carries the device path in OPEN; data
        // requests carry the resolved key in params[7] (set by the app
        // library in `phoenix::apps`), or the message is addressed to the
        // file server.
        match msg.mtype {
            fs::OPEN => {
                let path = String::from_utf8_lossy(&msg.data).to_string();
                if let Some(key) = Self::device_key(&path) {
                    match self.chr.get(key).copied() {
                        Some(drv) => {
                            self.forward_dev(ctx, key, drv, call, Message::new(cdev::OPEN));
                        }
                        None => self.fail(ctx, call, status::ENODEV, false),
                    }
                } else if let Some(name) = path.strip_prefix("/fat/") {
                    // The FAT mount (Fig. 5's second file server).
                    match self.fat {
                        Some(fat) => {
                            let fwd = Message::new(fs::OPEN)
                                .with_param(7, 1) // fs id 1 = fat
                                .with_data(name.as_bytes().to_vec());
                            let fat_name = self.fat_key.clone().unwrap_or_default();
                            self.forward(ctx, &fat_name, fat, call, fwd);
                        }
                        None => self.fail(ctx, call, status::ENODEV, false),
                    }
                } else {
                    match self.fs {
                        Some(fsrv) => {
                            let fs_name = self.fs_key.clone();
                            self.forward(ctx, &fs_name, fsrv, call, msg);
                        }
                        None => self.waiting_fs.push((call, msg)),
                    }
                }
            }
            fs::READ | fs::WRITE => {
                // params[7]: which file server the handle belongs to
                // (0 = root/MFS, 1 = the FAT mount).
                let fat_handle = msg.param(7) == 1;
                let dst = if fat_handle { self.fat } else { self.fs };
                match dst {
                    Some(fsrv) => {
                        let fs_name = if fat_handle {
                            self.fat_key.clone().unwrap_or_default()
                        } else {
                            self.fs_key.clone()
                        };
                        self.forward(ctx, &fs_name, fsrv, call, msg);
                    }
                    None => self.waiting_fs.push((call, msg)),
                }
            }
            cdev::WRITE
            | cdev::READ
            | cdev::BURN_START
            | cdev::BURN_CHUNK
            | cdev::BURN_FINALIZE => {
                // params[7] carries the device index into DEV_TABLE.
                let Some((_, key)) = DEV_TABLE.get(msg.param(7) as usize) else {
                    self.fail(ctx, call, status::EINVAL, false);
                    return;
                };
                match self.chr.get(*key).copied() {
                    Some(drv) => self.forward_dev(ctx, key, drv, call, msg),
                    None => self.fail(ctx, call, status::ENODEV, false),
                }
            }
            _ => self.fail(ctx, call, status::EINVAL, false),
        }
    }
}

impl Process for Vfs {
    // analyze:recovery-root
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match self.fault.poll() {
            FaultAction::Crash => {
                ctx.metrics().incr("vfs.injected_crash");
                ctx.panic("injected server defect: wild store");
                return;
            }
            FaultAction::Stall => {
                ctx.metrics().incr("vfs.stalled_events");
                return;
            }
            FaultAction::Garble | FaultAction::None => {}
        }
        self.dispatch(ctx, event);
        self.maybe_save(ctx);
    }
}

impl Vfs {
    fn dispatch(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let mut pats = vec![self.fs_key.clone(), "chr.*".to_string()];
                if let Some(fat) = &self.fat_key {
                    pats.push(fat.clone());
                }
                for pat in pats {
                    let _ = ctx.sendrec(
                        self.ds,
                        Message::new(ds::SUBSCRIBE).with_data(pat.into_bytes()),
                    );
                }
            }
            ProcEvent::Notify { from } if from == self.ds => self.ds_check(ctx),
            ProcEvent::Request { call, msg } => {
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return;
                    }
                }
                self.route(ctx, call, msg);
            }
            ProcEvent::Reply { call, result } => {
                let ckpt_outcome = match self.ckpt.as_mut() {
                    Some(ckpt) => ckpt.on_reply(ctx, call, &result),
                    None => None,
                };
                if let Some((restore, parked)) = ckpt_outcome {
                    if let RestoreEvent::Restored(snap) = restore {
                        if !self.apply_mounts(ctx, &snap.payload) {
                            ctx.metrics().incr("vfs.mounts_restore_garbage");
                        }
                    }
                    for (parked_call, parked_msg) in parked {
                        self.route(ctx, parked_call, parked_msg);
                    }
                    return;
                }
                if Some(call) == self.check_call {
                    self.check_call = None;
                    if let Ok(reply) = result {
                        if reply.mtype == ds::CHECK_REPLY && reply.param(0) == 0 {
                            let key = String::from_utf8_lossy(&reply.data).to_string();
                            let ep = unpack_endpoint(reply.param(1), reply.param(2));
                            // Episode behind this update (0 = boot publish).
                            let rid = RecoveryId::from_wire(reply.param(3));
                            let parent = SpanId::from_wire(reply.param(4));
                            if key == self.fs_key {
                                let rebound = self.fs.is_some_and(|old| old != ep);
                                if self.fs != Some(ep) {
                                    self.dirty = true;
                                }
                                self.fs = Some(ep);
                                let parked = std::mem::take(&mut self.waiting_fs);
                                if rebound || !parked.is_empty() {
                                    let ev = ctx
                                        .event(
                                            TraceLevel::Info,
                                            format!(
                                                "file server {key} -> {ep}; {} parked requests",
                                                parked.len()
                                            ),
                                        )
                                        .with_field("ev", "resume")
                                        .with_field("key", key.as_str())
                                        .with_field("parked", parked.len() as u64)
                                        .in_recovery_opt(rid)
                                        .with_parent_opt(parent);
                                    ctx.trace_event(ev);
                                }
                                for (c, m) in parked {
                                    let fs_name = self.fs_key.clone();
                                    self.forward(ctx, &fs_name, ep, c, m);
                                }
                            } else if Some(&key) == self.fat_key.as_ref() {
                                if self.fat != Some(ep) {
                                    self.dirty = true;
                                }
                                self.fat = Some(ep);
                            } else if key.starts_with("chr.") {
                                let rebound = self.chr.get(&key).is_some_and(|&old| old != ep);
                                if self.chr.get(&key) != Some(&ep) {
                                    self.dirty = true;
                                }
                                let ev = ctx
                                    .event(TraceLevel::Info, format!("char driver {key} -> {ep}"))
                                    .with_field(
                                        "ev",
                                        if rebound { "reintegrate" } else { "resume" },
                                    )
                                    .with_field("key", key.as_str())
                                    .in_recovery_opt(rid)
                                    .with_parent_opt(parent);
                                ctx.trace_event(ev);
                                self.chr.insert(key, ep);
                            }
                            self.ds_check(ctx);
                        }
                    }
                    return;
                }
                // [recovery:begin]
                let Some(fwd) = self.forwards.remove(&call) else {
                    return; // subscribe acks etc.
                };
                match result {
                    Ok(mut reply) => {
                        if let Some(exp) = fwd.sentinel {
                            if let Some((kind, why)) = vet_reply(&exp, &reply) {
                                // Protocol violation: complain to RS and
                                // push an explicit error to the client
                                // rather than relaying garbage. The
                                // driver-died flag is set so recovery-
                                // aware clients treat the suspect driver
                                // like a dead one and redo the work.
                                self.complain(ctx, &exp, kind, why);
                                self.fail_wal(ctx, fwd.client, status::EIO, true, fwd.wal_seq);
                                return;
                            }
                            // The checksum echo is a VFS<->driver protocol
                            // detail; strip it so the client-visible slot
                            // keeps its driver-died-flag meaning.
                            reply.params[DRIVER_DIED_PARAM] = 0;
                        } else if let Some((name, accused)) = fwd.fs_accused {
                            // File-server forward: a reply of the wrong
                            // type means the sibling server's reply path
                            // computes garbage — a fail-silent server
                            // defect. Complain (high-confidence evidence)
                            // and fail the client so it redoes the work
                            // against the replacement incarnation.
                            if reply.mtype != fs::OPEN_REPLY && reply.mtype != fs::DATA_REPLY {
                                self.complain_named(
                                    ctx,
                                    &name,
                                    accused,
                                    evidence::BAD_REPLY,
                                    "wrong fs reply type",
                                );
                                self.fail_wal(ctx, fwd.client, status::EIO, true, fwd.wal_seq);
                                return;
                            }
                        }
                        self.client_reply(ctx, fwd.client, reply);
                    }
                    Err(_) => {
                        // §6.3: the char driver (or FS) died mid-request;
                        // push the error to the application.
                        ctx.metrics().incr("vfs.driver_died_errors");
                        self.fail_wal(ctx, fwd.client, status::EIO, true, fwd.wal_seq);
                    }
                }
                // [recovery:end]
            }
            _ => {}
        }
    }
}
