//! Recovery-episode timeline analysis.
//!
//! Folds a structured trace (see [`crate::trace`]) into per-episode phase
//! timings, mirroring the paper's recovery-time decomposition (§7.1):
//!
//! * **detection** — the component died (kernel `death` event) until the
//!   reincarnation server noticed the defect (`defect` event). For defects
//!   the RS itself initiates (missed heartbeats, complaints) the kill it
//!   issues is the earliest observable origin, so detection measures the
//!   kernel-exit→SIGCHLD delivery path; the preceding silent-failure window
//!   is unobservable by construction.
//! * **repair** — defect noticed until the fresh incarnation is alive
//!   (`alive` event: policy ran, exec completed, process initialized).
//! * **reintegration** — the data store published the new endpoint
//!   (`publish` event) until the last dependent resumed (INET re-init,
//!   VFS/MFS pending-I/O reissue); zero when nothing depends on the
//!   restarted component.
//!
//! The fold keys off [`RecoveryId`] correlation tokens and conventional
//! `ev` fields, never off message text, so the analyzer is robust to
//! wording changes. Under chaos the correlation token travels inside IPC
//! messages and can be bit-flipped by a corrupting fabric; the fold
//! therefore tolerates events with unknown ids (they open a skeleton
//! episode that simply stays incomplete) and never panics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::{RecoveryId, TraceEvent};

/// Conventional values of the `ev` field recognized by the fold.
pub mod kind {
    /// Kernel: a process died (fields: `proc`, `ep`, `reason`).
    pub const DEATH: &str = "death";
    /// RS: defect detected, episode opens (fields: `service`, `class`).
    pub const DEFECT: &str = "defect";
    /// RS: restart scheduled by policy (field: `delay_us`).
    pub const RESTART: &str = "restart";
    /// RS: fresh incarnation exec'd (field: `service`).
    pub const EXEC: &str = "exec";
    /// RS: fresh incarnation alive and published (fields: `service`, `ep`).
    pub const ALIVE: &str = "alive";
    /// DS: new endpoint published to subscribers (fields: `key`, `ep`).
    pub const PUBLISH: &str = "publish";
    /// Dependent server: begins reintegrating the new endpoint.
    pub const REINTEGRATE: &str = "reintegrate";
    /// Dependent server: fully resumed (I/O reissued, driver re-inited).
    pub const RESUME: &str = "resume";
    /// RS: escalation ladder ended in give-up; episode is terminal.
    pub const GAVE_UP: &str = "gave-up";
    /// Driver: pulled its last checkpoint from DS (fields: `seq`,
    /// `watermark`).
    pub const RESTORE: &str = "restore";
    /// Driver: caller-held log replayed past the restored watermark
    /// (fields: `offset`, `dup_bytes`).
    pub const REPLAY: &str = "replay";
}

/// Counter-name prefixes of the fail-silent detection machinery:
/// `sentinel.*` (per-server protocol-sentinel evidence) and
/// `rs.complaints.*` (RS complaint-arbitration outcomes).
pub const SENTINEL_PREFIXES: [&str; 2] = ["sentinel.", "rs.complaints."];

/// Extracts the sentinel / complaint-arbitration counters from a
/// metrics registry, in sorted-name order — the observability surface
/// the fail-silent campaign reports alongside the recovery timeline
/// (and folds into its determinism digest next to `trace.dropped`).
pub fn sentinel_counters(metrics: &MetricsRegistry) -> Vec<(String, u64)> {
    metrics
        .counters()
        .filter(|(name, _)| SENTINEL_PREFIXES.iter().any(|p| name.starts_with(p)))
        .map(|(name, v)| (name.to_string(), v))
        .collect()
}

/// Phase labels used by request attribution (`slo.*` metric suffixes).
/// `STEADY` means the completion fell outside every episode window.
pub mod phase {
    /// Outside every recovery window.
    pub const STEADY: &str = "steady";
    /// Between the kernel-observed death and RS noticing the defect.
    pub const DETECT: &str = "detect";
    /// Between RS noticing and the fresh incarnation coming alive.
    pub const REPAIR: &str = "repair";
    /// Between the fresh incarnation and the last dependent resuming.
    pub const REINTEGRATE: &str = "reintegrate";
    /// Inside the caller-log replay window of a checkpointed dependent.
    pub const REPLAY: &str = "replay";

    /// All labels, steady first — the iteration order reports use.
    pub const ALL: [&str; 5] = [STEADY, DETECT, REPAIR, REINTEGRATE, REPLAY];
}

/// One client request as recorded by the load generator: issue and
/// completion instants on the virtual clock, payload size, and whether
/// it completed successfully. The attribution fold joins these against
/// the recovery timeline after the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// When the client issued the request (open-loop arrival).
    pub start: SimTime,
    /// When the reply (or failure) reached the client.
    pub end: SimTime,
    /// Payload bytes delivered (0 for failed requests).
    pub bytes: u64,
    /// `false` if the request errored or was abandoned.
    pub ok: bool,
}

/// One reconstructed recovery episode: every rid-tagged event between the
/// defect and the last dependent's resumption, reduced to phase anchors.
#[derive(Debug, Clone, PartialEq)]
pub struct Episode {
    /// The correlation token all events of this episode share.
    pub rid: RecoveryId,
    /// Service that failed (empty if only corrupted-id events were seen).
    pub service: String,
    /// Defect class as classified by RS (§5.1), e.g. `"exit"`.
    pub class: String,
    /// Kernel-observed death of the old incarnation, if recorded.
    pub defect_at: Option<SimTime>,
    /// RS noticed the defect (episode start).
    pub noticed_at: Option<SimTime>,
    /// Fresh incarnation alive (repair done).
    pub alive_at: Option<SimTime>,
    /// DS published the new endpoint.
    pub published_at: Option<SimTime>,
    /// Last dependent-server event (reintegration done).
    pub resumed_at: Option<SimTime>,
    /// Last caller-held-log replay past the restored checkpoint
    /// watermark (the `phoenix-ckpt` replay phase).
    pub replay_done_at: Option<SimTime>,
    /// RS gave up on this service; the episode is terminal but incomplete.
    pub gave_up: bool,
    /// A later episode for the same service opened before this one
    /// completed (e.g. the fresh incarnation was killed mid-recovery and
    /// became a new defect); phases are attributed to the successor.
    pub superseded: bool,
    /// Number of rid-tagged events folded into this episode.
    pub events: usize,
}

impl Episode {
    fn new(rid: RecoveryId) -> Self {
        Episode {
            rid,
            service: String::new(),
            class: String::new(),
            defect_at: None,
            noticed_at: None,
            alive_at: None,
            published_at: None,
            resumed_at: None,
            replay_done_at: None,
            gave_up: false,
            superseded: false,
            events: 0,
        }
    }

    /// Detection latency: kernel death → RS notices. Zero when the kernel
    /// death event was not observed (e.g. evicted from the ring).
    pub fn detection(&self) -> Option<SimDuration> {
        let noticed = self.noticed_at?;
        Some(noticed.since(self.defect_at.unwrap_or(noticed)))
    }

    /// Repair latency: RS notices → fresh incarnation alive.
    pub fn repair(&self) -> Option<SimDuration> {
        Some(self.alive_at?.since(self.noticed_at?))
    }

    /// Reintegration latency: DS publish → last dependent resumed. Zero
    /// when the restarted component has no dependents.
    pub fn reintegration(&self) -> Option<SimDuration> {
        let published = self.published_at?;
        Some(
            self.resumed_at
                .unwrap_or(published)
                .max(published)
                .since(published),
        )
    }

    /// Replay latency: DS publish → last caller-log replay past the
    /// restored watermark. `None` for episodes without checkpointed
    /// dependents.
    pub fn replay(&self) -> Option<SimDuration> {
        Some(self.replay_done_at?.since(self.published_at?))
    }

    /// End-to-end latency: kernel death (or RS notice) → last event.
    pub fn total(&self) -> Option<SimDuration> {
        let start = self.defect_at.or(self.noticed_at)?;
        let end = [
            self.noticed_at,
            self.alive_at,
            self.published_at,
            self.resumed_at,
            self.replay_done_at,
        ]
        .into_iter()
        .flatten()
        .fold(start, SimTime::max);
        Some(end.since(start))
    }

    /// `true` when all three phases have anchors: the defect was noticed,
    /// the service came back, and the new endpoint was published.
    pub fn complete(&self) -> bool {
        self.noticed_at.is_some() && self.alive_at.is_some() && self.published_at.is_some()
    }

    /// Phase windows of this episode as `(phase, start, end)` triples in
    /// *precedence* order for request attribution: a completion instant
    /// is matched against detection, repair, replay, then reintegration
    /// (replay overlaps the tail of reintegration and wins inside its
    /// window). Windows are half-open `[start, end)`: a request
    /// completing exactly when the last dependent resumed already sees
    /// the recovered system and counts as steady state.
    pub fn windows(&self) -> Vec<(&'static str, SimTime, SimTime)> {
        let Some(noticed) = self.noticed_at else {
            return Vec::new();
        };
        let start = self.defect_at.unwrap_or(noticed);
        let mut out = vec![(phase::DETECT, start, noticed)];
        let Some(alive) = self.alive_at else {
            return out;
        };
        out.push((phase::REPAIR, noticed, alive));
        if let (Some(published), Some(replay_done)) = (self.published_at, self.replay_done_at) {
            out.push((phase::REPLAY, published, replay_done));
        }
        let reint_end = [self.published_at, self.resumed_at, self.replay_done_at]
            .into_iter()
            .flatten()
            .fold(alive, SimTime::max);
        out.push((phase::REINTEGRATE, alive, reint_end));
        out
    }

    /// One human-readable summary line.
    pub fn render(&self) -> String {
        let phase = |d: Option<SimDuration>| match d {
            Some(d) => format!("{d}"),
            None => "-".to_string(),
        };
        let status = if self.complete() {
            "complete"
        } else if self.gave_up {
            "gave-up"
        } else if self.superseded {
            "superseded"
        } else {
            "incomplete"
        };
        format!(
            "{} {} [{}] detect={} repair={} reintegrate={} total={} ({status}, {} events)",
            self.rid,
            if self.service.is_empty() {
                "?"
            } else {
                &self.service
            },
            if self.class.is_empty() {
                "?"
            } else {
                &self.class
            },
            phase(self.detection()),
            phase(self.repair()),
            phase(self.reintegration()),
            phase(self.total()),
            self.events,
        )
    }
}

/// All episodes reconstructed from one trace, in episode-id order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// The reconstructed episodes, ordered by [`RecoveryId`].
    pub episodes: Vec<Episode>,
}

/// Folds a trace into a [`Timeline`]. Events must arrive oldest-first
/// (the order [`crate::trace::TraceRing::events`] yields).
// analyze:recovery-root
pub fn fold_timeline<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Timeline {
    let mut episodes: BTreeMap<u64, Episode> = BTreeMap::new();
    // Most recent kernel-observed death per process name, consumed by the
    // next defect event for that service so a stale death can't be
    // attributed to a later, unrelated episode.
    let mut last_death: BTreeMap<String, SimTime> = BTreeMap::new();
    for e in events {
        if e.kind() == Some(kind::DEATH) {
            if let Some(name) = e.field_str("proc") {
                last_death.insert(name.to_string(), e.at);
            }
            continue;
        }
        let Some(rid) = e.recovery else {
            continue;
        };
        let ep = episodes
            .entry(rid.as_u64())
            .or_insert_with(|| Episode::new(rid));
        ep.events += 1;
        match e.kind() {
            Some(kind::DEFECT) => {
                if let Some(service) = e.field_str("service") {
                    ep.service = service.to_string();
                    ep.defect_at = last_death.remove(service);
                }
                if let Some(class) = e.field_str("class") {
                    ep.class = class.to_string();
                }
                ep.noticed_at = Some(e.at);
            }
            Some(kind::ALIVE) => {
                ep.alive_at = Some(e.at);
            }
            Some(kind::PUBLISH) if e.component == "ds" => {
                if ep.published_at.is_none() {
                    ep.published_at = Some(e.at);
                }
            }
            Some(kind::GAVE_UP) => {
                ep.gave_up = true;
            }
            Some(kind::RESTORE) => {
                // A checkpointed driver pulling its snapshot is dependent
                // activity; it anchors resumption but not replay.
                ep.resumed_at = Some(ep.resumed_at.unwrap_or(e.at).max(e.at));
            }
            Some(kind::REPLAY) => {
                ep.replay_done_at = Some(ep.replay_done_at.unwrap_or(e.at).max(e.at));
                ep.resumed_at = Some(ep.resumed_at.unwrap_or(e.at).max(e.at));
            }
            _ => {
                // Any rid-tagged event from outside the recovery
                // infrastructure is a dependent reintegrating; the last
                // one marks the episode's resumption point.
                if e.component != "rs" && e.component != "ds" {
                    ep.resumed_at = Some(ep.resumed_at.unwrap_or(e.at).max(e.at));
                }
            }
        }
    }
    let mut episodes: Vec<Episode> = episodes.into_values().collect();
    // Supersede pass: an incomplete episode followed by a later episode
    // for the same service was subsumed by it (mid-recovery crash).
    let mut latest: BTreeMap<String, u64> = BTreeMap::new();
    for ep in episodes.iter().rev() {
        if ep.service.is_empty() {
            continue;
        }
        if !latest.contains_key(&ep.service) {
            latest.insert(ep.service.clone(), ep.rid.as_u64());
        }
    }
    for ep in &mut episodes {
        if !ep.complete()
            && !ep.gave_up
            && latest
                .get(&ep.service)
                .is_some_and(|&r| r > ep.rid.as_u64())
        {
            ep.superseded = true;
        }
    }
    Timeline { episodes }
}

impl Timeline {
    /// The episode with id `rid`, if reconstructed.
    pub fn episode(&self, rid: RecoveryId) -> Option<&Episode> {
        self.episodes.iter().find(|e| e.rid == rid)
    }

    /// Episodes for `service`, in id order.
    pub fn for_service<'a>(&'a self, service: &'a str) -> impl Iterator<Item = &'a Episode> {
        self.episodes.iter().filter(move |e| e.service == service)
    }

    /// Number of complete episodes.
    pub fn complete_count(&self) -> usize {
        self.episodes.iter().filter(|e| e.complete()).count()
    }

    /// Episodes that are neither complete nor accounted for (superseded by
    /// a successor or terminated by give-up). A non-empty result means the
    /// trace lost part of a recovery — the bench gates on this.
    pub fn unaccounted(&self) -> Vec<&Episode> {
        self.episodes
            .iter()
            .filter(|e| !e.complete() && !e.superseded && !e.gave_up)
            .collect()
    }

    /// Feeds per-phase histograms and episode counters into `metrics`.
    /// Histograms: `recovery.phase.{detect,repair,reintegrate,replay,total}`
    /// (seconds, from complete episodes; `replay` only for episodes with
    /// checkpointed dependents). Counters: `obs.episodes.*`.
    // analyze:recovery-root
    pub fn record_into(&self, metrics: &mut MetricsRegistry) {
        for ep in &self.episodes {
            metrics.incr("obs.episodes");
            if ep.superseded {
                metrics.incr("obs.episodes.superseded");
            }
            if ep.gave_up {
                metrics.incr("obs.episodes.gave_up");
            }
            if !ep.complete() {
                continue;
            }
            metrics.incr("obs.episodes.complete");
            if let Some(d) = ep.detection() {
                metrics.record_duration("recovery.phase.detect", d);
            }
            if let Some(d) = ep.repair() {
                metrics.record_duration("recovery.phase.repair", d);
            }
            if let Some(d) = ep.reintegration() {
                metrics.record_duration("recovery.phase.reintegrate", d);
            }
            if let Some(d) = ep.replay() {
                metrics.record_duration("recovery.phase.replay", d);
            }
            if let Some(d) = ep.total() {
                metrics.record_duration("recovery.phase.total", d);
            }
        }
    }

    /// Attributes a completion instant to a recovery phase, or to steady
    /// state when it falls outside every episode's windows. Episodes are
    /// scanned in id order and each episode's windows in precedence
    /// order ([`Episode::windows`]), so the attribution of any instant
    /// is a pure function of the timeline.
    // analyze:recovery-root
    pub fn attribute(&self, at: SimTime) -> (&'static str, Option<RecoveryId>) {
        for ep in &self.episodes {
            for (ph, start, end) in ep.windows() {
                if at >= start && at < end {
                    return (ph, Some(ep.rid));
                }
            }
        }
        (phase::STEADY, None)
    }

    /// Folds per-request latency records into `metrics`, attributing
    /// each completion to steady state or a recovery phase:
    ///
    /// * `slo.latency.{phase}` — [`crate::metrics::LogHistogram`] of
    ///   completion latencies in microseconds (successful requests);
    /// * `slo.requests.{phase}` / `slo.failed.{phase}` — completion and
    ///   failure counts;
    /// * `slo.goodput_bytes.{phase}` — payload bytes delivered;
    /// * `slo.phase_us.{phase}` — total wall (virtual) time spent in the
    ///   phase across all episodes, with `steady` making the span sum to
    ///   the full `[first start, last end]` request span — the
    ///   denominator for goodput rates;
    /// * `slo.hol_depth.{phase}` — maximum head-of-line depth (requests
    ///   in flight) observed while the system was in the phase.
    // analyze:recovery-root
    pub fn record_requests_into(&self, requests: &[RequestRecord], metrics: &mut MetricsRegistry) {
        if requests.is_empty() {
            return;
        }
        for r in requests {
            let (ph, _) = self.attribute(r.end);
            metrics.incr(&format!("slo.requests.{ph}"));
            if r.ok {
                metrics
                    .log_histogram_mut(&format!("slo.latency.{ph}"))
                    .record_duration(r.end.since(r.start));
                metrics.add(&format!("slo.goodput_bytes.{ph}"), r.bytes);
            } else {
                metrics.incr(&format!("slo.failed.{ph}"));
            }
        }
        // Phase wall-time: clip every episode window to the request span
        // and charge the remainder to steady state. Windows of distinct
        // episodes do not overlap in practice (one recovery at a time per
        // service, and concurrent services' windows are charged to both —
        // acceptable for a denominator that only feeds rates).
        let span_start = requests
            .iter()
            .map(|r| r.start)
            .min()
            .unwrap_or(SimTime::ZERO);
        let span_end = requests.iter().map(|r| r.end).max().unwrap_or(span_start);
        let span_us = span_end.since(span_start).as_micros();
        let mut recovery_us = 0u64;
        for ep in &self.episodes {
            let mut charged_until = SimTime::ZERO;
            for (ph, start, end) in ep.windows() {
                let s = start.max(span_start).max(charged_until);
                let e = if end < span_end { end } else { span_end };
                if e > s {
                    let us = e.since(s).as_micros();
                    metrics.add(&format!("slo.phase_us.{ph}"), us);
                    recovery_us += us;
                    charged_until = e;
                }
            }
        }
        metrics.add("slo.phase_us.steady", span_us.saturating_sub(recovery_us));
        // Head-of-line depth: sweep arrivals/completions in time order
        // (completions first at equal instants) and record the peak
        // in-flight depth seen within each phase.
        let mut edges: Vec<(SimTime, i64)> = Vec::with_capacity(requests.len() * 2);
        for r in requests {
            edges.push((r.start, 1));
            edges.push((r.end, -1));
        }
        edges.sort_by_key(|&(t, delta)| (t, delta));
        let mut depth = 0i64;
        let mut peak: BTreeMap<&'static str, i64> = BTreeMap::new();
        for (t, delta) in edges {
            depth += delta;
            if delta > 0 {
                let (ph, _) = self.attribute(t);
                let entry = peak.entry(ph).or_default();
                *entry = (*entry).max(depth);
            }
        }
        for (ph, d) in peak {
            metrics.set(&format!("slo.hol_depth.{ph}"), d.max(0) as u64);
        }
    }

    /// Renders every episode, one line each.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ep in &self.episodes {
            let _ = writeln!(out, "{}", ep.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceLevel, TraceRing};

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn ev(at: u64, comp: &str, kind_: &str, rid: Option<u64>) -> TraceEvent {
        let mut e = TraceEvent::new(t(at), TraceLevel::Info, comp, kind_).with_field("ev", kind_);
        if let Some(r) = rid {
            e = e.in_recovery(RecoveryId(r));
        }
        e
    }

    fn full_episode() -> Vec<TraceEvent> {
        vec![
            ev(100, "kernel", kind::DEATH, None)
                .with_field("proc", "eth.rtl8139")
                .with_field("reason", "exit"),
            ev(110, "rs", kind::DEFECT, Some(1))
                .with_field("service", "eth.rtl8139")
                .with_field("class", "exit"),
            ev(120, "rs", kind::RESTART, Some(1)),
            ev(500, "rs", kind::ALIVE, Some(1)).with_field("service", "eth.rtl8139"),
            ev(510, "ds", kind::PUBLISH, Some(1)).with_field("key", "eth.rtl8139"),
            ev(520, "inet", kind::REINTEGRATE, Some(1)),
            ev(900, "inet", kind::RESUME, Some(1)),
        ]
    }

    #[test]
    fn folds_one_complete_episode_with_phases() {
        let events = full_episode();
        let tl = fold_timeline(events.iter());
        assert_eq!(tl.episodes.len(), 1);
        let ep = &tl.episodes[0];
        assert!(ep.complete(), "{}", ep.render());
        assert_eq!(ep.service, "eth.rtl8139");
        assert_eq!(ep.class, "exit");
        assert_eq!(ep.detection(), Some(SimDuration::from_micros(10)));
        assert_eq!(ep.repair(), Some(SimDuration::from_micros(390)));
        assert_eq!(ep.reintegration(), Some(SimDuration::from_micros(390)));
        assert_eq!(ep.total(), Some(SimDuration::from_micros(800)));
        assert!(tl.unaccounted().is_empty());
    }

    #[test]
    fn missing_death_event_gives_zero_detection() {
        let mut events = full_episode();
        events.remove(0);
        let tl = fold_timeline(events.iter());
        let ep = &tl.episodes[0];
        assert_eq!(ep.detection(), Some(SimDuration::ZERO));
        assert!(ep.complete());
    }

    #[test]
    fn no_dependents_means_zero_reintegration() {
        let events = [
            ev(10, "rs", kind::DEFECT, Some(2)).with_field("service", "chr.printer"),
            ev(50, "rs", kind::ALIVE, Some(2)),
            ev(55, "ds", kind::PUBLISH, Some(2)),
        ];
        let tl = fold_timeline(events.iter());
        let ep = &tl.episodes[0];
        assert!(ep.complete());
        assert_eq!(ep.reintegration(), Some(SimDuration::ZERO));
    }

    #[test]
    fn mid_recovery_crash_marks_predecessor_superseded() {
        let events = [
            ev(10, "rs", kind::DEFECT, Some(1)).with_field("service", "eth"),
            // The fresh incarnation dies before coming alive: a new
            // episode opens for the same service.
            ev(30, "rs", kind::DEFECT, Some(2)).with_field("service", "eth"),
            ev(90, "rs", kind::ALIVE, Some(2)),
            ev(95, "ds", kind::PUBLISH, Some(2)),
        ];
        let tl = fold_timeline(events.iter());
        assert_eq!(tl.episodes.len(), 2);
        assert!(tl.episodes[0].superseded);
        assert!(!tl.episodes[0].complete());
        assert!(tl.episodes[1].complete());
        assert!(tl.unaccounted().is_empty());
        assert_eq!(tl.complete_count(), 1);
    }

    #[test]
    fn gave_up_episode_is_terminal_not_unaccounted() {
        let events = [
            ev(10, "rs", kind::DEFECT, Some(1)).with_field("service", "eth"),
            ev(20, "rs", kind::GAVE_UP, Some(1)),
        ];
        let tl = fold_timeline(events.iter());
        assert!(tl.episodes[0].gave_up);
        assert!(tl.unaccounted().is_empty());
    }

    #[test]
    fn truly_incomplete_episode_is_unaccounted() {
        let events = [ev(10, "rs", kind::DEFECT, Some(1)).with_field("service", "eth")];
        let tl = fold_timeline(events.iter());
        assert_eq!(tl.unaccounted().len(), 1);
    }

    #[test]
    fn corrupted_rid_opens_skeleton_episode_without_panic() {
        // A bit-flipped correlation token arrives on a dependent's event:
        // the fold keeps it as an unknown, incomplete episode.
        let mut events = full_episode();
        events.push(ev(950, "inet", kind::RESUME, Some(0xdead_beef)));
        let tl = fold_timeline(events.iter());
        assert_eq!(tl.episodes.len(), 2);
        let skel = tl.episode(RecoveryId(0xdead_beef)).unwrap();
        assert!(!skel.complete());
        assert!(skel.service.is_empty());
    }

    #[test]
    fn record_into_fills_histograms_and_counters() {
        let events = full_episode();
        let tl = fold_timeline(events.iter());
        let mut m = MetricsRegistry::new();
        tl.record_into(&mut m);
        assert_eq!(m.counter("obs.episodes"), 1);
        assert_eq!(m.counter("obs.episodes.complete"), 1);
        let h = m.histogram_mut("recovery.phase.repair");
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_duration(), Some(SimDuration::from_micros(390)));
    }

    #[test]
    fn sentinel_counters_filters_the_two_families_sorted() {
        let mut m = MetricsRegistry::new();
        m.incr("sentinel.mfs.crc-mismatch");
        m.add("rs.complaints.accepted", 3);
        m.incr("rs.defect.complaint"); // not part of the surface
        m.incr("inet.garbled_frames"); // not part of the surface
        let got = sentinel_counters(&m);
        assert_eq!(
            got,
            vec![
                ("rs.complaints.accepted".to_string(), 3),
                ("sentinel.mfs.crc-mismatch".to_string(), 1),
            ]
        );
    }

    #[test]
    fn windows_partition_an_episode_in_precedence_order() {
        let tl = fold_timeline(full_episode().iter());
        let ep = &tl.episodes[0];
        let w = ep.windows();
        // detection [100,110), repair [110,500), reintegrate [500,900).
        assert_eq!(w[0], (phase::DETECT, t(100), t(110)));
        assert_eq!(w[1], (phase::REPAIR, t(110), t(500)));
        assert_eq!(*w.last().unwrap(), (phase::REINTEGRATE, t(500), t(900)));
    }

    #[test]
    fn attribute_maps_instants_to_phases() {
        let tl = fold_timeline(full_episode().iter());
        assert_eq!(tl.attribute(t(50)), (phase::STEADY, None));
        assert_eq!(tl.attribute(t(100)), (phase::DETECT, Some(RecoveryId(1))));
        assert_eq!(tl.attribute(t(109)), (phase::DETECT, Some(RecoveryId(1))));
        assert_eq!(tl.attribute(t(110)), (phase::REPAIR, Some(RecoveryId(1))));
        assert_eq!(tl.attribute(t(499)), (phase::REPAIR, Some(RecoveryId(1))));
        assert_eq!(
            tl.attribute(t(500)),
            (phase::REINTEGRATE, Some(RecoveryId(1)))
        );
        // The instant the last dependent resumed is already steady state.
        assert_eq!(tl.attribute(t(900)), (phase::STEADY, None));
        assert_eq!(tl.attribute(t(5000)), (phase::STEADY, None));
    }

    #[test]
    fn attribute_prefers_replay_inside_its_window() {
        let mut events = full_episode();
        events.push(
            ev(700, "drv", kind::REPLAY, Some(1))
                .with_field("offset", 42u64)
                .with_field("dup_bytes", 0u64),
        );
        let tl = fold_timeline(events.iter());
        // Replay window [510,700) wins over reintegrate [500,900).
        assert_eq!(
            tl.attribute(t(505)),
            (phase::REINTEGRATE, Some(RecoveryId(1)))
        );
        assert_eq!(tl.attribute(t(600)), (phase::REPLAY, Some(RecoveryId(1))));
        assert_eq!(
            tl.attribute(t(750)),
            (phase::REINTEGRATE, Some(RecoveryId(1)))
        );
    }

    #[test]
    fn request_fold_attributes_latency_goodput_and_hol() {
        let tl = fold_timeline(full_episode().iter());
        let reqs = [
            // Steady-state completion before the defect.
            RequestRecord {
                start: t(10),
                end: t(50),
                bytes: 100,
                ok: true,
            },
            // Issued steady, completes mid-repair (head-of-line victim).
            RequestRecord {
                start: t(90),
                end: t(200),
                bytes: 100,
                ok: true,
            },
            // Failed during repair.
            RequestRecord {
                start: t(120),
                end: t(130),
                bytes: 0,
                ok: false,
            },
            // Completes during reintegration.
            RequestRecord {
                start: t(480),
                end: t(600),
                bytes: 300,
                ok: true,
            },
            // Steady again after resumption.
            RequestRecord {
                start: t(900),
                end: t(950),
                bytes: 100,
                ok: true,
            },
        ];
        let mut m = MetricsRegistry::new();
        tl.record_requests_into(&reqs, &mut m);
        assert_eq!(m.counter("slo.requests.steady"), 2);
        assert_eq!(m.counter("slo.requests.repair"), 2);
        assert_eq!(m.counter("slo.requests.reintegrate"), 1);
        assert_eq!(m.counter("slo.failed.repair"), 1);
        assert_eq!(m.counter("slo.goodput_bytes.steady"), 200);
        assert_eq!(m.counter("slo.goodput_bytes.repair"), 100);
        assert_eq!(m.counter("slo.goodput_bytes.reintegrate"), 300);
        let h = m.log_histogram("slo.latency.repair").unwrap();
        assert_eq!(h.count(), 1, "failed request records no latency");
        assert_eq!(h.max(), Some(110));
        // Phase time partitions the request span [10, 950]:
        // detect 10, repair 390, reintegrate 400, steady = 940-800 = 140.
        assert_eq!(m.counter("slo.phase_us.detect"), 10);
        assert_eq!(m.counter("slo.phase_us.repair"), 390);
        assert_eq!(m.counter("slo.phase_us.reintegrate"), 400);
        assert_eq!(m.counter("slo.phase_us.steady"), 140);
        // HOL: at t=120 the repair-phase arrival sees 2 in flight.
        assert_eq!(m.counter("slo.hol_depth.repair"), 2);
        assert_eq!(m.counter("slo.hol_depth.steady"), 1);
    }

    #[test]
    fn request_fold_on_empty_input_is_a_noop() {
        let tl = fold_timeline(full_episode().iter());
        let mut m = MetricsRegistry::new();
        tl.record_requests_into(&[], &mut m);
        assert_eq!(m.render_counters(), "");
    }

    #[test]
    fn folds_straight_from_a_ring() {
        let mut ring = TraceRing::new(64);
        for e in full_episode() {
            ring.emit_event(e);
        }
        let tl = fold_timeline(ring.events());
        assert_eq!(tl.complete_count(), 1);
        assert!(tl.render().contains("r1 eth.rtl8139 [exit]"));
    }
}
