//! The checkpoint store: the data-store-side record table.
//!
//! Pure data structure, embedded by the DS process (which authenticates
//! callers by their stable published name before touching it) and shared
//! with the host `Os` so tests and benches can inspect or tamper with
//! records. Keyed by `(owner name, key)`: the owner component of the key
//! is the *stable* name, so a snapshot written by one incarnation is
//! found by the next.

use std::collections::BTreeMap;

use crate::snapshot::Snapshot;

/// One stored checkpoint record.
#[derive(Clone, Debug)]
pub struct StoredCheckpoint {
    /// Endpoint generation of the writing incarnation.
    pub incarnation: u32,
    /// Monotone per-key sequence of the record.
    pub seq: u64,
    /// The full snapshot wire frame (CRC re-verified on restore, so a
    /// record corrupted at rest is detected, not resumed from).
    pub wire: Vec<u8>,
    /// How many times this key has been written.
    pub saves: u64,
}

/// Outcome of a save attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaveOutcome {
    /// Record accepted.
    Stored {
        /// Sequence now on record.
        seq: u64,
    },
    /// Rejected: the offered snapshot is older than the record — either
    /// a lower incarnation (a ghost of a replaced driver) or a replayed
    /// sequence within the same incarnation.
    Stale {
        /// Incarnation already on record.
        stored_incarnation: u32,
        /// Sequence already on record.
        stored_seq: u64,
    },
    /// The offered frame failed validation.
    Corrupt,
}

/// Outcome of a restore attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// Valid record found.
    Found(Snapshot),
    /// Nothing stored under this key.
    Missing,
    /// A record exists but fails CRC validation.
    Corrupt,
}

/// The record table plus rejection counters.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    records: BTreeMap<(String, String), StoredCheckpoint>,
    /// Saves rejected as stale (ghost incarnations, replayed seqs).
    pub stale_rejected: u64,
    /// Saves or restores rejected on CRC/frame validation.
    pub corrupt_rejected: u64,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Validates and stores a snapshot frame for `(owner, key)`.
    // analyze:recovery-root
    pub fn save(&mut self, owner: &str, key: &str, wire: &[u8]) -> SaveOutcome {
        let Ok(snap) = Snapshot::decode(wire) else {
            self.corrupt_rejected += 1;
            return SaveOutcome::Corrupt;
        };
        let slot = (owner.to_string(), key.to_string());
        if let Some(existing) = self.records.get(&slot) {
            let ghost = snap.incarnation < existing.incarnation;
            let replayed = snap.incarnation == existing.incarnation && snap.seq <= existing.seq;
            if ghost || replayed {
                self.stale_rejected += 1;
                return SaveOutcome::Stale {
                    stored_incarnation: existing.incarnation,
                    stored_seq: existing.seq,
                };
            }
        }
        let saves = self.records.get(&slot).map_or(0, |r| r.saves) + 1;
        let seq = snap.seq;
        self.records.insert(
            slot,
            StoredCheckpoint {
                incarnation: snap.incarnation,
                seq,
                wire: wire.to_vec(),
                saves,
            },
        );
        SaveOutcome::Stored { seq }
    }

    /// Fetches and re-validates the record for `(owner, key)`.
    // analyze:recovery-root
    pub fn restore(&mut self, owner: &str, key: &str) -> RestoreOutcome {
        let slot = (owner.to_string(), key.to_string());
        let Some(record) = self.records.get(&slot) else {
            return RestoreOutcome::Missing;
        };
        match Snapshot::decode(&record.wire) {
            Ok(snap) => RestoreOutcome::Found(snap),
            Err(_) => {
                self.corrupt_rejected += 1;
                RestoreOutcome::Corrupt
            }
        }
    }

    /// The raw record for inspection (tests, benches).
    pub fn get(&self, owner: &str, key: &str) -> Option<&StoredCheckpoint> {
        self.records.get(&(owner.to_string(), key.to_string()))
    }

    /// Inserts a raw record, bypassing validation — fault injection for
    /// tests (e.g. simulating corruption at rest).
    // analyze:recovery-root
    pub fn insert_raw(
        &mut self,
        owner: &str,
        key: &str,
        incarnation: u32,
        seq: u64,
        wire: Vec<u8>,
    ) {
        self.records.insert(
            (owner.to_string(), key.to_string()),
            StoredCheckpoint {
                incarnation,
                seq,
                wire,
                saves: 0,
            },
        );
    }

    /// Exports every record as `(owner, key, wire frame)` in key order —
    /// the unit the fleet layer replicates to a peer-held node snapshot.
    pub fn export(&self) -> Vec<(String, String, Vec<u8>)> {
        self.records
            .iter()
            .map(|((o, k), r)| (o.clone(), k.clone(), r.wire.clone()))
            .collect()
    }

    /// Adopts a record exported from another store into this one —
    /// the re-seed path when a reborn node's state is restored from a
    /// peer-held snapshot (ReHype's recover-the-recoverer).
    ///
    /// The snapshot is re-framed with **incarnation 0** ("adopted from a
    /// peer; any live incarnation supersedes it"): the exporting node's
    /// incarnation numbers are meaningless on the reborn node, whose
    /// drivers restart at fresh (low) endpoint generations — keeping the
    /// old tag would make the store reject the reborn drivers' first
    /// saves as ghosts. The per-key sequence is preserved so replay
    /// ordering survives. Returns `false` (and counts the rejection) for
    /// frames that fail CRC validation in transit.
    // analyze:recovery-root
    pub fn adopt(&mut self, owner: &str, key: &str, wire: &[u8]) -> bool {
        let Ok(snap) = Snapshot::decode(wire) else {
            self.corrupt_rejected += 1;
            return false;
        };
        let adopted = Snapshot::new(0, snap.seq, snap.payload);
        let seq = adopted.seq;
        self.records.insert(
            (owner.to_string(), key.to_string()),
            StoredCheckpoint {
                incarnation: 0,
                seq,
                wire: adopted.encode(),
                saves: 0,
            },
        );
        true
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Total bytes held at rest across all record frames — the
    /// `ds.snapshot_bytes` gauge source, so campaign digests surface
    /// checkpoint-store growth.
    pub fn total_bytes(&self) -> u64 {
        self.records.values().map(|r| r.wire.len() as u64).sum()
    }

    /// Size in bytes of the largest single record, with its `(owner, key)`
    /// slot — drives the campaign's per-snapshot cap warning.
    pub fn largest_record(&self) -> Option<(&str, &str, u64)> {
        self.records
            .iter()
            .max_by_key(|(_, r)| r.wire.len())
            .map(|((o, k), r)| (o.as_str(), k.as_str(), r.wire.len() as u64))
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(incarnation: u32, seq: u64, mark: u64) -> Vec<u8> {
        Snapshot::watermark(incarnation, seq, mark).encode()
    }

    #[test]
    fn save_then_restore_round_trips() {
        let mut store = CheckpointStore::new();
        assert_eq!(
            store.save("chr.printer", "printer", &wire(1, 1, 512)),
            SaveOutcome::Stored { seq: 1 }
        );
        match store.restore("chr.printer", "printer") {
            RestoreOutcome::Found(s) => assert_eq!(s.as_watermark(), Some(512)),
            other => panic!("expected Found, got {other:?}"),
        }
        assert_eq!(
            store.restore("chr.printer", "audio"),
            RestoreOutcome::Missing
        );
    }

    #[test]
    fn ghost_incarnation_cannot_clobber() {
        let mut store = CheckpointStore::new();
        store.save("chr.printer", "printer", &wire(3, 1, 4096));
        assert_eq!(
            store.save("chr.printer", "printer", &wire(2, 99, 0)),
            SaveOutcome::Stale {
                stored_incarnation: 3,
                stored_seq: 1
            }
        );
        assert_eq!(store.stale_rejected, 1);
        // The live record is untouched.
        match store.restore("chr.printer", "printer") {
            RestoreOutcome::Found(s) => {
                assert_eq!((s.incarnation, s.as_watermark()), (3, Some(4096)))
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn replayed_seq_within_incarnation_is_stale() {
        let mut store = CheckpointStore::new();
        store.save("chr.audio", "audio", &wire(1, 5, 100));
        assert!(matches!(
            store.save("chr.audio", "audio", &wire(1, 5, 200)),
            SaveOutcome::Stale { .. }
        ));
        // A fresh incarnation may restart its sequence.
        assert_eq!(
            store.save("chr.audio", "audio", &wire(2, 1, 300)),
            SaveOutcome::Stored { seq: 1 }
        );
    }

    #[test]
    fn corruption_at_rest_is_rejected_on_restore() {
        let mut store = CheckpointStore::new();
        let mut bad = wire(1, 1, 700);
        bad[10] ^= 0xFF;
        store.insert_raw("chr.kbd", "kbd", 1, 1, bad);
        assert_eq!(store.restore("chr.kbd", "kbd"), RestoreOutcome::Corrupt);
        assert_eq!(store.corrupt_rejected, 1);
    }

    #[test]
    fn occupancy_accounting() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.total_bytes(), 0);
        assert!(store.largest_record().is_none());
        let a = wire(1, 1, 10);
        let b = wire(1, 1, 20);
        store.save("chr.printer", "printer", &a);
        store.save("vfs", "session", &b);
        assert_eq!(store.total_bytes(), (a.len() + b.len()) as u64);
        let (owner, key, bytes) = store.largest_record().unwrap();
        assert!(bytes >= a.len().min(b.len()) as u64);
        assert!(!owner.is_empty() && !key.is_empty());
    }

    #[test]
    fn export_adopt_round_trip_clamps_incarnation() {
        let mut donor = CheckpointStore::new();
        donor.save("chr.printer", "printer", &wire(7, 3, 512));
        donor.save("chr.audio", "audio", &wire(2, 9, 100));

        let mut reborn = CheckpointStore::new();
        for (owner, key, frame) in donor.export() {
            assert!(reborn.adopt(&owner, &key, &frame));
        }
        assert_eq!(reborn.len(), 2);
        // Content survives; incarnation is clamped to 0 so the reborn
        // node's fresh driver incarnations (1, 2, ...) supersede it.
        match reborn.restore("chr.printer", "printer") {
            RestoreOutcome::Found(s) => {
                assert_eq!((s.incarnation, s.seq, s.as_watermark()), (0, 3, Some(512)));
            }
            other => panic!("expected Found, got {other:?}"),
        }
        assert_eq!(
            reborn.save("chr.printer", "printer", &wire(1, 1, 600)),
            SaveOutcome::Stored { seq: 1 },
            "a live incarnation must supersede an adopted record"
        );
    }

    #[test]
    fn adopt_rejects_corrupt_frames() {
        let mut store = CheckpointStore::new();
        let mut bad = wire(1, 1, 10);
        bad[6] ^= 0x40;
        assert!(!store.adopt("chr.kbd", "kbd", &bad));
        assert_eq!(store.corrupt_rejected, 1);
        assert!(store.is_empty());
    }

    #[test]
    fn garbage_save_is_rejected() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.save("x", "y", b"nonsense"), SaveOutcome::Corrupt);
        assert!(store.is_empty());
    }
}
