//! Causal recovery tracing tests: every recovery episode carries a
//! `RecoveryId` minted by RS at defect detection and threaded through the
//! DS publish and the dependents' reintegration, so the §5.3 ordering
//! properties can be asserted on the *filtered* trace of one episode —
//! even while other recoveries interleave.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix::apps::{Dd, DdStatus, UdpPing, UdpStatus};
use phoenix::campaign::{run_chaos_campaign_traced, ChaosCampaignConfig};
use phoenix::os::{names, NicKind, Os};
use phoenix_servers::fsfmt::{FileContent, FileSpec};
use phoenix_simcore::export::{export_jsonl, parse_jsonl};
use phoenix_simcore::obs::Episode;
use phoenix_simcore::time::SimDuration;
use phoenix_simcore::trace::TraceEvent;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// Position of the first rid-filtered event matching `kind` emitted by
/// `component`, in trace order.
fn position_of(events: &[(usize, &TraceEvent)], component: &str, kind: &str) -> Option<usize> {
    events
        .iter()
        .position(|(_, e)| e.component == component && e.kind() == Some(kind))
}

/// Asserts the §5.3 causal order within one episode: RS notices the
/// defect, the fresh incarnation comes up, DS publishes the new endpoint,
/// and only then does the dependent resume.
fn assert_causal_order(os: &Os, ep: &Episode, dependent: &str) {
    let events: Vec<(usize, &TraceEvent)> = os.trace().events_for(ep.rid).collect();
    let defect = position_of(&events, "rs", "defect").expect("defect event tagged");
    let alive = position_of(&events, "rs", "alive").expect("alive event tagged");
    let publish = position_of(&events, "ds", "publish").expect("publish event tagged");
    let resume = position_of(&events, dependent, "resume")
        .or_else(|| position_of(&events, dependent, "reintegrate"))
        .expect("dependent reintegration tagged");
    assert!(defect < alive, "defect precedes alive ({})", ep.render());
    assert!(alive < publish, "alive precedes publish ({})", ep.render());
    assert!(
        publish < resume,
        "DS publishes the new endpoint before {dependent} resumes ({})",
        ep.render()
    );
}

#[test]
fn block_recovery_episode_is_complete_and_causally_ordered() {
    // Kill the SATA driver mid-read: the episode must reconstruct with
    // all three phases, and the rid-filtered trace must show the DS
    // publish *before* MFS reissues the pending I/O (§5.3, §6.2).
    let file_size = 4_000_000u64;
    let sectors = file_size / 512 + 1024;
    let files = vec![FileSpec {
        name: "bigfile".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }];
    let mut os = Os::builder().seed(9).with_disk(sectors, 77, files).boot();
    let vfs = os.endpoint(names::VFS).unwrap();
    let status = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd",
        Box::new(Dd::new(vfs, "bigfile", 64 * 1024, status.clone())),
    );
    os.run_for(ms(100));
    assert!(os.kill_by_user(names::BLK_SATA));
    os.run_for(ms(900));
    assert!(os.kill_by_user(names::BLK_SATA));
    let mut guard = 0;
    while !status.borrow().done && guard < 600 {
        os.run_for(ms(100));
        guard += 1;
    }
    assert!(status.borrow().done);
    assert!(os.metrics().counter("mfs.reissues") >= 1);

    let timeline = os.timeline();
    let ep = timeline
        .for_service(names::BLK_SATA)
        .find(|e| e.complete())
        .expect("a complete blk.sata episode");
    assert!(ep.detection().is_some(), "detection phase present");
    assert!(ep.repair().is_some(), "repair phase present");
    assert!(ep.reintegration().is_some(), "reintegration phase present");
    assert!(ep.defect_at.is_some(), "kernel death anchored the episode");
    assert_causal_order(&os, ep, names::MFS);
    assert!(timeline.unaccounted().is_empty(), "no half-traced episodes");
}

#[test]
fn network_recovery_episode_is_complete_and_causally_ordered() {
    // Kill the Ethernet driver under datagram load: DS must publish the
    // new endpoint before INET reinitializes the driver (§5.3, §6.1).
    let mut os = Os::builder().seed(32).with_network(NicKind::Rtl8139).boot();
    let inet = os.endpoint(names::INET).unwrap();
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app(
        "udp",
        Box::new(UdpPing::new(inet, 100_000, ms(5), status.clone())),
    );
    os.run_for(ms(200));
    assert!(os.kill_by_user(names::ETH_RTL8139));
    os.run_for(SimDuration::from_secs(2));

    let timeline = os.timeline();
    let ep = timeline
        .for_service(names::ETH_RTL8139)
        .find(|e| e.complete())
        .expect("a complete eth.rtl8139 episode");
    assert_causal_order(&os, ep, names::INET);
    // The INET resume ("ethernet driver initialized") is the episode's
    // resumption point, after the publish.
    assert!(ep.resumed_at.is_some());
    assert!(ep.resumed_at >= ep.published_at);
}

#[test]
fn chaos_campaign_episodes_stay_causally_ordered() {
    // Under a hostile fabric (drops, delays, duplicates, corruption) every
    // *complete* episode must still show publish-before-resume, and every
    // scripted kill must reconstruct into an accounted episode.
    let cfg = ChaosCampaignConfig {
        seed: 4242,
        kills_per_target: 3,
        kill_interval: SimDuration::from_secs(2),
        mid_recovery_kill: true,
        ..ChaosCampaignConfig::default()
    };
    let (result, os) = run_chaos_campaign_traced(&cfg);
    assert!(result.recovery_rate() > 0.9);
    let timeline = os.timeline();
    assert!(
        timeline.complete_count() >= 6,
        "all scripted kills reconstructed:\n{}",
        timeline.render()
    );
    assert!(
        timeline.unaccounted().is_empty(),
        "every episode complete, superseded, or given up:\n{}",
        timeline.render()
    );
    for ep in timeline.episodes.iter().filter(|e| e.complete()) {
        let dependent = if ep.service == names::BLK_SATA {
            names::MFS
        } else {
            names::INET
        };
        // Chaos may starve a dependent of its resume for a while; only
        // assert ordering when the dependent's reintegration was traced.
        let events: Vec<(usize, &TraceEvent)> = os.trace().events_for(ep.rid).collect();
        if position_of(&events, dependent, "resume").is_some()
            || position_of(&events, dependent, "reintegrate").is_some()
        {
            assert_causal_order(&os, ep, dependent);
        }
    }
    // Phase histograms landed in the registry.
    assert!(os.metrics().counter("obs.episodes.complete") >= 6);
    assert!(os.metrics().histogram("recovery.phase.total").is_some());
}

#[test]
fn same_seed_traces_export_byte_identical_jsonl() {
    // The digest-style regression: two same-seed runs must export
    // byte-identical structured traces, and the export must round-trip.
    let run = || {
        let mut os = Os::builder().seed(55).with_network(NicKind::Rtl8139).boot();
        os.kill_by_user(names::ETH_RTL8139);
        os.run_for(SimDuration::from_secs(2));
        export_jsonl(os.trace().events())
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, byte-identical JSONL export");
    let parsed = parse_jsonl(&a).expect("export parses back");
    assert_eq!(export_jsonl(parsed.iter()), a, "lossless round-trip");
    assert!(parsed.iter().any(|e| e.recovery.is_some()));
}
