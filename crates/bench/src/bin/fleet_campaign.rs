//! Fleet campaign: N-node distributed reincarnation under node-level
//! chaos — the "who recovers the recoverer" evaluation.
//!
//! Drives a fleet of independent machines through the standard mixed
//! node-fault schedule (RS kills, whole-node crashes, one-way
//! partitions, asymmetric loss) and reports per-phase node MTTRs —
//! detect (fault to quorum conviction), repair (conviction to reborn
//! boot), reintegrate (reborn boot to peer-observed) — in the same
//! timeline-fold style as the single-machine recovery bench.
//!
//! The binary is also a regression gate (CI runs it with `--quick`):
//!
//! * two same-seed campaign runs must produce byte-identical per-node
//!   and fleet digests;
//! * every injected RS kill and node crash must be convicted and the
//!   victim rebooted by a surviving peer — zero unrecovered faults;
//! * at least one conviction each of `rs-silent` and `node-unreachable`
//!   evidence (both detection paths exercised);
//! * no conviction without an injected fault behind it, in the campaign
//!   or in the no-fault control run (zero false restarts);
//! * warm recovery: no reboot may cold-start without a peer snapshot.
//!
//! Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix_bench::{quick_mode, write_report, CampaignGate};
use phoenix_fleet::{run_fleet_campaign, run_fleet_control, FleetCampaignConfig};

fn main() -> ExitCode {
    let quick = quick_mode();
    let mut cfg = FleetCampaignConfig::default();
    if quick {
        cfg.faults = 12;
    }
    println!(
        "fleet campaign — {} nodes x {} node-level faults{}\n",
        cfg.fleet.nodes,
        cfg.faults,
        if quick { ", --quick" } else { "" },
    );

    // Campaign, twice: the second run exists only to check determinism.
    let campaign = run_fleet_campaign(&cfg);
    let rerun = run_fleet_campaign(&cfg);

    // No-fault control over a shorter horizon: any conviction here is a
    // false restart.
    let control_cfg = FleetCampaignConfig {
        faults: cfg.faults.min(4),
        ..cfg.clone()
    };
    let control = run_fleet_control(&control_cfg);

    println!("{}", campaign.render());
    println!(
        "no-fault control: {} convictions, {} reboots",
        control.convictions, control.reboots
    );

    let mut gate = CampaignGate::new();
    gate.require(
        campaign.digest == rerun.digest && campaign.node_digests == rerun.node_digests,
        format!(
            "same-seed fleet digests differ: {} vs {}",
            campaign.digest, rerun.digest
        ),
    );
    gate.require(
        campaign.unrecovered == 0,
        format!("{} node faults never recovered", campaign.unrecovered),
    );
    gate.require(
        campaign.reboots >= campaign.injected,
        format!(
            "{} injected node faults but only {} reboots",
            campaign.injected, campaign.reboots
        ),
    );
    let evidence_count = |name: &str| {
        campaign
            .by_evidence
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, c)| *c)
    };
    gate.require(
        evidence_count("rs-silent") > 0,
        "no rs-silent conviction: the killed-RS detection path never fired",
    );
    gate.require(
        evidence_count("node-unreachable") > 0,
        "no node-unreachable conviction: the node-crash detection path never fired",
    );
    gate.require(
        campaign.false_convictions == 0,
        format!(
            "{} convictions without an injected fault behind them",
            campaign.false_convictions
        ),
    );
    gate.require(
        campaign.cold_recoveries == 0,
        format!(
            "{} reboots cold-started without a peer-held snapshot",
            campaign.cold_recoveries
        ),
    );
    gate.require(
        control.convictions == 0 && control.reboots == 0,
        format!(
            "false restarts in the no-fault control: {} convictions, {} reboots",
            control.convictions, control.reboots
        ),
    );

    let mut report = String::new();
    let _ = writeln!(report, "{}", campaign.render());
    let _ = writeln!(
        report,
        "no-fault control: {} convictions, {} reboots",
        control.convictions, control.reboots
    );
    write_report("fleet_campaign", quick, &report);

    gate.finish(
        "all gates passed: same-seed fleet digest identical, every node fault\n\
         convicted and rebooted warm by a surviving peer, both evidence paths\n\
         exercised, zero false restarts",
    )
}
