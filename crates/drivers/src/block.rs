//! Block device drivers: SATA, floppy, and the RAM disk of §6.2 fn. 1.
//!
//! Block drivers are *stateless* (§6.2): every request is self-contained
//! and disk block I/O is idempotent, so after a crash the file server can
//! simply reissue pending requests to the restarted driver. The only state
//! a driver holds is the request currently at the hardware — and that one
//! dies with it, which is exactly what the abort-and-retry protocol
//! handles.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::disk::{cmd, disk_isr, regs, status as hw_status, SECTOR};
use phoenix_kernel::memory::GrantId;
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, DeviceId, Endpoint, IrqLine, Message};
use phoenix_simcore::trace::TraceLevel;

use crate::libdriver::{DriverLogic, FaultPort, GuardedRoutine};
use crate::proto::{bdev, status};
use crate::routines;

/// Largest transfer a single request may carry (256 sectors = 128 KB),
/// bounded by the driver's DMA buffer.
pub const MAX_SECTORS: u64 = 256;

const DMA_BUF: usize = 0; // offset of the DMA buffer in driver memory
const DMA_LEN: usize = (MAX_SECTORS as usize) * SECTOR;

struct Pending {
    call: CallId,
    client: Endpoint,
    grant: GrantId,
    bytes: usize,
    is_read: bool,
    /// Descriptor checksum computed by the VM routine, echoed back to the
    /// file server (sentinel protocol: reply `param[2]` = 1 + checksum).
    csum: u32,
}

/// Driver for the register-level disk controllers of `phoenix-hw`
/// (SATA and floppy share the controller ABI; the floppy additionally
/// needs its motor spun up).
pub struct DiskDriver {
    dev: DeviceId,
    irq: IrqLine,
    needs_motor: bool,
    capacity: u64,
    pending: Option<Pending>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl DiskDriver {
    /// Creates a SATA disk driver.
    pub fn sata(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        Self::new(dev, irq, false, fault_port)
    }

    /// Creates a floppy driver.
    pub fn floppy(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        Self::new(dev, irq, true, fault_port)
    }

    fn new(dev: DeviceId, irq: IrqLine, needs_motor: bool, fault_port: FaultPort) -> Self {
        DiskDriver {
            dev,
            irq,
            needs_motor,
            capacity: 0,
            pending: None,
            routine: GuardedRoutine::new(&routines::with_cold_section(
                routines::disk_request(),
                30,
            )),
            fault_port,
        }
    }

    fn reply_status(&self, ctx: &mut Ctx<'_>, call: CallId, st: u64, bytes: u64) {
        let _ = ctx.reply(
            call,
            Message::new(bdev::REPLY)
                .with_param(0, st)
                .with_param(1, bytes),
        );
    }

    /// Validates the request through the (possibly mutated) VM routine.
    /// Returns the transfer size in bytes and the routine's descriptor
    /// checksum, or `None` if the driver died. The checksum is echoed in
    /// the eventual reply so the file server's sentinel can verify the
    /// driver actually processed the descriptor it was sent.
    fn validate(&mut self, ctx: &mut Ctx<'_>, lba: u64, count: u64) -> Option<(usize, u32)> {
        let capacity = self.capacity;
        let vm = self.routine.run(ctx, 64, |vm| {
            vm.regs[routines::reg::A0 as usize] = lba as u32;
            vm.regs[routines::reg::A1 as usize] = count as u32;
            vm.regs[routines::reg::A2 as usize] = capacity as u32;
            let mut desc = [0u8; 16];
            desc[0..4].copy_from_slice(&(lba as u32).to_le_bytes());
            desc[4..8].copy_from_slice(&(count as u32).to_le_bytes());
            desc[8..12].copy_from_slice(&(capacity as u32).to_le_bytes());
            vm.mem[0..16].copy_from_slice(&desc);
        })?;
        let bytes = vm.regs[routines::reg::RES as usize] as usize;
        // csum 0 = "no echo": the caller's sentinel skips the check.
        let csum = u32::from_le_bytes(vm.mem[16..20].try_into().unwrap_or([0; 4]));
        Some((bytes, csum))
    }
}

impl DriverLogic for DiskDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.devio_write(self.dev, regs::CMD, cmd::RESET)
            .expect("driver privilege grants its device");
        if self.needs_motor {
            ctx.devio_write(self.dev, regs::MOTOR, 1)
                .expect("motor reg");
        }
        self.capacity = u64::from(
            ctx.devio_read(self.dev, regs::CAPACITY)
                .expect("capacity reg"),
        );
        ctx.iommu_map(self.dev, 0, DMA_BUF, DMA_LEN)
            .expect("map DMA window");
        ctx.trace(
            TraceLevel::Info,
            format!("disk ready, {} sectors", self.capacity),
        );
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            bdev::OPEN => {
                let _ = ctx.reply(
                    call,
                    Message::new(bdev::REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, self.capacity),
                );
            }
            bdev::READ | bdev::WRITE => {
                if self.pending.is_some() {
                    // One request at a time (MINIX drivers are
                    // single-threaded); the FS serializes, so this is
                    // defensive.
                    self.reply_status(ctx, call, status::EAGAIN, 0);
                    return;
                }
                let (lba, count, grant) = (msg.param(0), msg.param(1), msg.param(2));
                let Some((bytes, csum)) = self.validate(ctx, lba, count) else {
                    return; // driver is dying; rendezvous will abort
                };
                let is_read = msg.mtype == bdev::READ;
                let client = msg.source;
                let grant = GrantId(grant as u32);
                if !is_read {
                    // Fetch the payload from the client's grant into the
                    // DMA buffer before programming the device.
                    if ctx.safecopy_from(client, grant, 0, DMA_BUF, bytes).is_err() {
                        self.reply_status(ctx, call, status::EINVAL, 0);
                        return;
                    }
                }
                let ok = ctx.devio_write(self.dev, regs::LBA, lba as u32).is_ok()
                    && ctx.devio_write(self.dev, regs::COUNT, count as u32).is_ok()
                    && ctx
                        .devio_write(self.dev, regs::DMA_ADDR, DMA_BUF as u32)
                        .is_ok()
                    && ctx
                        .devio_write(
                            self.dev,
                            regs::CMD,
                            if is_read { cmd::READ } else { cmd::WRITE },
                        )
                        .is_ok();
                if !ok {
                    self.reply_status(ctx, call, status::EIO, 0);
                    return;
                }
                // Reject if the controller refused the command outright.
                let st = ctx.devio_read(self.dev, regs::STATUS).unwrap_or(0);
                if st & hw_status::BUSY == 0 {
                    self.reply_status(ctx, call, status::EIO, 0);
                    return;
                }
                self.pending = Some(Pending {
                    call,
                    client,
                    grant,
                    bytes,
                    is_read,
                    csum,
                });
            }
            _ => self.reply_status(ctx, call, status::EINVAL, 0),
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        let isr = ctx.devio_read(self.dev, regs::ISR).unwrap_or(0);
        let _ = ctx.devio_write(self.dev, regs::ISR, isr);
        let Some(p) = self.pending.take() else { return };
        if isr & disk_isr::DONE != 0 {
            if p.is_read {
                // Hand the data to the client through its grant.
                if ctx
                    .safecopy_to(p.client, p.grant, 0, DMA_BUF, p.bytes)
                    .is_err()
                {
                    self.reply_status(ctx, p.call, status::EINVAL, 0);
                    return;
                }
            }
            let _ = ctx.reply(
                p.call,
                Message::new(bdev::REPLY)
                    .with_param(0, status::OK)
                    .with_param(1, p.bytes as u64)
                    .with_param(2, 1 + u64::from(p.csum)),
            );
        } else {
            self.reply_status(ctx, p.call, status::EIO, 0);
        }
    }
}

/// The trusted RAM disk driver of §6.2 footnote 1: a ~450-line driver
/// backing a memory region, used to provide policy-script storage that
/// survives disk-driver failures.
///
/// The backing region models *physical* memory handed to the driver at
/// configuration time, so its contents survive a driver restart — the
/// driver process itself remains stateless.
pub struct RamDiskDriver {
    region: Rc<RefCell<Vec<u8>>>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl RamDiskDriver {
    /// Creates a RAM disk driver over a shared backing region (whole
    /// sectors).
    pub fn new(region: Rc<RefCell<Vec<u8>>>, fault_port: FaultPort) -> Self {
        assert_eq!(
            region.borrow().len() % SECTOR,
            0,
            "region must be sector-aligned"
        );
        RamDiskDriver {
            region,
            routine: GuardedRoutine::new(&routines::with_cold_section(
                routines::disk_request(),
                30,
            )),
            fault_port,
        }
    }

    /// Allocates a fresh zeroed backing region of `sectors` sectors.
    pub fn region(sectors: u64) -> Rc<RefCell<Vec<u8>>> {
        Rc::new(RefCell::new(vec![0; sectors as usize * SECTOR]))
    }

    fn capacity(&self) -> u64 {
        (self.region.borrow().len() / SECTOR) as u64
    }

    fn reply_status(&self, ctx: &mut Ctx<'_>, call: CallId, st: u64, bytes: u64) {
        let _ = ctx.reply(
            call,
            Message::new(bdev::REPLY)
                .with_param(0, st)
                .with_param(1, bytes),
        );
    }
}

impl DriverLogic for RamDiskDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.trace(
            TraceLevel::Info,
            format!("ram disk ready, {} sectors", self.capacity()),
        );
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            bdev::OPEN => {
                let _ = ctx.reply(
                    call,
                    Message::new(bdev::REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, self.capacity()),
                );
            }
            bdev::READ | bdev::WRITE => {
                let (lba, count, grant) = (msg.param(0), msg.param(1), msg.param(2));
                let capacity = self.capacity();
                let vm = self.routine.run(ctx, 64, |vm| {
                    vm.regs[routines::reg::A0 as usize] = lba as u32;
                    vm.regs[routines::reg::A1 as usize] = count as u32;
                    vm.regs[routines::reg::A2 as usize] = capacity as u32;
                    let mut desc = [0u8; 16];
                    desc[0..4].copy_from_slice(&(lba as u32).to_le_bytes());
                    desc[4..8].copy_from_slice(&(count as u32).to_le_bytes());
                    desc[8..12].copy_from_slice(&(capacity as u32).to_le_bytes());
                    vm.mem[0..16].copy_from_slice(&desc);
                });
                let Some(vm) = vm else { return };
                let bytes = vm.regs[routines::reg::RES as usize] as usize;
                // csum 0 = "no echo": the client's sentinel skips the check.
                let csum = u32::from_le_bytes(vm.mem[16..20].try_into().unwrap_or([0; 4]));
                let grant = GrantId(grant as u32);
                let off = lba as usize * SECTOR;
                if msg.mtype == bdev::READ {
                    let data = self.region.borrow()[off..off + bytes].to_vec();
                    if ctx.mem_write(0, &data).is_err()
                        || ctx.safecopy_to(msg.source, grant, 0, 0, bytes).is_err()
                    {
                        self.reply_status(ctx, call, status::EINVAL, 0);
                        return;
                    }
                } else {
                    if ctx.safecopy_from(msg.source, grant, 0, 0, bytes).is_err() {
                        self.reply_status(ctx, call, status::EINVAL, 0);
                        return;
                    }
                    let Ok(data) = ctx.mem_read(0, bytes) else {
                        self.reply_status(ctx, call, status::EIO, 0);
                        return;
                    };
                    self.region.borrow_mut()[off..off + bytes].copy_from_slice(&data);
                }
                let _ = ctx.reply(
                    call,
                    Message::new(bdev::REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, bytes as u64)
                        .with_param(2, 1 + u64::from(csum)),
                );
            }
            _ => self.reply_status(ctx, call, status::EINVAL, 0),
        }
    }
}
