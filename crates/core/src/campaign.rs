//! The §7.2 software fault-injection campaign.
//!
//! "One experiment run inside the Bochs PC emulator targeted the DP8390
//! Ethernet driver and repeatedly injected 1 randomly selected fault into
//! the running driver until it crashed. In total, we injected over 12,500
//! faults, which led to 347 detectable crashes: 226 exits due to an
//! internal panic (65%), 109 kill signals due to CPU and MMU exceptions
//! (31%), and 12 restarts due to missing heartbeat messages (4%). The
//! subsequent recovery was successful in 100% of the induced failures."
//!
//! This module drives exactly that experiment against our DP8390 driver,
//! with background datagram traffic keeping the driver's hot paths
//! executing. A second configuration enables the NIC model's *wedge*
//! behavior to reproduce the real-hardware tail where "the network card
//! was confused by the faulty driver and could not be reinitialized by the
//! restarted driver" and only a BIOS-level reset helps.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::dp8390::{Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::Rtl8139Config;
use phoenix_hw::WireConfig;
use phoenix_servers::peer::PeerConfig;
use phoenix_servers::policy::reason;
use phoenix_simcore::time::SimDuration;

use crate::apps::{UdpPing, UdpStatus};
use crate::os::{hwmap, names, NicKind, Os};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// Total faults to inject.
    pub injections: u64,
    /// Virtual time between injections.
    pub injection_interval: SimDuration,
    /// Probability that a reserved-register write wedges the NIC
    /// (0 for the emulator campaign, small for the "real hardware" one).
    pub wedge_prob: f64,
    /// Background datagram period (traffic exercising the driver).
    pub traffic_period: SimDuration,
    /// Heartbeat period for the driver under test.
    pub heartbeat_period: SimDuration,
    /// Consecutive misses before heartbeat recovery.
    pub heartbeat_misses: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2007,
            injections: 12_500,
            injection_interval: SimDuration::from_millis(20),
            wedge_prob: 0.0,
            traffic_period: SimDuration::from_millis(5),
            heartbeat_period: SimDuration::from_millis(500),
            heartbeat_misses: 2,
        }
    }
}

/// One detected crash.
#[derive(Debug, Clone)]
pub struct CrashRecord {
    /// Defect class (§5.1 numbering; see `phoenix_servers::policy::reason`).
    pub defect: u8,
    /// Faults injected since the previous crash.
    pub injections_since_last: u64,
    /// Whether automatic recovery succeeded.
    pub recovered: bool,
    /// Whether an out-of-band BIOS reset was required (wedged card).
    pub needed_hard_reset: bool,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Total faults injected.
    pub injections: u64,
    /// Every detected crash in order.
    pub crashes: Vec<CrashRecord>,
    /// Silent failures: the driver stayed alive and answered heartbeats
    /// but stopped moving data, so the *user* noticed the freeze and
    /// instructed RS to restart it (§5.1 input 3). The paper's design
    /// explicitly cannot detect these automatically (§3: no protection
    /// against Byzantine behavior without end-to-end checks).
    pub silent_restarts: u64,
}

impl CampaignResult {
    /// Number of crashes with the given defect class.
    pub fn count(&self, defect: u8) -> usize {
        self.crashes.iter().filter(|c| c.defect == defect).count()
    }

    /// Crashes recovered automatically.
    pub fn recovered(&self) -> usize {
        self.crashes.iter().filter(|c| c.recovered && !c.needed_hard_reset).count()
    }

    /// Crashes needing the BIOS-reset escape hatch.
    pub fn hard_resets(&self) -> usize {
        self.crashes.iter().filter(|c| c.needed_hard_reset).count()
    }

    /// Percentage helper.
    pub fn pct(&self, n: usize) -> f64 {
        if self.crashes.is_empty() {
            0.0
        } else {
            n as f64 * 100.0 / self.crashes.len() as f64
        }
    }

    /// Renders the §7.2-style summary.
    pub fn render(&self) -> String {
        let panics = self.count(reason::EXIT);
        let exceptions = self.count(reason::EXCEPTION);
        let heartbeats = self.count(reason::HEARTBEAT);
        format!(
            "injected {} faults -> {} detectable crashes: \
             {} exits/panics ({:.0}%), {} CPU/MMU exceptions ({:.0}%), \
             {} missing heartbeats ({:.0}%); recovery ok {} ({:.1}%), \
             hard resets {}, silent freezes (user restart) {}",
            self.injections,
            self.crashes.len(),
            panics,
            self.pct(panics),
            exceptions,
            self.pct(exceptions),
            heartbeats,
            self.pct(heartbeats),
            self.recovered() + self.hard_resets(),
            self.pct(self.recovered() + self.hard_resets()),
            self.hard_resets(),
            self.silent_restarts,
        )
    }
}

const DEFECTS: [u8; 6] = [
    reason::EXIT,
    reason::EXCEPTION,
    reason::KILLED,
    reason::HEARTBEAT,
    reason::COMPLAINT,
    reason::UPDATE,
];

fn defect_counts(os: &Os) -> [u64; 6] {
    let mut out = [0; 6];
    for (i, d) in DEFECTS.iter().enumerate() {
        out[i] = os.metrics().counter(&format!("rs.defect.{}", reason::name(*d)));
    }
    out
}

/// Classifies a crash from the defect-counter delta. Restart-failure
/// panics can pollute the `exit` class, so the rarer, unambiguous classes
/// win.
fn classify(before: [u64; 6], after: [u64; 6]) -> u8 {
    let delta: Vec<u64> = before.iter().zip(after).map(|(b, a)| a - *b).collect();
    if delta[3] > 0 {
        reason::HEARTBEAT
    } else if delta[1] > 0 {
        reason::EXCEPTION
    } else if delta[4] > 0 {
        reason::COMPLAINT
    } else if delta[2] > 0 {
        reason::KILLED
    } else {
        reason::EXIT
    }
}

/// Runs the fault-injection campaign. Returns the result plus the UDP
/// traffic status (for liveness sanity checks).
pub fn run_campaign(cfg: &CampaignConfig) -> (CampaignResult, Rc<RefCell<UdpStatus>>) {
    let driver = names::ETH_DP8390;
    let mut os = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Dp8390)
        .network_tuning(
            Rtl8139Config::default(),
            Dp8390Config {
                wedge_prob: cfg.wedge_prob,
                ..Dp8390Config::default()
            },
            WireConfig::default(),
            PeerConfig::default(),
        )
        .heartbeat(cfg.heartbeat_period, cfg.heartbeat_misses)
        .boot();

    // Continuous background traffic so the driver's hot paths execute.
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    os.spawn_app(
        "udp-traffic",
        Box::new(UdpPing::new(inet, 2_000_000, cfg.traffic_period, status.clone())),
    );
    os.run_for(SimDuration::from_millis(50));

    let mut result = CampaignResult::default();
    let mut since_last = 0u64;
    let mut last_echoed = status.borrow().echoed;
    let mut last_progress = os.now();
    while result.injections < cfg.injections {
        let Some(ep_before) = os.endpoint(driver) else {
            // Driver restarting; give it time.
            os.run_for(SimDuration::from_millis(100));
            continue;
        };
        // Silent-failure watchdog: a mutated driver can desync its rx ring
        // and go quiet while still answering heartbeats — undetectable by
        // the system (§3), but the *user* notices the frozen traffic and
        // restarts the driver by hand (§5.1 input 3). Not counted as a
        // detectable crash.
        let echoed = status.borrow().echoed;
        if echoed != last_echoed {
            last_echoed = echoed;
            last_progress = os.now();
        } else if os.now().since(last_progress) > SimDuration::from_secs(2) {
            result.silent_restarts += 1;
            os.service_restart(driver);
            for _ in 0..100 {
                os.run_for(SimDuration::from_millis(100));
                if os.endpoint(driver).is_some_and(|e| e != ep_before) {
                    break;
                }
            }
            last_progress = os.now();
            continue;
        }
        let counts_before = defect_counts(&os);
        if os.inject_fault(driver).is_none() {
            os.run_for(SimDuration::from_millis(100));
            continue;
        }
        result.injections += 1;
        since_last += 1;
        os.run_for(cfg.injection_interval);
        // Crash detection: the incarnation changed or the driver is gone.
        // A *stuck* driver is still "alive" here; it is detected when the
        // heartbeat misses accumulate, within a later interval.
        if os.endpoint(driver) == Some(ep_before) {
            continue;
        }
        // Wait for recovery (§7.2 reports 100% on the emulator).
        let mut recovered = false;
        let mut needed_hard_reset = false;
        for _ in 0..100 {
            if let Some(ep) = os.endpoint(driver) {
                if ep != ep_before {
                    recovered = true;
                    break;
                }
            }
            os.run_for(SimDuration::from_millis(100));
        }
        if !recovered {
            // The card may be wedged: restarted drivers keep panicking at
            // init. Apply the out-of-band BIOS reset and try once more.
            let wedged = os
                .device_mut::<Dp8390>(hwmap::NIC)
                .is_some_and(|d| d.is_wedged());
            if wedged {
                os.hard_reset_device(hwmap::NIC);
                needed_hard_reset = true;
                os.service_restart(driver);
                for _ in 0..100 {
                    if let Some(ep) = os.endpoint(driver) {
                        if ep != ep_before {
                            recovered = true;
                            break;
                        }
                    }
                    os.run_for(SimDuration::from_millis(100));
                }
            }
        }
        let defect = classify(counts_before, defect_counts(&os));
        result.crashes.push(CrashRecord {
            defect,
            injections_since_last: since_last,
            recovered,
            needed_hard_reset,
        });
        since_last = 0;
        // Let traffic re-establish before the next injection.
        os.run_for(SimDuration::from_millis(50));
    }
    (result, status)
}
