//! Driver-level integration tests: each driver runs as a real process
//! against its device model, driven by a probe client speaking the wire
//! protocols.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_drivers::libdriver::{Driver, FaultPort};
use phoenix_drivers::proto::{bdev, cdev, drv, eth, status};
use phoenix_drivers::{DiskDriver, Dp8390Driver, PrinterDriver, RamDiskDriver, Rtl8139Driver};
use phoenix_fault::{encode, Instr};
use phoenix_hw::bus::{Bus, WireConfig};
use phoenix_hw::disk::{synth_sector, DiskDevice, SECTOR};
use phoenix_hw::dp8390::{Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::{Rtl8139, Rtl8139Config};
use phoenix_hw::{PeerCtx, Printer, RemotePeer};
use phoenix_kernel::memory::GrantAccess;
use phoenix_kernel::privileges::{IpcFilter, KernelCall, Privileges};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::{DeviceId, Endpoint, Message};

type Hook = Box<dyn FnMut(&mut Ctx<'_>, &ProcEvent)>;

struct Probe {
    hook: Hook,
}
impl Process for Probe {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        (self.hook)(ctx, &event);
    }
}

const DEV: DeviceId = DeviceId(1);
const IRQ: u8 = 5;

fn sata_rig(sectors: u64, seed: u64) -> (System, Bus, Endpoint) {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(DiskDevice::sata(sectors, seed)));
    let drv_ep = sys.spawn_boot(
        "blk.sata",
        // The real registration grants block drivers SafeCopy on top of
        // the baseline (they serve reads through client grants).
        Privileges::driver(DEV, IRQ).with_calls([
            KernelCall::Devio,
            KernelCall::IrqCtl,
            KernelCall::IommuMap,
            KernelCall::SafeCopy,
        ]),
        Box::new(Driver::new(DiskDriver::sata(DEV, IRQ, FaultPort::new()))),
    );
    (sys, bus, drv_ep)
}

#[test]
fn block_driver_serves_reads_through_grants() {
    let (mut sys, mut bus, drv_ep) = sata_rig(128, 42);
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let g2 = got.clone();
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    let g = ctx
                        .grant_create(drv_ep, 0, 2 * SECTOR, GrantAccess::Write)
                        .expect("grant");
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(bdev::READ)
                            .with_param(0, 7)
                            .with_param(1, 2)
                            .with_param(2, u64::from(g.0)),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    assert_eq!(reply.mtype, bdev::REPLY);
                    assert_eq!(reply.param(0), status::OK);
                    assert_eq!(reply.param(1), 2 * SECTOR as u64);
                    *g2.borrow_mut() = ctx.mem_read(0, 2 * SECTOR).unwrap();
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 1000);
    let data = got.borrow();
    assert_eq!(&data[..SECTOR], synth_sector(42, 7).as_slice());
    assert_eq!(&data[SECTOR..], synth_sector(42, 8).as_slice());
}

#[test]
fn block_driver_rejects_bad_grant_and_busy_overlap() {
    let (mut sys, mut bus, drv_ep) = sata_rig(128, 1);
    let replies: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = replies.clone();
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    // Two overlapping requests: the second sees EAGAIN.
                    let g = ctx
                        .grant_create(drv_ep, 0, SECTOR, GrantAccess::Write)
                        .expect("grant");
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(bdev::READ)
                            .with_param(0, 0)
                            .with_param(1, 1)
                            .with_param(2, u64::from(g.0)),
                    );
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(bdev::READ)
                            .with_param(0, 1)
                            .with_param(1, 1)
                            .with_param(2, u64::from(g.0)),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    let first_ok = reply.param(0) == status::OK
                        && r2.borrow().iter().all(|&r| r != status::OK);
                    r2.borrow_mut().push(reply.param(0));
                    if first_ok {
                        // Driver idle again: a WRITE whose grant denies the
                        // driver read access must fail with EINVAL.
                        let wo = ctx
                            .grant_create(drv_ep, 0, SECTOR, GrantAccess::Write)
                            .expect("grant");
                        let _ = ctx.sendrec(
                            drv_ep,
                            Message::new(bdev::WRITE)
                                .with_param(0, 2)
                                .with_param(1, 1)
                                .with_param(2, u64::from(wo.0)),
                        );
                    }
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 1000);
    let rs = replies.borrow();
    assert!(rs.contains(&status::EAGAIN), "overlap rejected: {rs:?}");
    assert!(
        rs.contains(&status::EINVAL),
        "write via write-only grant rejected: {rs:?}"
    );
    assert!(rs.contains(&status::OK), "first read served: {rs:?}");
}

#[test]
fn block_driver_panics_on_out_of_range_request() {
    // The driver's own VM-validated consistency check (lba+count beyond
    // capacity) fires as an internal panic — defect class 1.
    let (mut sys, mut bus, drv_ep) = sata_rig(16, 1);
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| {
                if matches!(ev, ProcEvent::Start) {
                    let g = ctx
                        .grant_create(drv_ep, 0, SECTOR, GrantAccess::Write)
                        .expect("grant");
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(bdev::READ)
                            .with_param(0, 1000) // way past capacity
                            .with_param(1, 1)
                            .with_param(2, u64::from(g.0)),
                    );
                }
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 1000);
    assert!(!sys.is_live(drv_ep), "driver died of its own sanity check");
    assert!(sys.trace().find("consistency check failed").is_some());
}

#[test]
fn driver_answers_heartbeats_with_echoed_nonce() {
    let (mut sys, mut bus, drv_ep) = sata_rig(16, 1);
    let pongs: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let p2 = pongs.clone();
    sys.spawn_boot(
        "rs",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    let _ = ctx.send(drv_ep, Message::new(drv::HB_PING).with_param(0, 777));
                }
                ProcEvent::Message(m) if m.mtype == drv::HB_PONG => {
                    p2.borrow_mut().push(m.param(0));
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    assert_eq!(pongs.borrow().as_slice(), &[777]);
}

#[test]
fn driver_exits_cleanly_on_sigterm() {
    let (mut sys, mut bus, drv_ep) = sata_rig(16, 1);
    sys.run_until_idle(&mut bus, 100);
    sys.kill_by_user(drv_ep, phoenix_kernel::types::Signal::Term);
    sys.run_until_idle(&mut bus, 100);
    assert!(
        !sys.is_live(drv_ep),
        "SIGTERM triggers the libdriver clean exit"
    );
}

#[test]
fn ramdisk_driver_round_trips_without_hardware() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    let region = RamDiskDriver::region(8);
    let mut privs = Privileges::server();
    privs.address_space = 256 * 1024;
    let drv_ep = sys.spawn_boot(
        "blk.ram",
        privs,
        Box::new(Driver::new(RamDiskDriver::new(
            region.clone(),
            FaultPort::new(),
        ))),
    );
    let done = Rc::new(RefCell::new(false));
    let d2 = done.clone();
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    ctx.mem_write(0, &vec![0xEE; SECTOR]).unwrap();
                    let g = ctx
                        .grant_create(drv_ep, 0, SECTOR, GrantAccess::Read)
                        .expect("grant");
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(bdev::WRITE)
                            .with_param(0, 3)
                            .with_param(1, 1)
                            .with_param(2, u64::from(g.0)),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    assert_eq!(reply.param(0), status::OK);
                    *d2.borrow_mut() = true;
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 200);
    assert!(*done.borrow());
    assert_eq!(&region.borrow()[3 * SECTOR..3 * SECTOR + 4], &[0xEE; 4]);
}

/// Echo peer: reflects every frame back to the host.
struct Echo;
impl RemotePeer for Echo {
    fn frame_from_host(&mut self, ctx: &mut PeerCtx<'_, '_>, frame: &[u8]) {
        ctx.send_to_host(frame.to_vec());
    }
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn eth_rig(dp: bool) -> (System, Bus, Endpoint) {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    let fp = FaultPort::new();
    let drv_ep = if dp {
        bus.add_device(DEV, IRQ, Box::new(Dp8390::new(Dp8390Config::default())));
        sys.spawn_boot(
            "eth.dp8390",
            // Net drivers may push received frames to their client.
            Privileges::driver(DEV, IRQ).with_ipc(IpcFilter::named(["rs", "inet"])),
            Box::new(Driver::new(Dp8390Driver::new(DEV, IRQ, fp))),
        )
    } else {
        bus.add_device(DEV, IRQ, Box::new(Rtl8139::new(Rtl8139Config::default())));
        sys.spawn_boot(
            "eth.rtl8139",
            Privileges::driver(DEV, IRQ).with_ipc(IpcFilter::named(["rs", "inet"])),
            Box::new(Driver::new(Rtl8139Driver::new(DEV, IRQ, fp))),
        )
    };
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Echo));
    (sys, bus, drv_ep)
}

fn eth_echo_scenario(dp: bool) {
    let (mut sys, mut bus, drv_ep) = eth_rig(dp);
    let received: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = received.clone();
    sys.spawn_boot(
        "inet",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(drv_ep, Message::new(eth::INIT));
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } if reply.mtype == eth::INIT_REPLY => {
                    assert_eq!(reply.param(0), status::OK);
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(eth::WRITE).with_data(b"hello ethernet".to_vec()),
                    );
                }
                ProcEvent::Message(m) if m.mtype == eth::RECV => {
                    r2.borrow_mut().push(m.data.clone());
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 2000);
    assert_eq!(
        received.borrow().as_slice(),
        &[b"hello ethernet".to_vec()],
        "echoed frame delivered through the rx path"
    );
}

#[test]
fn rtl8139_driver_echo_roundtrip() {
    eth_echo_scenario(false);
}

#[test]
fn dp8390_driver_echo_roundtrip() {
    eth_echo_scenario(true);
}

#[test]
fn mutated_rx_path_kills_the_driver_with_an_exception() {
    // Overwrite the first instructions with a wild load: the next
    // received frame traps the driver — defect class 2, exactly what the
    // campaign measures.
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    let fp = FaultPort::new();
    bus.add_device(DEV, IRQ, Box::new(Dp8390::new(Dp8390Config::default())));
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Echo));
    let drv_ep = sys.spawn_boot(
        "eth.dp8390",
        Privileges::driver(DEV, IRQ).with_ipc(IpcFilter::named(["rs", "inet"])),
        Box::new(Driver::new(Dp8390Driver::new(DEV, IRQ, fp.clone()))),
    );
    sys.spawn_boot(
        "inet",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    let _ = ctx.sendrec(drv_ep, Message::new(eth::INIT));
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } if reply.mtype == eth::INIT_REPLY => {
                    // Delay the transmit so the harness can mutate the
                    // driver's code before the echo comes back.
                    let _ = ctx.set_alarm(phoenix_simcore::time::SimDuration::from_millis(10), 0);
                }
                ProcEvent::Alarm { .. } => {
                    let _ = ctx.sendrec(drv_ep, Message::new(eth::WRITE).with_data(vec![1; 64]));
                }
                _ => {}
            }),
        }),
    );
    // Run past INIT but not past the delayed WRITE.
    sys.run_until(&mut bus, phoenix_simcore::time::SimTime::from_micros(5_000));
    let code = fp.code_of("eth.dp8390").expect("driver published its code");
    code.borrow_mut()[0] = encode(Instr::MovImm(1, 0xFFFF));
    code.borrow_mut()[1] = encode(Instr::LoadB(0, 1, 0xFFFF));
    sys.run_until(
        &mut bus,
        phoenix_simcore::time::SimTime::from_micros(100_000),
    );
    assert!(
        !sys.is_live(drv_ep),
        "rx of the echoed frame trapped the driver"
    );
    assert!(sys.trace().find("MmuFault").is_some() || sys.trace().find("died").is_some());
}

#[test]
fn printer_driver_applies_backpressure() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Printer::new(1024))); // slow: 1 KB/s
    let drv_ep = sys.spawn_boot(
        "chr.printer",
        Privileges::driver(DEV, IRQ),
        Box::new(Driver::new(PrinterDriver::new(DEV, IRQ, FaultPort::new()))),
    );
    let accepted: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let a2 = accepted.clone();
    sys.spawn_boot(
        "client",
        Privileges::server(),
        Box::new(Probe {
            hook: Box::new(move |ctx, ev| match ev {
                ProcEvent::Start => {
                    // 6 KB into a 4 KB FIFO: the driver must truncate.
                    let _ = ctx.sendrec(
                        drv_ep,
                        Message::new(cdev::WRITE).with_data(vec![b'x'; 6144]),
                    );
                }
                ProcEvent::Reply {
                    result: Ok(reply), ..
                } => {
                    a2.borrow_mut().push(reply.param(1));
                }
                _ => {}
            }),
        }),
    );
    sys.run_until_idle(&mut bus, 500);
    let acc = accepted.borrow();
    assert_eq!(acc.len(), 1);
    assert!(acc[0] > 0 && acc[0] <= 4096, "partial acceptance: {acc:?}");
}
