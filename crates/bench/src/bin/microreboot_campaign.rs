//! Microreboot campaign: crash/stall/garble mutations against the
//! *system servers* (VFS, MFS, INET and PM) on the crash-only machine —
//! checkpointing servers, sticky slots, recursive PM guard, escalation
//! ladder.
//!
//! Each round arms one injected defect per server while a recovery-aware
//! observer job (a `dd` read through VFS/MFS, a `wget` download through
//! INET) watches it, and classifies the injection as
//! detected-and-recovered (byte-exact transparent or not), fail-silent
//! survived, or benign. A no-fault control run checks that healthy
//! servers are never restarted.
//!
//! The binary is also a regression gate (CI runs it with `--quick`):
//!
//! * two same-seed campaign runs must produce byte-identical metric
//!   digests;
//! * detection coverage and transparent recovery must both reach 95%
//!   (the recovery-unaware baseline scores 0: a wedged server simply
//!   hangs its callers forever);
//! * every detected or user-restarted server must come back up;
//! * the no-fault control must report zero restarts, zero accepted
//!   complaints and zero escalations, with the workloads live;
//! * the externalized server state must stay under the snapshot cap.
//!
//! Any violation exits non-zero.

use std::fmt::Write as _;
use std::process::ExitCode;

use phoenix::campaign::{run_microreboot_campaign, run_microreboot_control, MicrorebootConfig};
use phoenix_bench::{quick_mode, write_report, CampaignGate};
use phoenix_simcore::time::SimDuration;

fn main() -> ExitCode {
    let quick = quick_mode();
    let cfg = if quick {
        MicrorebootConfig::default().quick()
    } else {
        MicrorebootConfig::default()
    };
    println!(
        "microreboot campaign — {} mutation rounds x 4 system servers{}\n",
        cfg.rounds,
        if quick { ", --quick" } else { "" },
    );

    // Campaign, twice: the second run exists only to check determinism.
    let (campaign, os) = run_microreboot_campaign(&cfg);
    let (rerun, _) = run_microreboot_campaign(&cfg);

    // No-fault control: anything restarted here is a false positive.
    let control = run_microreboot_control(&cfg, SimDuration::from_secs(30));

    println!("{}\n", campaign.render());
    println!(
        "no-fault control (30 s): {} restarts, {} pm recoveries, {} accepted \
         complaints, {} escalations; echoed {} datagrams, read {} bytes",
        control.restarts,
        control.pm_recoveries,
        control.complaints_accepted,
        control.escalations,
        control.echoed,
        control.disk_bytes,
    );

    let mut gate = CampaignGate::new();
    gate.require(
        campaign.digest == rerun.digest,
        format!(
            "same-seed campaign digests differ: {} vs {}",
            campaign.digest, rerun.digest
        ),
    );
    gate.require(
        campaign.coverage() >= 0.95,
        format!(
            "detection coverage {:.1}% below the 95% gate",
            campaign.coverage() * 100.0
        ),
    );
    gate.require(
        campaign.transparency() >= 0.95,
        format!(
            "transparent recovery {:.1}% below the 95% gate",
            campaign.transparency() * 100.0
        ),
    );
    let unrecovered: u64 = campaign.servers.iter().map(|s| s.unrecovered).sum();
    gate.require(
        unrecovered == 0,
        format!("{unrecovered} servers failed to come back up"),
    );
    gate.require(
        campaign.escalations[0] > 0,
        "no level-1 microreboot was ever recorded",
    );
    gate.require(
        !campaign.snapshot_over_cap(),
        format!(
            "externalized server state {} bytes exceeds the {}-byte cap",
            campaign.snapshot_bytes, campaign.snapshot_cap_bytes
        ),
    );
    gate.require(
        control.restarts == 0
            && control.pm_recoveries == 0
            && control.complaints_accepted == 0
            && control.escalations == 0,
        format!(
            "false positives in the no-fault control: {} restarts, {} pm \
             recoveries, {} accepted complaints, {} escalations",
            control.restarts,
            control.pm_recoveries,
            control.complaints_accepted,
            control.escalations,
        ),
    );
    gate.require(
        control.echoed > 0 && control.disk_bytes > 0,
        format!(
            "control workloads not live: echoed {}, disk bytes {}",
            control.echoed, control.disk_bytes
        ),
    );

    // ---- report into results/ ----
    let mut report = String::new();
    let _ = writeln!(report, "{}\n", campaign.render());
    let _ = writeln!(
        report,
        "no-fault control: {} restarts, {} pm recoveries, {} accepted \
         complaints, {} escalations, echoed {}, disk bytes {}",
        control.restarts,
        control.pm_recoveries,
        control.complaints_accepted,
        control.escalations,
        control.echoed,
        control.disk_bytes,
    );
    let _ = writeln!(report);
    let mut counters: Vec<(String, u64)> = os
        .metrics()
        .counters()
        .filter(|(k, _)| {
            k.starts_with("rs.")
                || k.starts_with("ds.snapshot")
                || k.starts_with("ckpt.")
                || k.starts_with("pm.")
        })
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort();
    for (k, v) in counters {
        let _ = writeln!(report, "{k}={v}");
    }
    let timeline = os.timeline();
    let _ = writeln!(report);
    let _ = writeln!(report, "{}", timeline.render());

    write_report("microreboot_campaign", quick, &report);

    gate.finish(
        "all gates passed: same-seed digest identical, coverage and\n\
         transparency at gate, all servers recovered, zero false positives",
    )
}
