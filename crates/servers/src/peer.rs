//! The remote peer: the "Internet server" `wget` downloads from (Fig. 7).
//!
//! Implements the server side of the [`crate::netproto`] transport with a
//! go-back-N window, paced transmission at a configurable uplink rate, and
//! an exponentially backed-off retransmission timeout. While the host's
//! Ethernet driver is dead, segments go unacknowledged and the peer backs
//! off; once the restarted driver is reintegrated, the retransmitted
//! window flows again — no byte is ever lost end-to-end.

use std::any::Any;
use std::collections::BTreeMap;

use phoenix_hw::bus::{PeerCtx, RemotePeer};
use phoenix_simcore::time::{SimDuration, SimTime};

use crate::netproto::{flags, stream_chunk, Segment, MSS};

/// Peer tuning.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Payload pacing rate in bytes/second (the peer's uplink).
    pub rate: u64,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Maximum RTO after backoff.
    pub rto_max: SimDuration,
    /// Send window in segments.
    pub window: usize,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            rate: 11_000_000,
            rto: SimDuration::from_millis(300),
            rto_max: SimDuration::from_secs(3),
            window: 64,
        }
    }
}

#[derive(Debug)]
struct PeerConn {
    // Receive side (for the request).
    rcv_nxt: u32,
    // Send side.
    serving: Option<(u64, u64)>, // (seed, total bytes)
    snd_una: u32,
    snd_nxt: u32,
    fin_acked: bool,
    rto: SimDuration,
    timer_epoch: u32,
    timer_armed: bool,
    /// Consecutive duplicate ACKs at `snd_una` — three trigger a fast
    /// retransmit, so one dropped segment does not cost a full RTO.
    dup_acks: u32,
}

/// The remote file-serving peer.
pub struct FilePeer {
    cfg: PeerConfig,
    conns: BTreeMap<u16, PeerConn>,
    tx_clock: SimTime,
    retransmissions: u64,
    dgrams_echoed: u64,
}

impl FilePeer {
    /// Creates a peer with the given tuning.
    pub fn new(cfg: PeerConfig) -> Self {
        FilePeer {
            cfg,
            conns: BTreeMap::new(),
            tx_clock: SimTime::ZERO,
            retransmissions: 0,
            dgrams_echoed: 0,
        }
    }

    /// Total segment retransmissions performed (a measure of how much the
    /// driver outages cost end-to-end).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Datagrams echoed (UDP-path liveness indicator).
    pub fn dgrams_echoed(&self) -> u64 {
        self.dgrams_echoed
    }

    /// Paced transmit: frames leave at most at `cfg.rate` payload bytes
    /// per second.
    fn paced_send(&mut self, ctx: &mut PeerCtx<'_, '_>, seg: Segment) {
        let now = ctx.now();
        self.tx_clock = self.tx_clock.max(now);
        let delay = self.tx_clock.since(now);
        self.tx_clock += SimDuration::for_transfer(seg.payload.len().max(64) as u64, self.cfg.rate);
        ctx.send_to_host_after(delay, seg.encode());
    }

    fn token(conn: u16, epoch: u32) -> u64 {
        (u64::from(conn) << 32) | u64::from(epoch)
    }

    fn arm_timer(&mut self, ctx: &mut PeerCtx<'_, '_>, conn_id: u16) {
        let now = ctx.now();
        let backlog = self.tx_clock.since(now);
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        conn.timer_epoch += 1;
        conn.timer_armed = true;
        let delay = backlog + conn.rto;
        let tok = Self::token(conn_id, conn.timer_epoch);
        ctx.set_timer_after(delay, tok);
    }

    /// Sends (or resends) everything from `snd_una` up to the window.
    fn fill_window(&mut self, ctx: &mut PeerCtx<'_, '_>, conn_id: u16, from_una: bool) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let Some((seed, total)) = conn.serving else {
            return;
        };
        if from_una {
            conn.snd_nxt = conn.snd_una;
        }
        let window_end = conn.snd_una as u64 + (self.cfg.window * MSS) as u64;
        let mut to_send = Vec::new();
        while u64::from(conn.snd_nxt) < total && u64::from(conn.snd_nxt) < window_end {
            let off = u64::from(conn.snd_nxt);
            let len = (total - off).min(MSS as u64) as usize;
            to_send.push((conn.snd_nxt, len));
            conn.snd_nxt += len as u32;
        }
        let fin_due = u64::from(conn.snd_una) >= total && !conn.fin_acked;
        let rcv_nxt = conn.rcv_nxt;
        for (seq, len) in to_send {
            let payload = stream_chunk(seed, u64::from(seq), len);
            self.paced_send(
                ctx,
                Segment {
                    flags: flags::DATA | flags::ACK,
                    conn: conn_id,
                    seq,
                    ack: rcv_nxt,
                    payload,
                },
            );
        }
        if fin_due {
            self.paced_send(
                ctx,
                Segment {
                    flags: flags::FIN | flags::ACK,
                    conn: conn_id,
                    seq: total as u32,
                    ack: rcv_nxt,
                    payload: Vec::new(),
                },
            );
        }
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let all_done = conn.fin_acked;
        if !all_done {
            self.arm_timer(ctx, conn_id);
        }
    }
}

impl RemotePeer for FilePeer {
    fn frame_from_host(&mut self, ctx: &mut PeerCtx<'_, '_>, frame: &[u8]) {
        let Some(seg) = Segment::decode(frame) else {
            return;
        };
        if seg.flags & flags::DGRAM != 0 {
            // UDP analogue: echo the datagram back immediately.
            self.dgrams_echoed += 1;
            let echo = Segment {
                flags: flags::DGRAM,
                conn: seg.conn,
                seq: seg.seq,
                ack: 0,
                payload: seg.payload,
            };
            ctx.send_to_host(echo.encode());
            return;
        }
        if seg.flags & flags::SYN != 0 {
            // Passive open. A SYN always starts (or restarts) the session
            // for this id: the host sends nothing else on a session until
            // its SYN is answered, and delivery is in order, so an id
            // reused after a close must not resurrect the predecessor's
            // state. Retransmitted SYNs of the current session reset
            // nothing of consequence — no request can have preceded them.
            // The timer epoch carries over so alarms armed for the old
            // session stay dead.
            let epoch = self.conns.get(&seg.conn).map_or(0, |c| c.timer_epoch);
            self.conns.insert(
                seg.conn,
                PeerConn {
                    rcv_nxt: 0,
                    serving: None,
                    snd_una: 0,
                    snd_nxt: 0,
                    fin_acked: false,
                    rto: self.cfg.rto,
                    timer_epoch: epoch,
                    timer_armed: false,
                    dup_acks: 0,
                },
            );
            let synack = Segment {
                flags: flags::SYN | flags::ACK,
                conn: seg.conn,
                seq: 0,
                ack: 0,
                payload: Vec::new(),
            };
            ctx.send_to_host(synack.encode());
            return;
        }
        let conn_id = seg.conn;
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if seg.flags & flags::DATA != 0 {
            if seg.seq == conn.rcv_nxt {
                conn.rcv_nxt += seg.payload.len() as u32;
                // The only request we understand: "GET <bytes> <seed>".
                let req = String::from_utf8_lossy(&seg.payload).to_string();
                let mut parts = req.split_whitespace();
                if parts.next() == Some("GET") {
                    let size: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                    let seed: Option<u64> = parts.next().and_then(|s| s.parse().ok());
                    if let (Some(size), Some(seed)) = (size, seed) {
                        assert!(size < u64::from(u32::MAX), "stream exceeds sequence space");
                        conn.serving = Some((seed, size));
                        conn.snd_una = 0;
                        conn.snd_nxt = 0;
                    }
                }
            }
            // Pure ACK for the request bytes.
            let ack = Segment {
                flags: flags::ACK,
                conn: conn_id,
                seq: 0,
                ack: conn.rcv_nxt,
                payload: Vec::new(),
            };
            ctx.send_to_host(ack.encode());
            self.fill_window(ctx, conn_id, false);
            return;
        }
        if seg.flags & flags::ACK != 0 {
            let Some((_, total)) = conn.serving else {
                return;
            };
            let fin_seq = total as u32;
            if seg.ack > conn.snd_una {
                conn.snd_una = seg.ack.min(fin_seq.wrapping_add(1));
                conn.rto = self.cfg.rto; // fresh progress resets backoff
                conn.dup_acks = 0;
                if seg.ack > fin_seq {
                    // Session complete: drop the state so the id can be
                    // reused by a later connection (the host recycles
                    // ids; a fresh SYN rebuilds the slot).
                    self.conns.remove(&conn_id);
                    return;
                }
                self.fill_window(ctx, conn_id, false);
            } else if seg.ack == conn.snd_una && conn.snd_nxt > conn.snd_una && !conn.fin_acked {
                // Fast retransmit: three duplicate ACKs mean a segment was
                // lost but later ones arrived — go back to snd_una now
                // instead of burning a full RTO. Fire at most once per
                // stall (counter keeps climbing past 3 without
                // re-triggering), or each retransmitted window's own dup
                // ACKs would spawn another full go-back-N — a storm.
                conn.dup_acks += 1;
                if conn.dup_acks == 3 {
                    self.retransmissions += 1;
                    self.fill_window(ctx, conn_id, true);
                }
            }
        }
    }

    fn timer(&mut self, ctx: &mut PeerCtx<'_, '_>, token: u64) {
        let conn_id = (token >> 32) as u16;
        let epoch = (token & 0xFFFF_FFFF) as u32;
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        if !conn.timer_armed || conn.timer_epoch != epoch || conn.fin_acked {
            return;
        }
        // Retransmission timeout: go back to snd_una, double the RTO.
        conn.rto = (conn.rto * 2).min(self.cfg.rto_max);
        self.retransmissions += 1;
        self.fill_window(ctx, conn_id, true);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_hw::bus::wire_to_host_channel;
    use phoenix_kernel::memory::MemoryPool;
    use phoenix_kernel::platform::{HwCtx, HwSideEffect};
    use phoenix_kernel::types::DeviceId;
    use phoenix_simcore::rng::SimRng;

    const DEV: DeviceId = DeviceId(9);
    const LATENCY: SimDuration = SimDuration::from_micros(200);

    /// Splits side effects into (frames towards the host, peer timer
    /// tokens) — the two external channels a peer can emit on.
    fn split_fx(fx: &[HwSideEffect]) -> (Vec<Vec<u8>>, Vec<u64>) {
        let mut frames = Vec::new();
        let mut timers = Vec::new();
        for e in fx {
            if let HwSideEffect::External {
                channel, payload, ..
            } = e
            {
                if *channel == wire_to_host_channel(DEV) {
                    frames.push(payload.clone());
                } else {
                    timers.push(u64::from_le_bytes(payload.clone().try_into().unwrap()));
                }
            }
        }
        (frames, timers)
    }

    fn feed(
        peer: &mut FilePeer,
        at: SimTime,
        loss_to_host: f64,
        cut_to_host: bool,
        seg: &Segment,
    ) -> (Vec<Vec<u8>>, Vec<u64>) {
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        {
            let mut hw = HwCtx::new(at, &mut mem, &mut rng, &mut fx);
            let mut ctx = PeerCtx::new(DEV, LATENCY, loss_to_host, cut_to_host, &mut hw);
            peer.frame_from_host(&mut ctx, &seg.encode());
        }
        split_fx(&fx)
    }

    fn fire_timer(
        peer: &mut FilePeer,
        at: SimTime,
        loss_to_host: f64,
        token: u64,
    ) -> (Vec<Vec<u8>>, Vec<u64>) {
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(7);
        let mut fx = Vec::new();
        {
            let mut hw = HwCtx::new(at, &mut mem, &mut rng, &mut fx);
            let mut ctx = PeerCtx::new(DEV, LATENCY, loss_to_host, false, &mut hw);
            peer.timer(&mut ctx, token);
        }
        split_fx(&fx)
    }

    /// One-way loss (peer→host fully lost, host→peer intact): the peer
    /// still receives and parses requests, its replies vanish, and once
    /// the direction heals the backed-off RTO retransmits the whole
    /// window — no byte is lost end-to-end.
    #[test]
    fn one_way_loss_to_host_recovers_via_rto_after_heal() {
        let mut peer = FilePeer::new(PeerConfig::default());
        let syn = Segment {
            flags: flags::SYN,
            conn: 1,
            seq: 0,
            ack: 0,
            payload: Vec::new(),
        };
        let (frames, _) = feed(&mut peer, SimTime::ZERO, 1.0, false, &syn);
        assert!(frames.is_empty(), "SYN-ACK must be lost on the broken leg");

        // The request still arrives: loss is asymmetric.
        let get = Segment {
            flags: flags::DATA,
            conn: 1,
            seq: 0,
            ack: 0,
            payload: b"GET 4000 5".to_vec(),
        };
        let at = SimTime::ZERO + SimDuration::from_millis(1);
        let (frames, timers) = feed(&mut peer, at, 1.0, false, &get);
        assert!(frames.is_empty(), "data segments lost towards the host");
        assert_eq!(timers.len(), 1, "an RTO must be armed for the window");
        assert_eq!(peer.retransmissions(), 0);

        // Heal the direction, fire the RTO: the full go-back-N window
        // (3 segments of a 4000-byte stream) flows to the host.
        let later = at + SimDuration::from_secs(1);
        let (frames, timers) = fire_timer(&mut peer, later, 0.0, timers[0]);
        assert_eq!(peer.retransmissions(), 1);
        assert_eq!(frames.len(), 3, "whole window retransmitted after heal");
        assert_eq!(timers.len(), 1, "window re-arms its next RTO");
        let first = Segment::decode(&frames[0]).expect("valid segment");
        assert_eq!(first.seq, 0, "go-back-N restarts from snd_una");
        assert_eq!(first.payload.len(), MSS);
    }

    /// A hard one-way partition behaves like loss-probability 1.0: the
    /// cut leg drops everything, and the peer's state still advances.
    #[test]
    fn one_way_partition_cut_drops_replies_but_state_advances() {
        let mut peer = FilePeer::new(PeerConfig::default());
        let dgram = Segment::dgram(3, 42, b"ping".to_vec());
        let (frames, _) = feed(&mut peer, SimTime::ZERO, 0.0, true, &dgram);
        assert!(frames.is_empty(), "echo dropped by the cut");
        assert_eq!(peer.dgrams_echoed(), 1, "peer still processed the ping");
    }
}
