//! The seven binary-mutation fault types of §7.2.
//!
//! Quoting the paper: "(1) change source register, (2) change destination
//! register, (3) garble pointer, (4) use current register value instead of
//! parameter passed, (5) invert termination condition of a loop, (6) flip a
//! bit in an instruction, or (7) elide an instruction. These faults emulate
//! programming errors common to operating system code."
//!
//! Each operator mutates one 32-bit instruction word of a running driver's
//! routine. Mutations may be harmless (dead code, masked values) — that is
//! expected and matches the paper, where only 347 of 12,500+ injections led
//! to a detectable crash.

use phoenix_simcore::rng::SimRng;

use crate::isa::{decode, encode, Instr};

/// The paper's seven fault types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultType {
    /// (1) Change the source register of an instruction.
    ChangeSrcReg,
    /// (2) Change the destination register of an instruction.
    ChangeDstReg,
    /// (3) Garble a pointer: corrupt the displacement of a load/store.
    GarblePointer,
    /// (4) Use the current register value instead of the parameter passed:
    /// elide the move that loads the parameter.
    StaleRegister,
    /// (5) Invert the termination condition of a loop.
    InvertLoopCondition,
    /// (6) Flip one random bit in an instruction word.
    BitFlip,
    /// (7) Elide an instruction (replace with NOP).
    ElideInstruction,
}

/// All seven, in paper order.
pub const ALL_FAULT_TYPES: [FaultType; 7] = [
    FaultType::ChangeSrcReg,
    FaultType::ChangeDstReg,
    FaultType::GarblePointer,
    FaultType::StaleRegister,
    FaultType::InvertLoopCondition,
    FaultType::BitFlip,
    FaultType::ElideInstruction,
];

impl std::fmt::Display for FaultType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultType::ChangeSrcReg => "change-src-reg",
            FaultType::ChangeDstReg => "change-dst-reg",
            FaultType::GarblePointer => "garble-pointer",
            FaultType::StaleRegister => "stale-register",
            FaultType::InvertLoopCondition => "invert-loop-condition",
            FaultType::BitFlip => "bit-flip",
            FaultType::ElideInstruction => "elide-instruction",
        };
        f.write_str(s)
    }
}

/// Record of one applied mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mutation {
    /// Which operator was applied.
    pub fault: FaultType,
    /// Index of the mutated instruction.
    pub index: usize,
    /// Word before mutation.
    pub before: u32,
    /// Word after mutation.
    pub after: u32,
}

fn has_src(i: Instr) -> bool {
    use Instr::*;
    matches!(
        i,
        Mov(..)
            | Add(..)
            | Sub(..)
            | Mul(..)
            | Div(..)
            | And(..)
            | Or(..)
            | Xor(..)
            | Load(..)
            | Store(..)
            | LoadB(..)
            | StoreB(..)
            | Jz(..)
            | Jnz(..)
            | Jlt(..)
            | Jge(..)
            | Assert(..)
    )
}

fn has_dst(i: Instr) -> bool {
    use Instr::*;
    matches!(
        i,
        MovImm(..)
            | Mov(..)
            | Add(..)
            | AddImm(..)
            | Sub(..)
            | Mul(..)
            | Div(..)
            | And(..)
            | Or(..)
            | Xor(..)
            | Shl(..)
            | Shr(..)
            | Load(..)
            | Store(..)
            | LoadB(..)
            | StoreB(..)
            | Jlt(..)
            | Jge(..)
    )
}

fn is_memory(i: Instr) -> bool {
    matches!(
        i,
        Instr::Load(..) | Instr::Store(..) | Instr::LoadB(..) | Instr::StoreB(..)
    )
}

fn is_param_load(i: Instr) -> bool {
    matches!(i, Instr::Mov(..) | Instr::MovImm(..))
}

fn is_loop_branch(i: Instr) -> bool {
    matches!(
        i,
        Instr::Jz(..) | Instr::Jnz(..) | Instr::Jlt(..) | Instr::Jge(..)
    )
}

fn candidates(program: &[u32], pred: impl Fn(Instr) -> bool) -> Vec<usize> {
    program
        .iter()
        .enumerate()
        .filter(|(_, &w)| pred(decode(w)))
        .map(|(i, _)| i)
        .collect()
}

/// Applies one fault of type `fault` to a random eligible instruction.
///
/// Returns `None` if the program has no eligible instruction for this
/// operator (e.g. no loads/stores for [`FaultType::GarblePointer`]).
pub fn apply_fault(program: &mut [u32], fault: FaultType, rng: &mut SimRng) -> Option<Mutation> {
    if program.is_empty() {
        return None;
    }
    let (idx, after) = match fault {
        FaultType::ChangeSrcReg => {
            let cs = candidates(program, has_src);
            if cs.is_empty() {
                return None;
            }
            let idx = *rng.pick(&cs);
            let w = program[idx];
            let new_src = rng.range_u64(0..8) as u32;
            (idx, (w & !(0x7 << 20)) | (new_src << 20))
        }
        FaultType::ChangeDstReg => {
            let cs = candidates(program, has_dst);
            if cs.is_empty() {
                return None;
            }
            let idx = *rng.pick(&cs);
            let w = program[idx];
            let new_dst = rng.range_u64(0..8) as u32;
            (idx, (w & !(0x7 << 23)) | (new_dst << 23))
        }
        FaultType::GarblePointer => {
            let cs = candidates(program, is_memory);
            if cs.is_empty() {
                return None;
            }
            let idx = *rng.pick(&cs);
            let w = program[idx];
            let garbled = (rng.next_u32() & 0xFFFF) | 0x8000; // push it far out
            (idx, (w & 0xFFFF_0000) | garbled)
        }
        FaultType::StaleRegister => {
            let cs = candidates(program, is_param_load);
            if cs.is_empty() {
                return None;
            }
            let idx = *rng.pick(&cs);
            (idx, encode(Instr::Nop))
        }
        FaultType::InvertLoopCondition => {
            let cs = candidates(program, is_loop_branch);
            if cs.is_empty() {
                return None;
            }
            let idx = *rng.pick(&cs);
            let inverted = match decode(program[idx]) {
                Instr::Jz(s, t) => Instr::Jnz(s, t),
                Instr::Jnz(s, t) => Instr::Jz(s, t),
                Instr::Jlt(d, s, t) => Instr::Jge(d, s, t),
                Instr::Jge(d, s, t) => Instr::Jlt(d, s, t),
                other => unreachable!("non-branch candidate {other:?}"),
            };
            (idx, encode(inverted))
        }
        FaultType::BitFlip => {
            let idx = rng.range_usize(0..program.len());
            let bit = rng.range_u64(0..32) as u32;
            (idx, program[idx] ^ (1 << bit))
        }
        FaultType::ElideInstruction => {
            let idx = rng.range_usize(0..program.len());
            (idx, encode(Instr::Nop))
        }
    };
    let before = program[idx];
    program[idx] = after;
    Some(Mutation {
        fault,
        index: idx,
        before,
        after,
    })
}

/// Applies one uniformly chosen fault type (the campaign's "inject 1
/// randomly selected fault" step). Retries with other fault types if the
/// chosen one has no eligible target.
pub fn apply_random_fault(program: &mut [u32], rng: &mut SimRng) -> Option<Mutation> {
    let mut order = ALL_FAULT_TYPES;
    // Fisher-Yates with the campaign RNG keeps runs reproducible.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.range_usize(0..i + 1));
    }
    for fault in order {
        if let Some(m) = apply_fault(program, fault, rng) {
            return Some(m);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Asm;

    fn sample_program() -> Vec<u32> {
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.emit(Instr::MovImm(2, 0));
        a.emit(Instr::MovImm(3, 0));
        a.bind(top);
        a.jge_to(3, 0, done);
        a.emit(Instr::LoadB(4, 1, 0));
        a.emit(Instr::Add(2, 4));
        a.emit(Instr::AddImm(1, 1));
        a.emit(Instr::AddImm(3, 1));
        a.jmp_to(top);
        a.bind(done);
        a.emit(Instr::Assert(2));
        a.emit(Instr::Halt);
        a.finish()
    }

    #[test]
    fn every_fault_type_applies_to_sample() {
        for fault in ALL_FAULT_TYPES {
            let mut p = sample_program();
            let orig = p.clone();
            let mut rng = SimRng::new(99).fork(&fault.to_string());
            let m = apply_fault(&mut p, fault, &mut rng)
                .unwrap_or_else(|| panic!("{fault} found no target"));
            assert_eq!(m.before, orig[m.index]);
            assert_eq!(m.after, p[m.index]);
            assert_eq!(
                p.iter().zip(&orig).filter(|(a, b)| a != b).count(),
                usize::from(m.before != m.after),
                "{fault} must touch exactly one word"
            );
        }
    }

    #[test]
    fn invert_loop_condition_flips_branch() {
        let mut p = vec![encode(Instr::Jlt(1, 2, 0)), encode(Instr::Halt)];
        let mut rng = SimRng::new(1);
        let m = apply_fault(&mut p, FaultType::InvertLoopCondition, &mut rng).unwrap();
        assert_eq!(decode(m.after), Instr::Jge(1, 2, 0));
    }

    #[test]
    fn garble_pointer_targets_memory_ops_only() {
        let mut p = vec![encode(Instr::Add(1, 2)), encode(Instr::Halt)];
        let mut rng = SimRng::new(1);
        assert!(apply_fault(&mut p, FaultType::GarblePointer, &mut rng).is_none());
    }

    #[test]
    fn elide_produces_nop() {
        let mut p = sample_program();
        let mut rng = SimRng::new(5);
        let m = apply_fault(&mut p, FaultType::ElideInstruction, &mut rng).unwrap();
        assert_eq!(decode(m.after), Instr::Nop);
    }

    #[test]
    fn random_fault_always_finds_something_on_nonempty_program() {
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            let mut p = sample_program();
            assert!(apply_random_fault(&mut p, &mut rng).is_some());
        }
    }

    #[test]
    fn empty_program_yields_no_mutation() {
        let mut p: Vec<u32> = Vec::new();
        let mut rng = SimRng::new(7);
        assert!(apply_random_fault(&mut p, &mut rng).is_none());
    }

    #[test]
    fn mutations_are_reproducible_for_a_seed() {
        let run = |seed| {
            let mut p = sample_program();
            let mut rng = SimRng::new(seed);
            (0..10)
                .map(|_| apply_random_fault(&mut p, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
