//! Umbrella crate for the Phoenix reproduction of *Failure Resilience for
//! Device Drivers* (Herder et al., DSN 2007).
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library lives
//! in [`phoenix`] and the substrate crates it re-exports.

pub use phoenix::*;
