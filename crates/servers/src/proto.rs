//! Wire protocols spoken among the system servers.
//!
//! Complements `phoenix_drivers::proto` (driver-facing protocols) with the
//! process manager, data store, reincarnation server, file system and
//! socket protocols.

use phoenix_kernel::types::Endpoint;

/// Packs an endpoint into two message params.
pub fn pack_endpoint(ep: Endpoint) -> (u64, u64) {
    (u64::from(ep.slot()), u64::from(ep.generation()))
}

/// Unpacks an endpoint from two message params.
pub fn unpack_endpoint(slot: u64, generation: u64) -> Endpoint {
    Endpoint::new(slot as u16, generation as u32)
}

/// Process manager protocol (RS ↔ PM).
pub mod pm {
    /// RS registers itself as the receiver of child-exit reports.
    /// proto: oneway
    pub const REGISTER: u32 = 0x0500;
    /// Execute a program: name in `data`, optional version in `params[0]`
    /// (0 = latest). Reply: START_REPLY.
    /// proto: request, reply=START_REPLY, params 0=version
    pub const START: u32 = 0x0501;
    /// Reply: `params[0]` = status, `params[1..3]` = endpoint.
    /// proto: reply, params 0=status, params 1/2=endpoint
    pub const START_REPLY: u32 = 0x0502;
    /// Send a signal: `params[0..2]` = endpoint, `params[2]` = signal
    /// (0 = SIGTERM, 1 = SIGKILL). Reply: KILL_REPLY.
    /// proto: request, reply=KILL_REPLY, params 0/1=endpoint, params 2=signal
    pub const KILL: u32 = 0x0503;
    /// Reply: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const KILL_REPLY: u32 = 0x0504;
    /// Child exit report to RS (one-way): `params[0..2]` = endpoint,
    /// `params[2]` = reason kind (0 exit, 1 panic, 2 exception,
    /// 3 signal), `params[3]` = detail (exit code / exception /
    /// 1 if user-originated signal), process name in `data`.
    /// proto: oneway, params 0/1=endpoint, params 2=reason, params 3=detail
    pub const SIGCHLD: u32 = 0x0505;
}

/// Data store protocol (§5.3): naming + publish-subscribe + private state
/// backup.
pub mod ds {
    /// Publish `key` (in `data`) → endpoint (`params[0..2]`). RS only.
    /// The recovery-episode correlation token (`RecoveryId`/`SpanId`)
    /// rides in spare params 2/3 so dependents can tag reintegration.
    /// proto: request, reply=ACK, params 0/1=endpoint, params 2/3=recovery-token
    pub const PUBLISH: u32 = 0x0600;
    /// Remove a published key (in `data`).
    /// proto: request, reply=ACK
    pub const RETRACT: u32 = 0x0601;
    /// Look up a key (in `data`). Reply: LOOKUP_REPLY.
    /// proto: request, reply=LOOKUP_REPLY
    pub const LOOKUP: u32 = 0x0602;
    /// Reply: `params[0]` = status, `params[1..3]` = endpoint.
    /// proto: reply, params 0=status, params 1/2=endpoint
    pub const LOOKUP_REPLY: u32 = 0x0603;
    /// Subscribe to keys matching a prefix pattern in `data` (a trailing
    /// `*` is a wildcard, e.g. `eth.*`). Reply: generic ACK.
    /// proto: request, reply=ACK
    pub const SUBSCRIBE: u32 = 0x0604;
    /// Retrieve the next pending update after a notify. Reply:
    /// CHECK_REPLY.
    /// proto: request, reply=CHECK_REPLY
    pub const CHECK: u32 = 0x0605;
    /// Reply: `params[0]` = status (OK, or EAGAIN when no update is
    /// pending), `params[1..3]` = endpoint, key in `data`; the episode
    /// correlation token of the publish rides in params 3/4.
    /// proto: reply, params 0=status, params 1/2=endpoint, params 3/4=recovery-token
    pub const CHECK_REPLY: u32 = 0x0606;
    /// Store a private record: `params[0]` = key length; `data` = key
    /// bytes followed by value bytes. Owner = the publisher name bound to
    /// the caller's endpoint.
    /// proto: request, reply=ACK, params 0=key-len
    pub const STORE: u32 = 0x0607;
    /// Retrieve a private record (key in `data`). Reply: RETRIEVE_REPLY.
    /// proto: request, reply=RETRIEVE_REPLY
    pub const RETRIEVE: u32 = 0x0608;
    /// Reply: `params[0]` = status, value in `data`.
    /// proto: reply, params 0=status
    pub const RETRIEVE_REPLY: u32 = 0x0609;
    /// Generic acknowledgement: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const ACK: u32 = 0x060A;
}

/// Reincarnation server protocol (§5): the `service` utility and
/// complaint interface.
pub mod rs {
    /// Start a service; config is carried out-of-band in the RS service
    /// table (the machine builds it), `data` = service name.
    /// proto: request, reply=ACK
    pub const UP: u32 = 0x0700;
    /// Restart a service by name (user-initiated, defect class 3/6).
    /// proto: request, reply=ACK
    pub const RESTART: u32 = 0x0701;
    /// Dynamic update: replace with the latest program version
    /// (defect class 6), `data` = service name.
    /// proto: request, reply=ACK
    pub const UPDATE: u32 = 0x0702;
    /// Stop a service, `data` = service name.
    /// proto: request, reply=ACK
    pub const DOWN: u32 = 0x0703;
    /// Complaint from an authorized server about a malfunctioning
    /// component (defect class 5). `data` = accused service name,
    /// `params[0]` = evidence kind (see [`super::evidence`]; 0 = legacy
    /// unclassified, treated as high confidence), `params[1..3]` = the
    /// accused *incarnation*'s endpoint as the accuser last saw it
    /// ((0, 0) = unspecified). RS uses the endpoint to drop ghost
    /// complaints filed against an incarnation that has already been
    /// replaced.
    /// proto: request, reply=ACK, params 0=evidence-kind, params 1/2=endpoint
    pub const COMPLAIN: u32 = 0x0704;
    /// Generic acknowledgement: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const ACK: u32 = 0x0705;
}

/// Evidence classes carried by [`rs::COMPLAIN`] (§5.1 defect class 5).
///
/// RS arbitrates complaints by class: *high-confidence* evidence is a
/// protocol violation the accuser observed directly and cannot
/// misattribute (a reply of the wrong type, a hard deadline, a checksum
/// the driver itself echoed wrongly), so a single complaint triggers the
/// policy restart — exactly the seed behavior. *Low-confidence* evidence
/// is circumstantial (a plausible-but-suspect reply, garbled frames that
/// may as well be the wire's fault) and must accumulate to a quorum
/// before RS acts, so one corrupted message can never restart a healthy
/// driver.
///
/// proto: values
pub mod evidence {
    /// The driver failed to answer within the server's deadline.
    pub const DEADLINE: u32 = 1;
    /// Reply of the wrong message type for the outstanding request.
    pub const BAD_REPLY: u32 = 2;
    /// Transfer length disagrees with the request (short/overlong).
    pub const SHORT_TRANSFER: u32 = 3;
    /// Content checksum mismatch: the driver's echoed checksum or a
    /// read-back scrub disagrees with the data it delivered. Low
    /// confidence: a single corrupted reply on a chaotic fabric can
    /// flip the echoed sum without the driver being at fault.
    pub const CRC_MISMATCH: u32 = 4;
    /// Kernel babble guard: the endpoint exceeded its unsolicited-send
    /// or reply-rate budget.
    pub const BABBLE: u32 = 5;
    /// Kernel progress watchdog: the endpoint sits on requests older
    /// than the stall threshold while its callers are still alive.
    pub const PROGRESS: u32 = 6;
    /// A reply that is well-formed but fails a soft sanity check
    /// (status/length/sum inconsistency). Low confidence.
    pub const SUSPECT_REPLY: u32 = 7;
    /// Repeated undecodable frames from a network driver. Low
    /// confidence: the wire itself corrupts frames too.
    pub const GARBLED_FRAMES: u32 = 8;
    /// Fleet evidence: a peer node's Reincarnation Server stopped
    /// advancing its audit beacon (RS dead or wedged) while the node
    /// itself still answers. Low confidence: beacons ride the lossy
    /// inter-node wire, so a quorum of accusers is required before the
    /// fleet reboots the recoverer.
    pub const RS_SILENT: u32 = 9;
    /// Fleet evidence: a peer node answered nothing at all for several
    /// watchdog periods (node crash or partition). Low confidence: an
    /// asymmetric partition makes a healthy node look dead to one
    /// observer, so conviction needs independent accusers.
    pub const NODE_UNREACHABLE: u32 = 10;

    /// Whether a single complaint of this class suffices for a restart.
    /// Legacy unclassified complaints (kind 0) keep the seed's
    /// one-complaint-restarts behavior.
    pub fn high_confidence(kind: u32) -> bool {
        !matches!(
            kind,
            CRC_MISMATCH | SUSPECT_REPLY | GARBLED_FRAMES | RS_SILENT | NODE_UNREACHABLE
        )
    }

    /// Human-readable evidence-class name (metrics / trace labels).
    pub fn name(kind: u32) -> &'static str {
        match kind {
            DEADLINE => "deadline",
            BAD_REPLY => "bad-reply",
            SHORT_TRANSFER => "short-transfer",
            CRC_MISMATCH => "crc-mismatch",
            BABBLE => "babble",
            PROGRESS => "progress",
            SUSPECT_REPLY => "suspect-reply",
            GARBLED_FRAMES => "garbled-frames",
            RS_SILENT => "rs-silent",
            NODE_UNREACHABLE => "node-unreachable",
            _ => "unclassified",
        }
    }
}

/// File system protocol (application ↔ VFS ↔ MFS).
pub mod fs {
    /// Open by path (in `data`). Reply: OPEN_REPLY. `params[7]` routes
    /// the handle to the owning file server (0 = root/MFS, 1 = FAT).
    /// proto: request, reply=OPEN_REPLY, params 7=fs-route
    pub const OPEN: u32 = 0x0800;
    /// Reply: `params[0]` = status, `params[1]` = inode, `params[2]` =
    /// size in bytes.
    /// proto: reply, params 0=status, params 1=inode, params 2=size
    pub const OPEN_REPLY: u32 = 0x0801;
    /// Read: `params[0]` = inode, `params[1]` = offset, `params[2]` = len.
    /// Reply: DATA_REPLY.
    /// proto: request, reply=DATA_REPLY, params 0=inode, params 1=offset
    /// proto: params 2=len, params 7=fs-route
    pub const READ: u32 = 0x0802;
    /// Write: `params[0]` = inode, `params[1]` = offset; payload in
    /// `data`. Reply: DATA_REPLY (bytes written in `params[1]`).
    /// proto: request, reply=DATA_REPLY, params 0=inode, params 1=offset
    /// proto: params 7=fs-route
    pub const WRITE: u32 = 0x0803;
    /// Reply: `params[0]` = status, `params[1]` = byte count, read data in
    /// `data`.
    /// proto: reply, params 0=status, params 1=result-count
    pub const DATA_REPLY: u32 = 0x0804;
}

/// Socket protocol (application ↔ INET).
pub mod sock {
    /// Open a reliable stream to the remote peer. Reply: CONNECT_REPLY.
    /// proto: request, reply=CONNECT_REPLY
    pub const CONNECT: u32 = 0x0900;
    /// Reply: `params[0]` = status, `params[1]` = connection id.
    /// proto: reply, params 0=status, params 1=conn-id
    pub const CONNECT_REPLY: u32 = 0x0901;
    /// Send on a stream: `params[0]` = conn id, payload in `data`.
    /// Reply: ACK with status.
    /// proto: request, reply=ACK, params 0=conn-id
    pub const SEND: u32 = 0x0902;
    /// Stream payload pushed to the application (one-way): `params[0]` =
    /// conn id, payload in `data`.
    /// proto: oneway, params 0=conn-id
    pub const DATA: u32 = 0x0903;
    /// Stream closed by peer (one-way): `params[0]` = conn id.
    /// proto: oneway, params 0=conn-id
    pub const CLOSED: u32 = 0x0904;
    /// Send an unreliable datagram (payload in `data`). Reply: ACK.
    /// proto: request, reply=ACK
    pub const DGRAM_SEND: u32 = 0x0905;
    /// Datagram pushed to the application (one-way, payload in `data`).
    /// proto: oneway
    pub const DGRAM_DATA: u32 = 0x0906;
    /// Generic acknowledgement: `params[0]` = status.
    /// proto: reply, params 0=status
    pub const ACK: u32 = 0x0907;
    /// Close a stream and release its connection id for reuse:
    /// `params[0]` = conn id. Idempotent; replayed closes are status 0.
    /// Reply: ACK with status.
    /// proto: request, reply=ACK, params 0=conn-id
    pub const CLOSE: u32 = 0x0908;
}
