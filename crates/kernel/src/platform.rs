//! The boundary between the kernel and the emulated hardware.
//!
//! The kernel does not know what devices exist; it forwards privileged
//! device I/O to a [`Platform`] implementation (the machine's bus) and gives
//! device models an IOMMU-checked view of process memory through [`HwCtx`].

use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::SimTime;

use crate::memory::{DmaFault, MemoryPool};
use crate::types::{DeviceId, IrqLine};

/// Side effects a device model can produce while handling I/O or timers.
#[derive(Clone, Debug, PartialEq)]
pub enum HwSideEffect {
    /// Assert an interrupt line; the kernel routes it to the registered
    /// driver as an IRQ notification.
    RaiseIrq(IrqLine),
    /// Ask for a timer callback on this device at an absolute time.
    ///
    /// By convention the owning [`DeviceId`] is encoded in the token's top
    /// 16 bits (the bus does this), so the kernel can route the callback.
    SetTimer {
        /// When the timer should fire.
        at: SimTime,
        /// Opaque token returned to the device (device id in top 16 bits).
        token: u64,
    },
    /// An event addressed to machine-level glue outside the kernel (e.g.
    /// a network frame leaving a NIC onto the wire).
    External {
        /// Delivery time.
        at: SimTime,
        /// Machine-defined channel.
        channel: u64,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// Context handed to [`Platform`] calls: the current time, the side-effect
/// sink, deterministic randomness, and IOMMU-checked DMA access to process
/// memory.
pub struct HwCtx<'a> {
    now: SimTime,
    mem: &'a mut MemoryPool,
    rng: &'a mut SimRng,
    fx: &'a mut Vec<HwSideEffect>,
}

impl<'a> HwCtx<'a> {
    /// Builds a context. Called by the kernel only.
    pub fn new(
        now: SimTime,
        mem: &'a mut MemoryPool,
        rng: &'a mut SimRng,
        fx: &'a mut Vec<HwSideEffect>,
    ) -> Self {
        HwCtx { now, mem, rng, fx }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic randomness for stochastic device behavior (loss,
    /// wedge probabilities).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Asserts an IRQ line.
    pub fn raise_irq(&mut self, line: IrqLine) {
        self.fx.push(HwSideEffect::RaiseIrq(line));
    }

    /// Requests a device timer callback at `at`.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.fx.push(HwSideEffect::SetTimer { at, token });
    }

    /// Emits a machine-level external event for immediate delivery.
    pub fn emit_external(&mut self, channel: u64, payload: Vec<u8>) {
        let at = self.now;
        self.emit_external_at(at, channel, payload);
    }

    /// Emits a machine-level external event for delivery at `at` (wire
    /// latency, media delays).
    pub fn emit_external_at(&mut self, at: SimTime, channel: u64, payload: Vec<u8>) {
        self.fx.push(HwSideEffect::External {
            at,
            channel,
            payload,
        });
    }

    /// IOMMU-checked DMA read from process memory.
    ///
    /// # Errors
    ///
    /// Faults if the device has no window, leaves its window, or the window
    /// owner died (see [`DmaFault`]).
    pub fn dma_read(&mut self, dev: DeviceId, addr: u64, buf: &mut [u8]) -> Result<(), DmaFault> {
        self.mem.dma_read(dev, addr, buf)
    }

    /// IOMMU-checked DMA write into process memory.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HwCtx::dma_read`].
    pub fn dma_write(&mut self, dev: DeviceId, addr: u64, data: &[u8]) -> Result<(), DmaFault> {
        self.mem.dma_write(dev, addr, data)
    }
}

/// The hardware platform as seen by the kernel.
///
/// Implemented by the machine (the composition layer) on top of the device
/// bus from `phoenix-hw`. All methods receive an [`HwCtx`] so device models
/// can raise IRQs, schedule timers and perform checked DMA.
pub trait Platform {
    /// Reads a device register.
    fn io_read(&mut self, dev: DeviceId, reg: u16, ctx: &mut HwCtx<'_>) -> u32;

    /// Writes a device register.
    fn io_write(&mut self, dev: DeviceId, reg: u16, value: u32, ctx: &mut HwCtx<'_>);

    /// Buffered port input (MINIX `sys_sdevio`): reads `len` bytes from a
    /// data port in one kernel call. Default: byte-wise via [`Platform::io_read`].
    fn io_read_block(
        &mut self,
        dev: DeviceId,
        reg: u16,
        len: usize,
        ctx: &mut HwCtx<'_>,
    ) -> Vec<u8> {
        (0..len)
            .map(|_| self.io_read(dev, reg, ctx) as u8)
            .collect()
    }

    /// Buffered port output (MINIX `sys_sdevio`): writes `data` to a data
    /// port in one kernel call. Default: byte-wise via [`Platform::io_write`].
    fn io_write_block(&mut self, dev: DeviceId, reg: u16, data: &[u8], ctx: &mut HwCtx<'_>) {
        for &b in data {
            self.io_write(dev, reg, u32::from(b), ctx);
        }
    }

    /// Delivers a previously requested device timer.
    fn timer(&mut self, dev: DeviceId, token: u64, ctx: &mut HwCtx<'_>);

    /// Delivers a machine-level external event scheduled via
    /// [`crate::system::System::schedule_external`].
    fn external(&mut self, channel: u64, payload: Vec<u8>, ctx: &mut HwCtx<'_>);

    /// Whether a device id exists on the bus.
    fn has_device(&self, dev: DeviceId) -> bool;
}

/// A platform with no devices; useful in tests that exercise only IPC.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPlatform;

impl Platform for NullPlatform {
    fn io_read(&mut self, _dev: DeviceId, _reg: u16, _ctx: &mut HwCtx<'_>) -> u32 {
        0
    }
    fn io_write(&mut self, _dev: DeviceId, _reg: u16, _value: u32, _ctx: &mut HwCtx<'_>) {}
    fn timer(&mut self, _dev: DeviceId, _token: u64, _ctx: &mut HwCtx<'_>) {}
    fn external(&mut self, _channel: u64, _payload: Vec<u8>, _ctx: &mut HwCtx<'_>) {}
    fn has_device(&self, _dev: DeviceId) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{IommuWindow, MemoryPool};
    use crate::types::Endpoint;

    #[test]
    fn hwctx_collects_side_effects() {
        let mut mem = MemoryPool::new();
        let mut rng = SimRng::new(1);
        let mut fx = Vec::new();
        let mut ctx = HwCtx::new(SimTime::from_micros(9), &mut mem, &mut rng, &mut fx);
        ctx.raise_irq(5);
        ctx.set_timer(SimTime::from_micros(20), 42);
        ctx.emit_external(1, vec![0xab]);
        assert_eq!(ctx.now(), SimTime::from_micros(9));
        assert_eq!(fx.len(), 3);
        assert_eq!(fx[0], HwSideEffect::RaiseIrq(5));
        assert!(
            matches!(fx[2], HwSideEffect::External { at, .. } if at == SimTime::from_micros(9))
        );
    }

    #[test]
    fn hwctx_dma_goes_through_iommu() {
        let ep = Endpoint::new(0, 1);
        let dev = DeviceId(1);
        let mut mem = MemoryPool::new();
        mem.attach(ep, 64);
        mem.iommu_map(
            dev,
            Some(IommuWindow {
                owner: ep,
                base: 0,
                offset: 0,
                len: 64,
            }),
        )
        .unwrap();
        let mut rng = SimRng::new(1);
        let mut fx = Vec::new();
        let mut ctx = HwCtx::new(SimTime::ZERO, &mut mem, &mut rng, &mut fx);
        ctx.dma_write(dev, 3, b"ok").unwrap();
        let mut buf = [0u8; 2];
        ctx.dma_read(dev, 3, &mut buf).unwrap();
        assert_eq!(&buf, b"ok");
        assert_eq!(
            ctx.dma_read(DeviceId(2), 0, &mut buf),
            Err(DmaFault::NoWindow)
        );
    }
}
