//! Bounded execution tracing.
//!
//! Components emit trace events tagged with the originating component's name
//! and a severity. Tests use the ring to assert *ordering* properties of the
//! recovery procedure (e.g. "the data store published the new endpoint
//! before the file server reissued pending I/O", §5.3).

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Severity of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// High-volume events (every message, every DMA transfer).
    Debug,
    /// Normal operational milestones (driver started, transfer done).
    Info,
    /// Something failed but the system is handling it (driver crash).
    Warn,
    /// Unrecoverable problems (recovery itself failed).
    Error,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the event was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting component, e.g. `"rs"` or `"driver.rtl8139"`.
    pub component: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {:>5} {}] {}",
            self.at, self.level, self.component, self.message
        )
    }
}

/// A bounded ring buffer of trace events.
///
/// When full, the oldest events are discarded. A minimum level filters
/// high-volume debug traffic out at record time.
#[derive(Debug)]
pub struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    min_level: TraceLevel,
    dropped: u64,
}

impl Default for TraceRing {
    fn default() -> Self {
        Self::new(65_536)
    }
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events at level
    /// [`TraceLevel::Info`] and above.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            min_level: TraceLevel::Info,
            dropped: 0,
        }
    }

    /// Sets the minimum recorded level.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Records an event if it passes the level filter.
    pub fn emit(&mut self, at: SimTime, level: TraceLevel, component: &str, message: String) {
        if level < self.min_level {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            level,
            component: component.to_string(),
            message,
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Index of the first retained event whose message contains `needle`,
    /// searching from `start`. Tests use this to assert event ordering.
    pub fn find_from(&self, start: usize, needle: &str) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .skip(start)
            .find(|(_, e)| e.message.contains(needle))
            .map(|(i, _)| i)
    }

    /// Convenience: `find_from(0, needle)`.
    pub fn find(&self, needle: &str) -> Option<usize> {
        self.find_from(0, needle)
    }

    /// Renders all retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ring: &mut TraceRing, us: u64, level: TraceLevel, msg: &str) {
        ring.emit(SimTime::from_micros(us), level, "test", msg.to_string());
    }

    #[test]
    fn records_and_renders() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Info, "driver started");
        ev(&mut r, 2, TraceLevel::Warn, "driver crashed");
        assert_eq!(r.len(), 2);
        let s = r.render();
        assert!(s.contains("driver started"));
        assert!(s.contains("WARN"));
    }

    #[test]
    fn level_filter_drops_debug_by_default() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Debug, "noisy");
        assert!(r.is_empty());
        r.set_min_level(TraceLevel::Debug);
        ev(&mut r, 2, TraceLevel::Debug, "kept");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = TraceRing::new(2);
        ev(&mut r, 1, TraceLevel::Info, "a");
        ev(&mut r, 2, TraceLevel::Info, "b");
        ev(&mut r, 3, TraceLevel::Info, "c");
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert!(r.find("a").is_none());
        assert!(r.find("b").is_some());
    }

    #[test]
    fn find_from_orders_events() {
        let mut r = TraceRing::new(8);
        ev(&mut r, 1, TraceLevel::Info, "publish endpoint");
        ev(&mut r, 2, TraceLevel::Info, "reissue pending io");
        let pub_idx = r.find("publish endpoint").unwrap();
        let redo_idx = r.find_from(pub_idx, "reissue pending io").unwrap();
        assert!(redo_idx > pub_idx);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TraceRing::new(0);
    }
}
