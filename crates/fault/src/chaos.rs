//! Deterministic chaos plans for the kernel's IPC fabric.
//!
//! Where [`crate::mutate`] injects faults *inside* driver hot paths (the
//! paper's §7.2 SWIFI methodology), a [`ChaosPlan`] attacks the seams
//! *between* components: it drops, delays, duplicates and bit-corrupts
//! messages per endpoint name and per call class, stalls endpoints so the
//! heartbeat watchdog sees misses, and kills fresh incarnations mid-recovery
//! (the ReHype scenario — the recovery machinery itself must survive
//! failures). Plans implement the kernel's
//! [`ChaosInterposer`](phoenix_kernel::chaos::ChaosInterposer) hook and draw
//! all randomness from the kernel-forked [`SimRng`], so a chaos campaign is
//! a pure function of the run seed.
//!
//! # Example
//!
//! ```
//! use phoenix_fault::chaos::{ChaosPlan, ChaosRule, NameFilter};
//! use phoenix_simcore::time::SimDuration;
//!
//! // 5% drop + occasional 300µs delays on everything sent to drivers,
//! // and kill the first "eth.rtl8139" respawn 1ms into its recovery.
//! let plan = ChaosPlan::new()
//!     .rule(
//!         ChaosRule::new()
//!             .to(NameFilter::prefix("eth."))
//!             .drop(0.05)
//!             .delay(0.10, SimDuration::from_micros(300)),
//!     )
//!     .kill_during_recovery(NameFilter::exact("eth.rtl8139"), 0, 1, SimDuration::from_millis(1));
//! ```

use phoenix_kernel::chaos::{ChaosInterposer, ChaosVerdict, IpcClass, IpcEnvelope};
use phoenix_kernel::types::Endpoint;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::{SimDuration, SimTime};

/// Matches component names (the stable process names, e.g. `"eth.rtl8139"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameFilter {
    /// Matches every name.
    Any,
    /// Matches exactly this name.
    Exact(String),
    /// Matches names starting with this prefix (`"eth."` matches all NICs).
    Prefix(String),
}

impl NameFilter {
    /// Exact-match filter.
    pub fn exact(name: &str) -> Self {
        NameFilter::Exact(name.to_string())
    }

    /// Prefix-match filter.
    pub fn prefix(prefix: &str) -> Self {
        NameFilter::Prefix(prefix.to_string())
    }

    /// Whether `name` matches.
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NameFilter::Any => true,
            NameFilter::Exact(n) => n == name,
            NameFilter::Prefix(p) => name.starts_with(p.as_str()),
        }
    }
}

/// One chaos rule: a (from, to, class) selector plus per-fault
/// probabilities. The first matching rule of a plan judges a delivery.
#[derive(Debug, Clone)]
pub struct ChaosRule {
    /// Sender name filter.
    pub from: NameFilter,
    /// Destination name filter.
    pub to: NameFilter,
    /// Call classes this rule applies to (`None` = all four).
    pub classes: Option<Vec<IpcClass>>,
    /// Probability of dropping the delivery.
    pub drop_p: f64,
    /// Probability of delaying the delivery.
    pub delay_p: f64,
    /// Maximum extra delay (uniform in `[1µs, max]`).
    pub max_delay: SimDuration,
    /// Probability of duplicating the delivery.
    pub dup_p: f64,
    /// Probability of flipping one payload bit.
    pub corrupt_p: f64,
}

impl ChaosRule {
    /// A rule matching everything with all probabilities zero.
    pub fn new() -> Self {
        ChaosRule {
            from: NameFilter::Any,
            to: NameFilter::Any,
            classes: None,
            drop_p: 0.0,
            delay_p: 0.0,
            max_delay: SimDuration::from_micros(200),
            dup_p: 0.0,
            corrupt_p: 0.0,
        }
    }

    /// Restricts to deliveries from matching senders.
    pub fn from(mut self, f: NameFilter) -> Self {
        self.from = f;
        self
    }

    /// Restricts to deliveries to matching destinations.
    pub fn to(mut self, f: NameFilter) -> Self {
        self.to = f;
        self
    }

    /// Restricts to the given call classes.
    pub fn classes(mut self, classes: &[IpcClass]) -> Self {
        self.classes = Some(classes.to_vec());
        self
    }

    /// Sets the drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the delay probability and maximum extra delay.
    pub fn delay(mut self, p: f64, max: SimDuration) -> Self {
        self.delay_p = p;
        self.max_delay = max;
        self
    }

    /// Sets the duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the bit-corruption probability.
    pub fn corrupt(mut self, p: f64) -> Self {
        self.corrupt_p = p;
        self
    }

    fn applies(&self, env: &IpcEnvelope<'_>) -> bool {
        self.from.matches(env.from_name)
            && self.to.matches(env.to_name)
            && self
                .classes
                .as_ref()
                .is_none_or(|cs| cs.contains(&env.class))
    }

    /// Scales all probabilities by `factor` (clamped to `[0, 1]` at draw
    /// time), used by intensity sweeps.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.drop_p *= factor;
        self.delay_p *= factor;
        self.dup_p *= factor;
        self.corrupt_p *= factor;
        self
    }
}

impl Default for ChaosRule {
    fn default() -> Self {
        ChaosRule::new()
    }
}

/// A time window during which deliveries to matching endpoints are parked
/// (released at the window's end). Heartbeat pings pile up undelivered, so
/// the reincarnation server sees consecutive misses — defect class 4 without
/// touching the driver's code.
#[derive(Debug, Clone)]
pub struct StallWindow {
    /// Destination names to stall.
    pub target: NameFilter,
    /// Window start (absolute simulation time).
    pub start: SimTime,
    /// Window end; held deliveries are released here.
    pub until: SimTime,
}

/// Kills a fresh incarnation of a matching program shortly after it spawns.
/// With `skip` > 0 the first spawns pass unharmed, so the kill lands on the
/// Nth restart — i.e. *inside* an ongoing recovery.
#[derive(Debug, Clone)]
pub struct RecoveryKill {
    /// Program/process names to target.
    pub program: NameFilter,
    /// Matching spawns to let pass before striking.
    pub skip: u32,
    /// Maximum number of kills (0 disarms the trigger).
    pub count: u32,
    /// How long after the spawn the kill lands.
    pub delay: SimDuration,
}

/// A complete chaos policy: ordered rules, stall windows, recovery kills.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    rules: Vec<ChaosRule>,
    stalls: Vec<StallWindow>,
    kills: Vec<RecoveryKill>,
}

impl ChaosPlan {
    /// An empty plan (delivers everything).
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Appends a rule. Rules are consulted in insertion order; the first
    /// match judges a delivery.
    pub fn rule(mut self, rule: ChaosRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a stall window.
    pub fn stall(mut self, target: NameFilter, start: SimTime, until: SimTime) -> Self {
        self.stalls.push(StallWindow {
            target,
            start,
            until,
        });
        self
    }

    /// Adds a crash-during-recovery trigger.
    pub fn kill_during_recovery(
        mut self,
        program: NameFilter,
        skip: u32,
        count: u32,
        delay: SimDuration,
    ) -> Self {
        self.kills.push(RecoveryKill {
            program,
            skip,
            count,
            delay,
        });
        self
    }

    /// A preset aimed at driver traffic: `intensity` 1.0 means 10% drop,
    /// 10% delay (≤ 500µs), 5% duplication and 2% corruption on messages
    /// to and from drivers (`eth.*`, `blk.*`, `chr.*`); scale down for
    /// gentler runs. System servers are left untouched so the campaign
    /// isolates driver-path resilience, as §6.1 does.
    pub fn driver_traffic(intensity: f64) -> Self {
        let targets = ["eth.", "blk.", "chr."];
        let mut plan = ChaosPlan::new();
        for t in targets {
            plan = plan
                .rule(
                    ChaosRule::new()
                        .to(NameFilter::prefix(t))
                        .drop(0.10)
                        .delay(0.10, SimDuration::from_micros(500))
                        .duplicate(0.05)
                        .corrupt(0.02)
                        .scaled(intensity),
                )
                .rule(
                    ChaosRule::new()
                        .from(NameFilter::prefix(t))
                        .drop(0.10)
                        .delay(0.10, SimDuration::from_micros(500))
                        .duplicate(0.05)
                        .corrupt(0.02)
                        .scaled(intensity),
                );
        }
        plan
    }

    /// Whether any recovery-kill trigger is still armed.
    pub fn kills_armed(&self) -> bool {
        self.kills.iter().any(|k| k.count > 0)
    }
}

impl ChaosInterposer for ChaosPlan {
    fn on_ipc(&mut self, now: SimTime, env: &IpcEnvelope<'_>, rng: &mut SimRng) -> ChaosVerdict {
        // Stall windows outrank probabilistic rules: a stalled endpoint
        // receives nothing until the window closes.
        for s in &self.stalls {
            if s.target.matches(env.to_name) && now >= s.start && now < s.until {
                return ChaosVerdict::HoldUntil(s.until);
            }
        }
        let Some(rule) = self.rules.iter().find(|r| r.applies(env)) else {
            return ChaosVerdict::Deliver;
        };
        // Fixed draw order keeps the stream stable across runs.
        if rng.chance(rule.drop_p) {
            return ChaosVerdict::Drop;
        }
        if rng.chance(rule.dup_p) {
            let extra =
                SimDuration::from_micros(rng.range_u64(1..rule.max_delay.as_micros().max(2)));
            return ChaosVerdict::Duplicate { extra_delay: extra };
        }
        if rng.chance(rule.corrupt_p) {
            return ChaosVerdict::Corrupt;
        }
        if rng.chance(rule.delay_p) {
            let extra =
                SimDuration::from_micros(rng.range_u64(1..rule.max_delay.as_micros().max(2)));
            return ChaosVerdict::Delay(extra);
        }
        ChaosVerdict::Deliver
    }

    fn on_spawn(
        &mut self,
        _now: SimTime,
        name: &str,
        _ep: Endpoint,
        _rng: &mut SimRng,
    ) -> Option<SimDuration> {
        for k in &mut self.kills {
            if !k.program.matches(name) {
                continue;
            }
            if k.skip > 0 {
                k.skip -= 1;
                continue;
            }
            if k.count > 0 {
                k.count -= 1;
                return Some(k.delay);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(from: &'a str, to: &'a str, class: IpcClass) -> IpcEnvelope<'a> {
        IpcEnvelope {
            from: Endpoint::new(1, 1),
            to: Endpoint::new(2, 1),
            from_name: from,
            to_name: to,
            class,
        }
    }

    #[test]
    fn name_filters() {
        assert!(NameFilter::Any.matches("anything"));
        assert!(NameFilter::exact("rs").matches("rs"));
        assert!(!NameFilter::exact("rs").matches("rs2"));
        assert!(NameFilter::prefix("eth.").matches("eth.rtl8139"));
        assert!(!NameFilter::prefix("eth.").matches("disk.ahci"));
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let mut plan = ChaosPlan::new();
        let mut rng = SimRng::new(1);
        for class in IpcClass::ALL {
            let v = plan.on_ipc(SimTime::ZERO, &env("a", "b", class), &mut rng);
            assert_eq!(v, ChaosVerdict::Deliver);
        }
    }

    #[test]
    fn verdict_stream_is_deterministic() {
        let mk = || {
            ChaosPlan::new().rule(
                ChaosRule::new()
                    .to(NameFilter::prefix("eth."))
                    .drop(0.3)
                    .delay(0.3, SimDuration::from_micros(100))
                    .duplicate(0.2)
                    .corrupt(0.2),
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut ra = SimRng::new(42);
        let mut rb = SimRng::new(42);
        for i in 0..500 {
            let t = SimTime::from_micros(i);
            let va = a.on_ipc(t, &env("inet", "eth.rtl8139", IpcClass::Request), &mut ra);
            let vb = b.on_ipc(t, &env("inet", "eth.rtl8139", IpcClass::Request), &mut rb);
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn rules_respect_class_and_name_selectors() {
        let mut plan = ChaosPlan::new().rule(
            ChaosRule::new()
                .to(NameFilter::exact("eth.rtl8139"))
                .classes(&[IpcClass::Notify])
                .drop(1.0),
        );
        let mut rng = SimRng::new(7);
        // Matching class + name: always dropped.
        let v = plan.on_ipc(
            SimTime::ZERO,
            &env("rs", "eth.rtl8139", IpcClass::Notify),
            &mut rng,
        );
        assert_eq!(v, ChaosVerdict::Drop);
        // Wrong class: untouched.
        let v = plan.on_ipc(
            SimTime::ZERO,
            &env("rs", "eth.rtl8139", IpcClass::Send),
            &mut rng,
        );
        assert_eq!(v, ChaosVerdict::Deliver);
        // Wrong destination: untouched.
        let v = plan.on_ipc(
            SimTime::ZERO,
            &env("rs", "disk.ahci", IpcClass::Notify),
            &mut rng,
        );
        assert_eq!(v, ChaosVerdict::Deliver);
    }

    #[test]
    fn stall_window_holds_until_end() {
        let start = SimTime::from_micros(100);
        let until = SimTime::from_micros(500);
        let mut plan = ChaosPlan::new().stall(NameFilter::exact("eth.rtl8139"), start, until);
        let mut rng = SimRng::new(9);
        let e = env("rs", "eth.rtl8139", IpcClass::Notify);
        assert_eq!(
            plan.on_ipc(SimTime::from_micros(50), &e, &mut rng),
            ChaosVerdict::Deliver
        );
        assert_eq!(
            plan.on_ipc(SimTime::from_micros(100), &e, &mut rng),
            ChaosVerdict::HoldUntil(until)
        );
        assert_eq!(
            plan.on_ipc(SimTime::from_micros(499), &e, &mut rng),
            ChaosVerdict::HoldUntil(until)
        );
        assert_eq!(
            plan.on_ipc(SimTime::from_micros(500), &e, &mut rng),
            ChaosVerdict::Deliver
        );
    }

    #[test]
    fn recovery_kill_skips_then_strikes_then_disarms() {
        let mut plan = ChaosPlan::new().kill_during_recovery(
            NameFilter::exact("eth.rtl8139"),
            1,
            2,
            SimDuration::from_millis(1),
        );
        let mut rng = SimRng::new(3);
        let ep = Endpoint::new(4, 1);
        // First spawn passes (skip).
        assert!(plan
            .on_spawn(SimTime::ZERO, "eth.rtl8139", ep, &mut rng)
            .is_none());
        // Non-matching programs never trigger.
        assert!(plan
            .on_spawn(SimTime::ZERO, "disk.ahci", ep, &mut rng)
            .is_none());
        // Next two matching spawns are killed.
        assert_eq!(
            plan.on_spawn(SimTime::ZERO, "eth.rtl8139", ep, &mut rng),
            Some(SimDuration::from_millis(1))
        );
        assert!(plan.kills_armed());
        assert_eq!(
            plan.on_spawn(SimTime::ZERO, "eth.rtl8139", ep, &mut rng),
            Some(SimDuration::from_millis(1))
        );
        // Disarmed afterwards.
        assert!(!plan.kills_armed());
        assert!(plan
            .on_spawn(SimTime::ZERO, "eth.rtl8139", ep, &mut rng)
            .is_none());
    }

    #[test]
    fn driver_traffic_preset_spares_servers() {
        let mut plan = ChaosPlan::driver_traffic(1.0);
        let mut rng = SimRng::new(11);
        for _ in 0..200 {
            let v = plan.on_ipc(SimTime::ZERO, &env("pm", "rs", IpcClass::Send), &mut rng);
            assert_eq!(
                v,
                ChaosVerdict::Deliver,
                "server-to-server traffic must pass"
            );
        }
        // Driver-bound traffic does get judged (some verdict other than
        // Deliver shows up over 200 draws at 27% total fault probability).
        let mut touched = false;
        for _ in 0..200 {
            let v = plan.on_ipc(
                SimTime::ZERO,
                &env("inet", "eth.rtl8139", IpcClass::Send),
                &mut rng,
            );
            if v != ChaosVerdict::Deliver {
                touched = true;
            }
        }
        assert!(touched);
    }
}
