//! Character device drivers: printer, audio, and SCSI CD burner.
//!
//! These drivers cannot be transparently recovered (§6.3): "it is
//! impossible to tell whether data was lost" across a crash, so errors are
//! pushed to the application layer. The drivers themselves are ordinary
//! stateless request servers; what makes them special is what their
//! *clients* must do after a failure (reissue the print job, tolerate a
//! hiccup, or tell the user the disc is ruined).
//!
//! With the `phoenix-ckpt` subsystem enabled (`with_checkpointing`), the
//! stream drivers (printer, audio) and the input driver (keyboard)
//! escape that verdict: requests tagged with a write-ahead-log sequence
//! and stream offset are deduplicated against a consumed-progress
//! cursor, the cursor is checkpointed to the data store at quiescent
//! points, and a restarted incarnation lazily restores it before serving
//! its first request — making "how much of the stream was consumed"
//! decidable. The CD burner deliberately stays uncheckpointed: its side
//! effect (the laser) is external and unrepeatable, so a half-burned
//! disc remains the paper's irrecoverable case.

use phoenix_ckpt::proto::{ack_reply, request_wal};
use phoenix_ckpt::{ConsumedCursor, DriverCkpt, RestoreEvent, SpareTail};
use phoenix_hw::chardev::{audio_regs, printer_regs, scsi_cmd, scsi_regs, scsi_status};
use phoenix_hw::uart::uart_regs;
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, DeviceId, Endpoint, IpcError, IrqLine, Message};
use phoenix_simcore::time::SimDuration;
use phoenix_simcore::trace::{RecoveryId, SpanId, TraceLevel};

use crate::libdriver::{DriverLogic, FaultPort, GuardedRoutine};
use crate::proto::{cdev, drv, status};
use crate::routines;

/// Emits the timeline `replay` event the first time a restored driver
/// serves a logged request — the phase anchor between the episode's
/// publish and the client's byte-exact resumption.
fn emit_replay_event(ctx: &mut Ctx<'_>, ckpt: &mut DriverCkpt, offset: u64, dup_bytes: u64) {
    let Some((rid, span)) = ckpt.take_replay_tag() else {
        return;
    };
    let ev = ctx
        .event(
            TraceLevel::Info,
            "serving replayed log entries past restored watermark".to_string(),
        )
        .with_field("ev", "replay")
        .with_field("offset", offset)
        .with_field("dup_bytes", dup_bytes)
        .in_recovery(rid)
        .with_parent_opt(span);
    ctx.trace_event(ev);
}

/// Alarm token driving a warm spare's tail polls.
const TOK_TAIL: u64 = 0x7A11;

/// The dormant half of a hot-standby stream driver: spawned by RS beside
/// a healthy primary under the `standby.<name>` identity, it stays off
/// the device entirely — no IRQ registration, no fault-port publication,
/// no device init — and shadows the primary's checkpoint record through
/// sequence-gated tail polls. At `drv::PROMOTE` the host driver runs its
/// deferred device bring-up and adopts the tailed watermark, skipping
/// the cold path's execute + restore round-trips.
struct StandbyRole {
    tail: SpareTail,
    period: SimDuration,
    polling: bool,
}

impl StandbyRole {
    fn new(ds: Endpoint, key: &str) -> Self {
        StandbyRole {
            tail: SpareTail::new(ds, key),
            period: SimDuration::from_millis(100),
            polling: false,
        }
    }

    /// Handles `drv::STANDBY`: adopt RS's tail-poll period and start
    /// polling — the cadence stays a policy decision, not a driver one.
    // analyze:recovery-root
    fn on_standby(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let us = msg.param(0);
        if us > 0 {
            self.period = SimDuration::from_micros(us);
        }
        if !self.polling {
            self.polling = true;
            self.arm(ctx);
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.set_alarm(self.period, TOK_TAIL).is_err() {
            ctx.metrics().incr("ckpt.tail_alarm_failed");
            self.polling = false;
        }
    }

    /// Tail alarm tick: poll the store, then re-arm.
    // analyze:recovery-root
    fn on_alarm(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOK_TAIL || !self.polling {
            return;
        }
        self.tail.poll(ctx);
        self.arm(ctx);
    }
}

/// Decodes RS's promote message into the recovery-episode tag the first
/// served request will stamp on its `replay` timeline event.
fn promote_token(msg: &Message) -> (Option<RecoveryId>, Option<SpanId>) {
    (
        RecoveryId::from_wire(msg.param(0)),
        SpanId::from_wire(msg.param(1)),
    )
}

/// The primary service name of a (possibly standby) incarnation: a warm
/// spare named `standby.chr.printer` goes live as `chr.printer`.
fn primary_name(ctx: &Ctx<'_>) -> String {
    let name = ctx.self_name();
    name.strip_prefix("standby.").unwrap_or(name).to_string()
}

/// Printer driver: feeds the device FIFO, applying backpressure by
/// accepting only as many bytes as the FIFO has room for. The client
/// (`lpd`) loops until everything is accepted.
pub struct PrinterDriver {
    dev: DeviceId,
    irq: IrqLine,
    routine: GuardedRoutine,
    fault_port: FaultPort,
    /// Checkpoint client; `None` = the paper's original error-push mode.
    ckpt: Option<DriverCkpt>,
    /// Bytes committed into the device FIFO (the consumed watermark).
    cursor: ConsumedCursor,
    /// Warm-spare state; `Some` while dormant, cleared at promotion.
    standby: Option<StandbyRole>,
}

impl PrinterDriver {
    /// Creates the printer driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        PrinterDriver {
            dev,
            irq,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
            ckpt: None,
            cursor: ConsumedCursor::new(),
            standby: None,
        }
    }

    /// Enables checkpoint/replay support: the consumed watermark is
    /// snapshotted to the data store after every commit, and logged
    /// requests are deduplicated against it after a restart.
    pub fn with_checkpointing(mut self, ds: Endpoint) -> Self {
        self.ckpt = Some(DriverCkpt::new(ds, "printer"));
        self
    }

    /// Configures this incarnation as a warm spare (implies
    /// checkpointing): it boots dormant — off the device — and goes live
    /// only on RS's promote message.
    pub fn standby(mut self, ds: Endpoint) -> Self {
        self = self.with_checkpointing(ds);
        self.standby = Some(StandbyRole::new(ds, "printer"));
        self
    }

    /// Device bring-up, shared by a primary's init and a spare's
    /// promotion. Stays panic-free: it runs on the recovery path.
    fn go_live(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(&primary_name(ctx), self.routine.live());
        if ctx.irq_enable(self.irq).is_err() {
            ctx.metrics().incr("drv.irq_enable_failed");
        }
    }

    /// Handles `drv::PROMOTE`: deferred device bring-up, fault-port
    /// publication under the primary name, and warm adoption of the
    /// tailed watermark — no restore round-trip is ever issued.
    // analyze:recovery-root
    fn promote(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let Some(role) = self.standby.take() else {
            return; // already live (duplicate promote)
        };
        let (rid, span) = promote_token(msg);
        if let Some(mark) = role.tail.watermark() {
            self.cursor.restore(mark);
        }
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.adopt_warm(role.tail.seq(), rid, span);
        }
        self.go_live(ctx);
        ctx.metrics().incr("drv.promotions");
        let ev = ctx
            .event(TraceLevel::Info, "printer standby went live".to_string())
            .with_field("ev", "promote_live")
            .with_field("seq", role.tail.seq())
            .in_recovery_opt(rid)
            .with_parent_opt(span);
        ctx.trace_event(ev);
    }

    /// Serves a validated WRITE (the fault point has already run).
    /// `csum` is the payload byte-sum the VM routine computed; it is
    /// echoed in the reply (`param[2]` = 1 + sum) so the VFS sentinel can
    /// verify the driver processed the payload it was sent.
    fn serve_write(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message, csum: u32) {
        ctx.metrics().incr("cdev.writes");
        let data = &msg.data;
        let wal = if self.ckpt.is_some() {
            request_wal(msg)
        } else {
            None
        };
        let Some((seq, offset)) = wal else {
            // Legacy path: accept what fits, let the client loop.
            let free = ctx
                .devio_read(self.dev, printer_regs::FIFO_FREE)
                .unwrap_or(0) as usize;
            let take = data.len().min(free);
            if take > 0 {
                let _ = ctx.devio_write_block(self.dev, printer_regs::DATA, &data[..take]);
            }
            let st = if take > 0 { status::OK } else { status::EAGAIN };
            let _ = ctx.reply(
                call,
                Message::new(cdev::REPLY)
                    .with_param(0, st)
                    .with_param(1, take as u64)
                    .with_param(2, 1 + u64::from(csum)),
            );
            return;
        };
        let plan = self.cursor.plan(offset, data);
        if plan.dup_bytes > 0 {
            ctx.metrics().add("ckpt.dedup_bytes", plan.dup_bytes);
        }
        if plan.gap_bytes > 0 {
            // Watermark lost (missing/corrupt snapshot): the caller's log
            // is authoritative — it only ever acks committed bytes.
            ctx.metrics().incr("ckpt.watermark_jumps");
        }
        let mut accepted = plan.dup_bytes;
        if !plan.fresh.is_empty() {
            let free = ctx
                .devio_read(self.dev, printer_regs::FIFO_FREE)
                .unwrap_or(0) as usize;
            let take = plan.fresh.len().min(free);
            if take > 0 {
                let _ = ctx.devio_write_block(self.dev, printer_regs::DATA, &plan.fresh[..take]);
                self.cursor.commit_at(plan.start, take as u64);
            }
            accepted += take as u64;
        }
        let consumed = self.cursor.committed();
        if let Some(ckpt) = self.ckpt.as_mut() {
            emit_replay_event(ctx, ckpt, offset, plan.dup_bytes);
            if accepted > plan.dup_bytes {
                // Quiescent point: the commit is complete, ack not yet
                // sent — snapshot before acknowledging.
                ckpt.save(ctx, consumed.to_le_bytes().to_vec());
            }
        }
        let st = if accepted > 0 {
            status::OK
        } else {
            status::EAGAIN
        };
        let reply = Message::new(cdev::REPLY)
            .with_param(0, st)
            .with_param(1, accepted)
            .with_param(2, 1 + u64::from(csum));
        let _ = ctx.reply(call, ack_reply(reply, consumed, seq));
    }
}

impl DriverLogic for PrinterDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.standby.is_some() {
            // Dormant spare: the primary owns the device — stay off it.
            ctx.trace(TraceLevel::Info, "printer standby dormant".to_string());
            return;
        }
        self.go_live(ctx);
        ctx.trace(TraceLevel::Info, "printer driver ready".to_string());
    }

    fn message(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        match msg.mtype {
            drv::STANDBY => {
                if let Some(role) = self.standby.as_mut() {
                    role.on_standby(ctx, msg);
                }
            }
            drv::PROMOTE => self.promote(ctx, msg),
            _ => {}
        }
    }

    fn alarm(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(role) = self.standby.as_mut() {
            role.on_alarm(ctx, token);
        }
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::WRITE => {
                if msg.data.is_empty() {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return; // served after the snapshot restore
                    }
                }
                let data = &msg.data;
                let vm = self.routine.run(ctx, data.len().max(16) + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                let Some(vm) = vm else {
                    return; // dying
                };
                let csum = vm.regs[routines::reg::RES as usize];
                self.serve_write(ctx, call, msg, csum);
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, result: &Result<Message, IpcError>) {
        if let Some(role) = self.standby.as_mut() {
            if role.tail.on_reply(ctx, call, result) {
                return;
            }
        }
        let Some(ckpt) = self.ckpt.as_mut() else {
            return;
        };
        let Some((event, parked)) = ckpt.on_reply(ctx, call, result) else {
            return;
        };
        if let RestoreEvent::Restored(snap) = &event {
            if let Some(mark) = snap.as_watermark() {
                self.cursor.restore(mark);
            }
        }
        for (call, msg) in parked {
            self.request(ctx, call, &msg);
        }
    }
}

/// Audio driver: DMA-stages sample blocks into the DAC's queue.
pub struct AudioDriver {
    dev: DeviceId,
    irq: IrqLine,
    routine: GuardedRoutine,
    fault_port: FaultPort,
    /// Checkpoint client; `None` = the paper's original error-push mode.
    ckpt: Option<DriverCkpt>,
    /// Bytes queued into the DAC (the consumed watermark / ring position).
    cursor: ConsumedCursor,
    /// Warm-spare state; `Some` while dormant, cleared at promotion.
    standby: Option<StandbyRole>,
}

impl AudioDriver {
    /// Creates the audio driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        AudioDriver {
            dev,
            irq,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
            ckpt: None,
            cursor: ConsumedCursor::new(),
            standby: None,
        }
    }

    /// Enables checkpoint/replay support (see [`PrinterDriver`]).
    pub fn with_checkpointing(mut self, ds: Endpoint) -> Self {
        self.ckpt = Some(DriverCkpt::new(ds, "audio"));
        self
    }

    /// Configures this incarnation as a warm spare (implies
    /// checkpointing); see [`PrinterDriver::standby`].
    pub fn standby(mut self, ds: Endpoint) -> Self {
        self = self.with_checkpointing(ds);
        self.standby = Some(StandbyRole::new(ds, "audio"));
        self
    }

    /// Device bring-up, shared by a primary's init and a spare's
    /// promotion. Stays panic-free: it runs on the recovery path.
    fn go_live(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(&primary_name(ctx), self.routine.live());
        if ctx.irq_enable(self.irq).is_err() {
            ctx.metrics().incr("drv.irq_enable_failed");
        }
        if ctx.iommu_map(self.dev, 0, 0, 64 * 1024).is_err() {
            ctx.metrics().incr("drv.iommu_map_failed");
        }
        if ctx.devio_write(self.dev, audio_regs::CTRL, 1).is_err() {
            ctx.metrics().incr("drv.device_init_failed");
        }
    }

    /// Handles `drv::PROMOTE` (see [`PrinterDriver::promote`]).
    // analyze:recovery-root
    fn promote(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        let Some(role) = self.standby.take() else {
            return; // already live (duplicate promote)
        };
        let (rid, span) = promote_token(msg);
        if let Some(mark) = role.tail.watermark() {
            self.cursor.restore(mark);
        }
        if let Some(ckpt) = self.ckpt.as_mut() {
            ckpt.adopt_warm(role.tail.seq(), rid, span);
        }
        self.go_live(ctx);
        ctx.metrics().incr("drv.promotions");
        let ev = ctx
            .event(TraceLevel::Info, "audio standby went live".to_string())
            .with_field("ev", "promote_live")
            .with_field("seq", role.tail.seq())
            .in_recovery_opt(rid)
            .with_parent_opt(span);
        ctx.trace_event(ev);
    }

    /// Queues `block` into the DAC; `true` on success.
    fn queue_block(&mut self, ctx: &mut Ctx<'_>, block: &[u8]) -> bool {
        if ctx.mem_write(0, block).is_err() {
            return false;
        }
        ctx.devio_write(self.dev, audio_regs::BUF_ADDR, 0).is_ok()
            && ctx
                .devio_write(self.dev, audio_regs::BUF_LEN, block.len() as u32)
                .is_ok()
            && ctx.devio_write(self.dev, audio_regs::START, 1).is_ok()
    }

    /// Serves a validated WRITE (the fault point has already run).
    /// `csum` is the payload byte-sum the VM routine computed, echoed in
    /// the reply for the VFS sentinel (see [`PrinterDriver::serve_write`]).
    fn serve_write(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message, csum: u32) {
        ctx.metrics().incr("cdev.writes");
        let wal = if self.ckpt.is_some() {
            request_wal(msg)
        } else {
            None
        };
        let Some((seq, offset)) = wal else {
            // Legacy path: queue the whole block.
            let data = &msg.data;
            if !self.queue_block(ctx, data) {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                return;
            }
            let _ = ctx.reply(
                call,
                Message::new(cdev::REPLY)
                    .with_param(0, status::OK)
                    .with_param(1, data.len() as u64)
                    .with_param(2, 1 + u64::from(csum)),
            );
            return;
        };
        let plan = self.cursor.plan(offset, &msg.data);
        if plan.dup_bytes > 0 {
            ctx.metrics().add("ckpt.dedup_bytes", plan.dup_bytes);
        }
        if plan.gap_bytes > 0 {
            ctx.metrics().incr("ckpt.watermark_jumps");
        }
        let fresh = plan.fresh.to_vec();
        let (start, dup_bytes) = (plan.start, plan.dup_bytes);
        if !fresh.is_empty() {
            if !self.queue_block(ctx, &fresh) {
                let reply = Message::new(cdev::REPLY).with_param(0, status::EIO);
                let _ = ctx.reply(call, ack_reply(reply, self.cursor.committed(), seq));
                return;
            }
            self.cursor.commit_at(start, fresh.len() as u64);
        }
        let consumed = self.cursor.committed();
        if let Some(ckpt) = self.ckpt.as_mut() {
            emit_replay_event(ctx, ckpt, offset, dup_bytes);
            if !fresh.is_empty() {
                ckpt.save(ctx, consumed.to_le_bytes().to_vec());
            }
        }
        let reply = Message::new(cdev::REPLY)
            .with_param(0, status::OK)
            .with_param(1, msg.data.len() as u64)
            .with_param(2, 1 + u64::from(csum));
        let _ = ctx.reply(call, ack_reply(reply, consumed, seq));
    }
}

impl DriverLogic for AudioDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        if self.standby.is_some() {
            // Dormant spare: the primary owns the device — stay off it.
            ctx.trace(TraceLevel::Info, "audio standby dormant".to_string());
            return;
        }
        self.go_live(ctx);
        ctx.trace(TraceLevel::Info, "audio driver ready".to_string());
    }

    fn message(&mut self, ctx: &mut Ctx<'_>, msg: &Message) {
        match msg.mtype {
            drv::STANDBY => {
                if let Some(role) = self.standby.as_mut() {
                    role.on_standby(ctx, msg);
                }
            }
            drv::PROMOTE => self.promote(ctx, msg),
            _ => {}
        }
    }

    fn alarm(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if let Some(role) = self.standby.as_mut() {
            role.on_alarm(ctx, token);
        }
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::WRITE => {
                let data = &msg.data;
                if data.is_empty() || data.len() > 64 * 1024 {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return; // served after the snapshot restore
                    }
                }
                let data = &msg.data;
                let vm = self.routine.run(ctx, data.len() + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                let Some(vm) = vm else {
                    return;
                };
                let csum = vm.regs[routines::reg::RES as usize];
                self.serve_write(ctx, call, msg, csum);
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, result: &Result<Message, IpcError>) {
        if let Some(role) = self.standby.as_mut() {
            if role.tail.on_reply(ctx, call, result) {
                return;
            }
        }
        let Some(ckpt) = self.ckpt.as_mut() else {
            return;
        };
        let Some((event, parked)) = ckpt.on_reply(ctx, call, result) else {
            return;
        };
        if let RestoreEvent::Restored(snap) = &event {
            if let Some(mark) = snap.as_watermark() {
                self.cursor.restore(mark);
            }
        }
        for (call, msg) in parked {
            self.request(ctx, call, &msg);
        }
    }
}

/// SCSI CD burner driver. Burn state lives *in the device*; a restarted
/// driver that continues a burn will present the wrong chunk sequence and
/// the device will (correctly) ruin the disc — the §6.3 case where the
/// error must be reported to the user.
pub struct ScsiCdDriver {
    dev: DeviceId,
    irq: IrqLine,
    /// Chunk request awaiting the device's write-complete interrupt.
    pending: Option<CallId>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
}

impl ScsiCdDriver {
    /// Creates the SCSI CD driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        ScsiCdDriver {
            dev,
            irq,
            pending: None,
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
        }
    }

    fn device_status(&self, ctx: &mut Ctx<'_>) -> u32 {
        ctx.devio_read(self.dev, scsi_regs::STATUS)
            .unwrap_or(scsi_status::RUINED)
    }
}

impl DriverLogic for ScsiCdDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.iommu_map(self.dev, 0, 0, 64 * 1024)
            .expect("map burn buffer");
        ctx.trace(TraceLevel::Info, "scsi cd driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::BURN_START => {
                let total = msg.param(0) as u32;
                let _ = ctx.devio_write(self.dev, scsi_regs::TOTAL_CHUNKS, total);
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::START_BURN);
                let st = if self.device_status(ctx) == scsi_status::BURNING {
                    status::OK
                } else {
                    status::EIO
                };
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
            }
            cdev::BURN_CHUNK => {
                let seq = msg.param(0) as u32;
                let data = &msg.data;
                if data.is_empty() || data.len() > 64 * 1024 {
                    let _ = ctx.reply(
                        call,
                        Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.routine.run(ctx, data.len() + 16, |vm| {
                    vm.mem[0..data.len()].copy_from_slice(data);
                    vm.regs[routines::reg::A0 as usize] = data.len() as u32;
                });
                if ok.is_none() {
                    return;
                }
                if ctx.mem_write(0, data).is_err() {
                    let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                    return;
                }
                let _ = ctx.devio_write(self.dev, scsi_regs::CHUNK_SEQ, seq);
                let _ = ctx.devio_write(self.dev, scsi_regs::DMA_ADDR, 0);
                let _ = ctx.devio_write(self.dev, scsi_regs::CHUNK_LEN, data.len() as u32);
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK);
                match self.device_status(ctx) {
                    scsi_status::BURNING => {
                        // The laser is writing; reply on the completion
                        // interrupt so the client is paced by the medium.
                        self.pending = Some(call);
                    }
                    _ => {
                        // Disc ruined: error pushed up to the application.
                        let _ =
                            ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::EIO));
                    }
                }
            }
            cdev::BURN_FINALIZE => {
                let _ = ctx.devio_write(self.dev, scsi_regs::CMD, scsi_cmd::FINALIZE);
                let st = if self.device_status(ctx) == scsi_status::COMPLETE {
                    status::OK
                } else {
                    status::EIO
                };
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        let Some(call) = self.pending.take() else {
            return;
        };
        let st = match self.device_status(ctx) {
            scsi_status::BURNING | scsi_status::COMPLETE => status::OK,
            _ => status::EIO,
        };
        let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, st));
    }
}

/// Keyboard/serial input driver (the §6.3 *input* case).
///
/// The driver drains the UART's tiny hardware FIFO into its own line
/// buffer on every interrupt, and serves [`cdev::READ`] requests from that
/// buffer. The buffer is ordinary process state: when the driver crashes,
/// **every byte it had drained but not yet delivered is lost** — "input
/// might be lost because it can only be read from the controller once."
pub struct KeyboardDriver {
    dev: DeviceId,
    irq: IrqLine,
    /// Drained-but-undelivered input; dies with the driver — unless it
    /// is checkpointed to the data store after every change.
    line_buf: Vec<u8>,
    routine: GuardedRoutine,
    fault_port: FaultPort,
    /// Checkpoint client; `None` = the paper's original lossy mode.
    ckpt: Option<DriverCkpt>,
}

impl KeyboardDriver {
    /// Creates the keyboard driver.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        KeyboardDriver {
            dev,
            irq,
            line_buf: Vec::new(),
            routine: GuardedRoutine::new(&routines::with_cold_section(routines::char_write(), 30)),
            fault_port,
            ckpt: None,
        }
    }

    /// Enables line-buffer checkpointing: input drained from the UART
    /// (readable only once) survives a driver restart because the buffer
    /// is snapshotted outside the driver after every change.
    pub fn with_checkpointing(mut self, ds: Endpoint) -> Self {
        self.ckpt = Some(DriverCkpt::new(ds, "kbd"));
        self
    }

    fn save_line_buf(&mut self, ctx: &mut Ctx<'_>) {
        let payload = self.line_buf.clone();
        if let Some(ckpt) = self.ckpt.as_mut() {
            if ckpt.ready() {
                ckpt.save(ctx, payload);
            }
        }
    }
}

impl DriverLogic for KeyboardDriver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.trace(TraceLevel::Info, "keyboard driver ready".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            cdev::OPEN => {
                let _ = ctx.reply(call, Message::new(cdev::REPLY).with_param(0, status::OK));
            }
            cdev::READ => {
                if let Some(ckpt) = self.ckpt.as_mut() {
                    if ckpt.park_until_restored(ctx, call, msg.clone()) {
                        return; // served after the snapshot restore
                    }
                }
                let want = (msg.param(0) as usize).min(4096);
                let n = want.min(self.line_buf.len());
                let mut csum = 0u32;
                if n > 0 {
                    // The per-byte processing loop runs on the fault VM so
                    // the §7.2 campaign can target input drivers too.
                    let data = self.line_buf[..n].to_vec();
                    let vm = self.routine.run(ctx, n + 16, |vm| {
                        vm.mem[0..n].copy_from_slice(&data);
                        vm.regs[routines::reg::A0 as usize] = n as u32;
                    });
                    let Some(vm) = vm else {
                        return; // dying; buffered input dies with us
                    };
                    csum = vm.regs[routines::reg::RES as usize];
                }
                let data: Vec<u8> = self.line_buf.drain(..n).collect();
                if let Some(ckpt) = self.ckpt.as_mut() {
                    emit_replay_event(ctx, ckpt, 0, n as u64);
                }
                if n > 0 {
                    // Delivered bytes must leave the snapshot, or a later
                    // restore would re-deliver them.
                    self.save_line_buf(ctx);
                }
                // Echo the routine's byte-sum only when it ran (n > 0);
                // 0 = no echo, so empty reads stay sentinel-neutral.
                let echo = if n > 0 { 1 + u64::from(csum) } else { 0 };
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY)
                        .with_param(0, status::OK)
                        .with_param(1, n as u64)
                        .with_param(2, echo)
                        .with_data(data),
                );
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(cdev::REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        // Drain the hardware FIFO completely: it is tiny, and anything
        // left there risks an overrun on the next arrival.
        let mut drained = 0usize;
        loop {
            let avail = ctx.devio_read(self.dev, uart_regs::AVAILABLE).unwrap_or(0) as usize;
            if avail == 0 {
                break;
            }
            match ctx.devio_read_block(self.dev, uart_regs::DATA, avail) {
                Ok(bytes) => {
                    drained += bytes.len();
                    self.line_buf.extend_from_slice(&bytes);
                }
                Err(_) => break,
            }
        }
        if let Some(ckpt) = self.ckpt.as_mut() {
            // Input can arrive before the first READ: start the restore
            // now so drained-but-undelivered bytes get merged (restored
            // prefix first) instead of shadowing the snapshot.
            ckpt.ensure_restore(ctx);
        }
        if drained > 0 {
            self.save_line_buf(ctx);
        }
    }

    fn reply(&mut self, ctx: &mut Ctx<'_>, call: CallId, result: &Result<Message, IpcError>) {
        let Some(ckpt) = self.ckpt.as_mut() else {
            return;
        };
        let Some((event, parked)) = ckpt.on_reply(ctx, call, result) else {
            return;
        };
        if let RestoreEvent::Restored(snap) = &event {
            // Restored bytes were drained before the crash — they come
            // first; anything drained since the restart follows them.
            let mut merged = snap.payload.clone();
            merged.extend_from_slice(&self.line_buf);
            self.line_buf = merged;
        }
        self.save_line_buf(ctx);
        for (call, msg) in parked {
            self.request(ctx, call, &msg);
        }
    }
}
