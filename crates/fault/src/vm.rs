//! The fault-injection virtual machine.
//!
//! Executes programs of [`crate::isa`] instructions over a small data
//! memory. Execution outcomes map one-to-one onto the paper's defect
//! classes (§5.1):
//!
//! * [`Trap::Assert`] — the driver's own sanity check fired → the driver
//!   *panics* (defect class 1, "process exit or panic");
//! * the other traps — illegal instruction, out-of-bounds access,
//!   misalignment, division by zero → the process is *killed by a CPU or
//!   MMU exception* (defect class 2);
//! * [`Outcome::OutOfGas`] — the routine never terminates → the driver is
//!   *stuck* and stops answering heartbeats (defect class 4).

use crate::isa::{decode, Instr, NUM_REGS};

/// Why execution stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Undecodable instruction word.
    IllegalInstruction,
    /// Data access outside the VM memory (bad pointer).
    MemoryFault,
    /// Misaligned 32-bit access.
    Alignment,
    /// Division by zero.
    DivideByZero,
    /// An `Assert` failed: the driver's own consistency check.
    Assert,
    /// Jump target outside the program.
    BadJump,
}

/// Result of running a routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `Halt` reached; the routine completed (possibly with wrong results —
    /// silent data errors are *not* detectable here, just as in the paper).
    Halted {
        /// Instructions executed.
        steps: u64,
    },
    /// Execution trapped.
    Trapped {
        /// The trap kind.
        trap: Trap,
        /// Program counter at the faulting instruction.
        pc: usize,
    },
    /// The step budget ran out: an infinite (or pathologically long) loop.
    OutOfGas,
}

impl Outcome {
    /// `true` if the routine completed normally.
    pub fn is_ok(self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }
}

/// VM execution state: eight registers plus a byte-addressed data memory.
#[derive(Debug, Clone)]
pub struct Vm {
    /// General-purpose registers.
    pub regs: [u32; NUM_REGS],
    /// Data memory.
    pub mem: Vec<u8>,
}

impl Vm {
    /// Creates a VM with zeroed registers and `mem_size` bytes of memory.
    pub fn new(mem_size: usize) -> Self {
        Vm {
            regs: [0; NUM_REGS],
            mem: vec![0; mem_size],
        }
    }

    fn load32(&self, addr: u32) -> Result<u32, Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Alignment);
        }
        let a = addr as usize;
        let bytes = self.mem.get(a..a + 4).ok_or(Trap::MemoryFault)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn store32(&mut self, addr: u32, v: u32) -> Result<(), Trap> {
        if !addr.is_multiple_of(4) {
            return Err(Trap::Alignment);
        }
        let a = addr as usize;
        let slot = self.mem.get_mut(a..a + 4).ok_or(Trap::MemoryFault)?;
        slot.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Runs `program` from instruction 0 until `Halt`, a trap, or `max_steps`.
    pub fn run(&mut self, program: &[u32], max_steps: u64) -> Outcome {
        let mut pc = 0usize;
        let mut steps = 0u64;
        loop {
            if steps >= max_steps {
                return Outcome::OutOfGas;
            }
            let Some(&word) = program.get(pc) else {
                // Fell off the end of the routine: wild control flow.
                return Outcome::Trapped {
                    trap: Trap::BadJump,
                    pc,
                };
            };
            steps += 1;
            let fault = |trap| Outcome::Trapped { trap, pc };
            let mut next = pc + 1;
            match decode(word) {
                Instr::Nop => {}
                Instr::MovImm(d, imm) => self.regs[d as usize] = u32::from(imm),
                Instr::Mov(d, s) => self.regs[d as usize] = self.regs[s as usize],
                Instr::Add(d, s) => {
                    self.regs[d as usize] =
                        self.regs[d as usize].wrapping_add(self.regs[s as usize]);
                }
                Instr::AddImm(d, imm) => {
                    self.regs[d as usize] = self.regs[d as usize].wrapping_add(u32::from(imm));
                }
                Instr::Sub(d, s) => {
                    self.regs[d as usize] =
                        self.regs[d as usize].wrapping_sub(self.regs[s as usize]);
                }
                Instr::Mul(d, s) => {
                    self.regs[d as usize] =
                        self.regs[d as usize].wrapping_mul(self.regs[s as usize]);
                }
                Instr::Div(d, s) => {
                    let divisor = self.regs[s as usize];
                    if divisor == 0 {
                        return fault(Trap::DivideByZero);
                    }
                    self.regs[d as usize] /= divisor;
                }
                Instr::And(d, s) => self.regs[d as usize] &= self.regs[s as usize],
                Instr::Or(d, s) => self.regs[d as usize] |= self.regs[s as usize],
                Instr::Xor(d, s) => self.regs[d as usize] ^= self.regs[s as usize],
                Instr::Shl(d, imm) => {
                    self.regs[d as usize] = self.regs[d as usize].wrapping_shl(u32::from(imm));
                }
                Instr::Shr(d, imm) => {
                    self.regs[d as usize] = self.regs[d as usize].wrapping_shr(u32::from(imm));
                }
                Instr::Load(d, s, imm) => {
                    let addr = self.regs[s as usize].wrapping_add(u32::from(imm));
                    match self.load32(addr) {
                        Ok(v) => self.regs[d as usize] = v,
                        Err(t) => return fault(t),
                    }
                }
                Instr::Store(d, s, imm) => {
                    let addr = self.regs[d as usize].wrapping_add(u32::from(imm));
                    let v = self.regs[s as usize];
                    if let Err(t) = self.store32(addr, v) {
                        return fault(t);
                    }
                }
                Instr::LoadB(d, s, imm) => {
                    let addr = self.regs[s as usize].wrapping_add(u32::from(imm)) as usize;
                    match self.mem.get(addr) {
                        Some(&b) => self.regs[d as usize] = u32::from(b),
                        None => return fault(Trap::MemoryFault),
                    }
                }
                Instr::StoreB(d, s, imm) => {
                    let addr = self.regs[d as usize].wrapping_add(u32::from(imm)) as usize;
                    let v = self.regs[s as usize] as u8;
                    match self.mem.get_mut(addr) {
                        Some(b) => *b = v,
                        None => return fault(Trap::MemoryFault),
                    }
                }
                Instr::Jmp(t) => next = usize::from(t),
                Instr::Jz(s, t) => {
                    if self.regs[s as usize] == 0 {
                        next = usize::from(t);
                    }
                }
                Instr::Jnz(s, t) => {
                    if self.regs[s as usize] != 0 {
                        next = usize::from(t);
                    }
                }
                Instr::Jlt(d, s, t) => {
                    if self.regs[d as usize] < self.regs[s as usize] {
                        next = usize::from(t);
                    }
                }
                Instr::Jge(d, s, t) => {
                    if self.regs[d as usize] >= self.regs[s as usize] {
                        next = usize::from(t);
                    }
                }
                Instr::Assert(s) => {
                    if self.regs[s as usize] == 0 {
                        return fault(Trap::Assert);
                    }
                }
                Instr::Halt => return Outcome::Halted { steps },
                Instr::Invalid(_) => return fault(Trap::IllegalInstruction),
            }
            pc = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Asm, Instr};

    fn checksum_program() -> Vec<u32> {
        // R0 = len, R1 = base; returns sum of bytes in R2.
        let mut a = Asm::new();
        let top = a.label();
        let done = a.label();
        a.emit(Instr::MovImm(2, 0));
        a.emit(Instr::MovImm(3, 0));
        a.bind(top);
        a.jge_to(3, 0, done);
        a.emit(Instr::Mov(4, 1));
        a.emit(Instr::Add(4, 3));
        a.emit(Instr::Mov(5, 4));
        a.emit(Instr::LoadB(6, 5, 0));
        a.emit(Instr::Add(2, 6));
        a.emit(Instr::AddImm(3, 1));
        a.jmp_to(top);
        a.bind(done);
        a.emit(Instr::Halt);
        a.finish()
    }

    #[test]
    fn checksum_computes_byte_sum() {
        let p = checksum_program();
        let mut vm = Vm::new(64);
        vm.mem[8..12].copy_from_slice(&[1, 2, 3, 4]);
        vm.regs[0] = 4; // len
        vm.regs[1] = 8; // base
        let out = vm.run(&p, 10_000);
        assert!(out.is_ok(), "{out:?}");
        assert_eq!(vm.regs[2], 10);
    }

    #[test]
    fn out_of_bounds_load_traps_memory_fault() {
        let p = vec![
            crate::isa::encode(Instr::LoadB(0, 1, 0)),
            crate::isa::encode(Instr::Halt),
        ];
        let mut vm = Vm::new(16);
        vm.regs[1] = 1000;
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::MemoryFault,
                pc: 0
            }
        );
    }

    #[test]
    fn misaligned_word_access_traps() {
        let p = vec![
            crate::isa::encode(Instr::Load(0, 1, 1)),
            crate::isa::encode(Instr::Halt),
        ];
        let mut vm = Vm::new(16);
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::Alignment,
                pc: 0
            }
        );
    }

    #[test]
    fn divide_by_zero_traps() {
        let p = vec![
            crate::isa::encode(Instr::Div(0, 1)),
            crate::isa::encode(Instr::Halt),
        ];
        let mut vm = Vm::new(4);
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::DivideByZero,
                pc: 0
            }
        );
    }

    #[test]
    fn failed_assert_traps_as_panic() {
        let p = vec![
            crate::isa::encode(Instr::Assert(3)),
            crate::isa::encode(Instr::Halt),
        ];
        let mut vm = Vm::new(4);
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::Assert,
                pc: 0
            }
        );
        let mut vm2 = Vm::new(4);
        vm2.regs[3] = 1;
        assert!(vm2.run(&p, 100).is_ok());
    }

    #[test]
    fn infinite_loop_runs_out_of_gas() {
        let p = vec![crate::isa::encode(Instr::Jmp(0))];
        let mut vm = Vm::new(4);
        assert_eq!(vm.run(&p, 1_000), Outcome::OutOfGas);
    }

    #[test]
    fn falling_off_the_end_is_a_bad_jump() {
        let p = vec![crate::isa::encode(Instr::Nop)];
        let mut vm = Vm::new(4);
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::BadJump,
                pc: 1
            }
        );
    }

    #[test]
    fn illegal_instruction_traps() {
        let p = vec![0xFFFF_FFFF];
        let mut vm = Vm::new(4);
        assert_eq!(
            vm.run(&p, 100),
            Outcome::Trapped {
                trap: Trap::IllegalInstruction,
                pc: 0
            }
        );
    }

    #[test]
    fn execution_is_deterministic() {
        let p = checksum_program();
        let run = || {
            let mut vm = Vm::new(32);
            vm.mem[0..4].copy_from_slice(&[9, 9, 9, 9]);
            vm.regs[0] = 4;
            (vm.run(&p, 1000), vm.regs)
        };
        assert_eq!(run(), run());
    }
}
