//! The §7.2 software fault-injection campaign.
//!
//! "One experiment run inside the Bochs PC emulator targeted the DP8390
//! Ethernet driver and repeatedly injected 1 randomly selected fault into
//! the running driver until it crashed. In total, we injected over 12,500
//! faults, which led to 347 detectable crashes: 226 exits due to an
//! internal panic (65%), 109 kill signals due to CPU and MMU exceptions
//! (31%), and 12 restarts due to missing heartbeat messages (4%). The
//! subsequent recovery was successful in 100% of the induced failures."
//!
//! This module drives exactly that experiment against our DP8390 driver,
//! with background datagram traffic keeping the driver's hot paths
//! executing. A second configuration enables the NIC model's *wedge*
//! behavior to reproduce the real-hardware tail where "the network card
//! was confused by the faulty driver and could not be reinitialized by the
//! restarted driver" and only a BIOS-level reset helps.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::dp8390::{Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::Rtl8139Config;
use phoenix_hw::WireConfig;
use phoenix_servers::peer::PeerConfig;
use phoenix_servers::policy::reason;
use phoenix_simcore::time::SimDuration;

use crate::apps::{UdpPing, UdpStatus};
use crate::os::{hwmap, names, NicKind, Os};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// Total faults to inject.
    pub injections: u64,
    /// Virtual time between injections.
    pub injection_interval: SimDuration,
    /// Probability that a reserved-register write wedges the NIC
    /// (0 for the emulator campaign, small for the "real hardware" one).
    pub wedge_prob: f64,
    /// Background datagram period (traffic exercising the driver).
    pub traffic_period: SimDuration,
    /// Heartbeat period for the driver under test.
    pub heartbeat_period: SimDuration,
    /// Consecutive misses before heartbeat recovery.
    pub heartbeat_misses: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 2007,
            injections: 12_500,
            injection_interval: SimDuration::from_millis(20),
            wedge_prob: 0.0,
            traffic_period: SimDuration::from_millis(5),
            heartbeat_period: SimDuration::from_millis(500),
            heartbeat_misses: 2,
        }
    }
}

/// One detected crash.
#[derive(Debug, Clone)]
pub struct CrashRecord {
    /// Defect class (§5.1 numbering; see `phoenix_servers::policy::reason`).
    pub defect: u8,
    /// Faults injected since the previous crash.
    pub injections_since_last: u64,
    /// Whether automatic recovery succeeded.
    pub recovered: bool,
    /// Whether an out-of-band BIOS reset was required (wedged card).
    pub needed_hard_reset: bool,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignResult {
    /// Total faults injected.
    pub injections: u64,
    /// Every detected crash in order.
    pub crashes: Vec<CrashRecord>,
    /// Silent failures: the driver stayed alive and answered heartbeats
    /// but stopped moving data, so the *user* noticed the freeze and
    /// instructed RS to restart it (§5.1 input 3). The paper's design
    /// explicitly cannot detect these automatically (§3: no protection
    /// against Byzantine behavior without end-to-end checks).
    pub silent_restarts: u64,
}

impl CampaignResult {
    /// Number of crashes with the given defect class.
    pub fn count(&self, defect: u8) -> usize {
        self.crashes.iter().filter(|c| c.defect == defect).count()
    }

    /// Crashes recovered automatically.
    pub fn recovered(&self) -> usize {
        self.crashes
            .iter()
            .filter(|c| c.recovered && !c.needed_hard_reset)
            .count()
    }

    /// Crashes needing the BIOS-reset escape hatch.
    pub fn hard_resets(&self) -> usize {
        self.crashes.iter().filter(|c| c.needed_hard_reset).count()
    }

    /// Percentage helper.
    pub fn pct(&self, n: usize) -> f64 {
        if self.crashes.is_empty() {
            0.0
        } else {
            n as f64 * 100.0 / self.crashes.len() as f64
        }
    }

    /// Renders the §7.2-style summary.
    pub fn render(&self) -> String {
        let panics = self.count(reason::EXIT);
        let exceptions = self.count(reason::EXCEPTION);
        let heartbeats = self.count(reason::HEARTBEAT);
        format!(
            "injected {} faults -> {} detectable crashes: \
             {} exits/panics ({:.0}%), {} CPU/MMU exceptions ({:.0}%), \
             {} missing heartbeats ({:.0}%); recovery ok {} ({:.1}%), \
             hard resets {}, silent freezes (user restart) {}",
            self.injections,
            self.crashes.len(),
            panics,
            self.pct(panics),
            exceptions,
            self.pct(exceptions),
            heartbeats,
            self.pct(heartbeats),
            self.recovered() + self.hard_resets(),
            self.pct(self.recovered() + self.hard_resets()),
            self.hard_resets(),
            self.silent_restarts,
        )
    }
}

const DEFECTS: [u8; 6] = [
    reason::EXIT,
    reason::EXCEPTION,
    reason::KILLED,
    reason::HEARTBEAT,
    reason::COMPLAINT,
    reason::UPDATE,
];

fn defect_counts(os: &Os) -> [u64; 6] {
    let mut out = [0; 6];
    for (i, d) in DEFECTS.iter().enumerate() {
        out[i] = os
            .metrics()
            .counter(&format!("rs.defect.{}", reason::name(*d)));
    }
    out
}

/// Classifies a crash from the defect-counter delta. Restart-failure
/// panics can pollute the `exit` class, so the rarer, unambiguous classes
/// win.
fn classify(before: [u64; 6], after: [u64; 6]) -> u8 {
    let delta: Vec<u64> = before.iter().zip(after).map(|(b, a)| a - *b).collect();
    if delta[3] > 0 {
        reason::HEARTBEAT
    } else if delta[1] > 0 {
        reason::EXCEPTION
    } else if delta[4] > 0 {
        reason::COMPLAINT
    } else if delta[2] > 0 {
        reason::KILLED
    } else {
        reason::EXIT
    }
}

/// Runs the fault-injection campaign. Returns the result plus the UDP
/// traffic status (for liveness sanity checks).
pub fn run_campaign(cfg: &CampaignConfig) -> (CampaignResult, Rc<RefCell<UdpStatus>>) {
    let driver = names::ETH_DP8390;
    let mut os = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Dp8390)
        .network_tuning(
            Rtl8139Config::default(),
            Dp8390Config {
                wedge_prob: cfg.wedge_prob,
                ..Dp8390Config::default()
            },
            WireConfig::default(),
            PeerConfig::default(),
        )
        .heartbeat(cfg.heartbeat_period, cfg.heartbeat_misses)
        .boot();

    // Continuous background traffic so the driver's hot paths execute.
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    os.spawn_app(
        "udp-traffic",
        Box::new(UdpPing::new(
            inet,
            2_000_000,
            cfg.traffic_period,
            status.clone(),
        )),
    );
    os.run_for(SimDuration::from_millis(50));

    let mut result = CampaignResult::default();
    let mut since_last = 0u64;
    let mut last_echoed = status.borrow().echoed;
    let mut last_progress = os.now();
    let mut down_ticks = 0u32;
    while result.injections < cfg.injections {
        let Some(ep_before) = os.endpoint(driver) else {
            // Driver restarting; give it time.
            os.run_for(SimDuration::from_millis(100));
            down_ticks += 1;
            if down_ticks >= 50 {
                // The driver is not coming back on its own: a wedged card
                // turns every restart into an init panic until the storm
                // ladder gives up. Model the §5.1-input-3 user: apply the
                // out-of-band BIOS reset and ask RS to try again.
                if os
                    .device_mut::<Dp8390>(hwmap::NIC)
                    .is_some_and(|d| d.is_wedged())
                {
                    os.hard_reset_device(hwmap::NIC);
                }
                os.service_restart(driver);
                down_ticks = 0;
            }
            continue;
        };
        down_ticks = 0;
        // Silent-failure watchdog: a mutated driver can desync its rx ring
        // and go quiet while still answering heartbeats — undetectable by
        // the system (§3), but the *user* notices the frozen traffic and
        // restarts the driver by hand (§5.1 input 3). Not counted as a
        // detectable crash.
        let echoed = status.borrow().echoed;
        if echoed != last_echoed {
            last_echoed = echoed;
            last_progress = os.now();
        } else if os.now().since(last_progress) > SimDuration::from_secs(2) {
            result.silent_restarts += 1;
            os.service_restart(driver);
            for _ in 0..100 {
                os.run_for(SimDuration::from_millis(100));
                if os.endpoint(driver).is_some_and(|e| e != ep_before) {
                    break;
                }
            }
            last_progress = os.now();
            continue;
        }
        let counts_before = defect_counts(&os);
        if os.inject_fault(driver).is_none() {
            os.run_for(SimDuration::from_millis(100));
            continue;
        }
        result.injections += 1;
        since_last += 1;
        os.run_for(cfg.injection_interval);
        // Crash detection: the incarnation changed or the driver is gone.
        // A *stuck* driver is still "alive" here; it is detected when the
        // heartbeat misses accumulate, within a later interval.
        if os.endpoint(driver) == Some(ep_before) {
            continue;
        }
        // Wait for recovery (§7.2 reports 100% on the emulator).
        let mut recovered = false;
        let mut needed_hard_reset = false;
        for _ in 0..100 {
            if let Some(ep) = os.endpoint(driver) {
                if ep != ep_before {
                    recovered = true;
                    break;
                }
            }
            os.run_for(SimDuration::from_millis(100));
        }
        if !recovered {
            // The card may be wedged: restarted drivers keep panicking at
            // init. Apply the out-of-band BIOS reset and try once more.
            let wedged = os
                .device_mut::<Dp8390>(hwmap::NIC)
                .is_some_and(|d| d.is_wedged());
            if wedged {
                os.hard_reset_device(hwmap::NIC);
                needed_hard_reset = true;
                os.service_restart(driver);
                for _ in 0..100 {
                    if let Some(ep) = os.endpoint(driver) {
                        if ep != ep_before {
                            recovered = true;
                            break;
                        }
                    }
                    os.run_for(SimDuration::from_millis(100));
                }
            }
        }
        let defect = classify(counts_before, defect_counts(&os));
        result.crashes.push(CrashRecord {
            defect,
            injections_since_last: since_last,
            recovered,
            needed_hard_reset,
        });
        since_last = 0;
        // Let traffic re-establish before the next injection.
        os.run_for(SimDuration::from_millis(50));
    }
    (result, status)
}

// ------------------------------------------------------------------------
// Chaos campaign: recovery under a hostile IPC fabric.

use phoenix_fault::chaos::ChaosPlan;
use phoenix_fault::NameFilter;
use phoenix_simcore::digest::Md5;

/// Parameters of the chaos-resilience campaign: repeated driver kills
/// while the IPC fabric drops, delays, duplicates and corrupts messages.
#[derive(Debug, Clone)]
pub struct ChaosCampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// Scale factor on the [`ChaosPlan::driver_traffic`] preset
    /// (1.0 = 10% drop, 10% delay, 5% duplication, 2% corruption).
    pub intensity: f64,
    /// User kills per driver under test (network and block).
    pub kills_per_target: u64,
    /// Virtual time between consecutive kills.
    pub kill_interval: SimDuration,
    /// Arm one kill of the network driver's *fresh incarnation during
    /// recovery* (crash-during-recovery resilience).
    pub mid_recovery_kill: bool,
    /// Background datagram period.
    pub traffic_period: SimDuration,
}

impl Default for ChaosCampaignConfig {
    fn default() -> Self {
        ChaosCampaignConfig {
            seed: 2007,
            intensity: 1.0,
            kills_per_target: 4,
            kill_interval: SimDuration::from_secs(5),
            mid_recovery_kill: true,
            traffic_period: SimDuration::from_millis(5),
        }
    }
}

/// One kill and its observed recovery.
#[derive(Debug, Clone)]
pub struct ChaosKillRecord {
    /// Service killed.
    pub target: String,
    /// Whether a fresh incarnation came up within the grace period.
    pub recovered: bool,
    /// Time from the kill to the fresh incarnation (mean time to repair).
    pub mttr: SimDuration,
}

/// Aggregate chaos-campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct ChaosCampaignResult {
    /// Chaos intensity the campaign ran at.
    pub intensity: f64,
    /// Every kill in order.
    pub kills: Vec<ChaosKillRecord>,
    /// Messages the chaos layer dropped / delayed / duplicated / corrupted.
    pub dropped: u64,
    /// See [`ChaosCampaignResult::dropped`].
    pub delayed: u64,
    /// See [`ChaosCampaignResult::dropped`].
    pub duplicated: u64,
    /// See [`ChaosCampaignResult::dropped`].
    pub corrupted: u64,
    /// Mid-recovery kills the chaos layer executed.
    pub recovery_kills: u64,
    /// Restart storms RS detected (must be 0 at moderate intensity).
    pub storms: u64,
    /// Services RS gave up on.
    pub gave_up: u64,
    /// Extra defects RS recovered beyond the scripted kills (heartbeat
    /// misses from stalls, corrupted-request panics, ...).
    pub total_recoveries: u64,
    /// Trace events lost to ring eviction. Non-zero means the folded
    /// recovery timeline may be missing episodes or phases.
    pub trace_dropped: u64,
    /// Per-event-kind breakdown of [`ChaosCampaignResult::trace_dropped`].
    pub trace_dropped_by_kind: Vec<(String, u64)>,
    /// MD5 over the canonical metrics dump — byte-identical across two
    /// same-seed runs (determinism regression handle).
    pub digest: String,
}

impl ChaosCampaignResult {
    /// Fraction of kills that recovered, in [0, 1].
    pub fn recovery_rate(&self) -> f64 {
        if self.kills.is_empty() {
            return 1.0;
        }
        self.kills.iter().filter(|k| k.recovered).count() as f64 / self.kills.len() as f64
    }

    /// Mean time to repair over the recovered kills.
    pub fn mean_mttr(&self) -> SimDuration {
        let recovered: Vec<&ChaosKillRecord> = self.kills.iter().filter(|k| k.recovered).collect();
        if recovered.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = recovered.iter().map(|k| k.mttr.as_micros()).sum();
        SimDuration::from_micros(total / recovered.len() as u64)
    }

    /// Renders the §7.2-style summary line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "chaos intensity {:.2}: {} kills -> recovery {:.0}%, mean MTTR {}, \
             {} mid-recovery kills, {} storms, {} give-ups; fabric dropped {} \
             delayed {} duplicated {} corrupted {}; digest {}",
            self.intensity,
            self.kills.len(),
            self.recovery_rate() * 100.0,
            self.mean_mttr(),
            self.recovery_kills,
            self.storms,
            self.gave_up,
            self.dropped,
            self.delayed,
            self.duplicated,
            self.corrupted,
            self.digest,
        );
        if self.trace_dropped > 0 {
            line.push_str(&format!(
                "; WARNING: {} trace events lost{} (timeline may be incomplete)",
                self.trace_dropped,
                render_trace_loss(&self.trace_dropped_by_kind),
            ));
        }
        line
    }
}

/// Fossilizes the trace ring's loss accounting into the digest-covered
/// registry: the total plus one `trace.dropped.{kind}` gauge per evicted
/// event kind, so high-volume request events can't silently evict
/// recovery events without the digest noticing. Returns the total and
/// the per-kind breakdown for the campaign's warning line.
pub fn fossilize_trace_loss(os: &mut Os) -> (u64, Vec<(String, u64)>) {
    let dropped = os.trace_dropped();
    let by_kind = os.trace_dropped_by_kind();
    os.metrics_mut().add("trace.dropped", dropped);
    for (kind, n) in &by_kind {
        os.metrics_mut().add(&format!("trace.dropped.{kind}"), *n);
    }
    (dropped, by_kind)
}

/// Renders the per-kind eviction breakdown for a campaign warning line,
/// e.g. ` (request 512, defect 3)`. Empty when nothing was lost.
fn render_trace_loss(by_kind: &[(String, u64)]) -> String {
    if by_kind.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect();
    format!(" ({})", parts.join(", "))
}

/// MD5 over the sorted counter dump: the determinism fingerprint of a run.
pub fn metrics_digest(os: &Os) -> String {
    let mut counters: Vec<(String, u64)> = os
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort();
    let mut md5 = Md5::new();
    for (k, v) in counters {
        md5.update(format!("{k}={v}\n").as_bytes());
    }
    md5.finish_hex()
}

/// Runs the chaos campaign: boots a machine with the RTL8139 network stack
/// and a SATA disk, installs the driver-traffic chaos preset, then
/// repeatedly kills the network and block drivers (§7.1's crash-simulation
/// script) while the fabric misbehaves, measuring recovery rate and MTTR.
pub fn run_chaos_campaign(cfg: &ChaosCampaignConfig) -> ChaosCampaignResult {
    run_chaos_campaign_traced(cfg).0
}

/// Like [`run_chaos_campaign`], but also hands back the booted [`Os`] so
/// the caller can export the trace and fold the recovery timeline of the
/// exact run the summary describes.
pub fn run_chaos_campaign_traced(cfg: &ChaosCampaignConfig) -> (ChaosCampaignResult, Os) {
    let eth = names::ETH_RTL8139;
    let blk = names::BLK_SATA;
    let mut plan = ChaosPlan::driver_traffic(cfg.intensity);
    if cfg.mid_recovery_kill {
        // Strike the first respawned network-driver incarnation 2 ms into
        // its life — recovery must survive a crash *during* recovery.
        plan = plan.kill_during_recovery(NameFilter::exact(eth), 0, 1, SimDuration::from_millis(2));
    }
    let mut os = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Rtl8139)
        .with_disk(4096, cfg.seed ^ 0x5eed, vec![])
        .heartbeat(SimDuration::from_millis(500), 3)
        .chaos(plan)
        .boot();

    // Background traffic keeps the network driver's request path hot, so
    // dropped and corrupted messages actually have something to hit.
    let status = Rc::new(RefCell::new(UdpStatus::default()));
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    os.spawn_app(
        "udp-traffic",
        Box::new(UdpPing::new(
            inet,
            2_000_000,
            cfg.traffic_period,
            status.clone(),
        )),
    );
    os.run_for(SimDuration::from_millis(100));

    let mut result = ChaosCampaignResult {
        intensity: cfg.intensity,
        ..ChaosCampaignResult::default()
    };
    for _ in 0..cfg.kills_per_target {
        for target in [eth, blk] {
            // Wait for the target to be up (it may still be inside a
            // chaos-lengthened recovery from the previous round).
            let mut guard = 0;
            while !os.is_up(target) && guard < 3000 {
                os.run_for(SimDuration::from_millis(10));
                guard += 1;
            }
            let Some(before) = os.endpoint(target) else {
                result.kills.push(ChaosKillRecord {
                    target: target.to_string(),
                    recovered: false,
                    mttr: SimDuration::ZERO,
                });
                continue;
            };
            let t0 = os.now();
            os.kill_by_user(target);
            let mut recovered = false;
            let mut guard = 0;
            while guard < 3000 {
                os.run_for(SimDuration::from_millis(10));
                guard += 1;
                if os.endpoint(target).is_some_and(|ep| ep != before) {
                    recovered = true;
                    break;
                }
            }
            result.kills.push(ChaosKillRecord {
                target: target.to_string(),
                recovered,
                mttr: os.now().since(t0),
            });
            os.run_for(cfg.kill_interval);
        }
    }
    // Drain in-flight recoveries before reading the counters.
    os.run_for(SimDuration::from_secs(2));
    // Fold the trace into per-episode phase timings and fossilize them —
    // and the ring's loss counter — as metrics, so phase MTTRs land in the
    // same digest-covered registry as everything else.
    let timeline = os.timeline();
    timeline.record_into(os.metrics_mut());
    let (trace_dropped, trace_by_kind) = fossilize_trace_loss(&mut os);
    let m = os.metrics();
    result.dropped = m.counter("chaos.dropped");
    result.delayed = m.counter("chaos.delayed");
    result.duplicated = m.counter("chaos.duplicated");
    result.corrupted = m.counter("chaos.corrupted");
    result.recovery_kills = m.counter("chaos.kills");
    result.storms = m.counter("rs.storms");
    result.gave_up = m.counter("rs.gave_up");
    result.total_recoveries = m.counter("rs.recoveries");
    result.trace_dropped = trace_dropped;
    result.trace_dropped_by_kind = trace_by_kind;
    result.digest = metrics_digest(&os);
    (result, os)
}

// ------------------------------------------------------------------------
// Checkpoint campaign: char-driver kills with and without phoenix-ckpt.

use phoenix_hw::chardev::{AudioDac, Printer};

use crate::apps::{
    CkptLpd, CkptLpdStatus, CkptMp3Player, CkptMp3Status, Lpd, LpdStatus, Mp3Player, Mp3Status,
};

/// Parameters of the checkpoint campaign: repeated kills of the stream
/// char drivers (printer, audio) while a print job and an audio stream
/// are in flight, with the `phoenix-ckpt` subsystem on or off.
#[derive(Debug, Clone)]
pub struct CkptCampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// Driver kills, alternating printer / audio.
    pub faults: u64,
    /// Virtual time between consecutive kills.
    pub kill_interval: SimDuration,
    /// `true` = checkpoint/replay path; `false` = the paper's §6.3
    /// error-push baseline.
    pub checkpointing: bool,
}

impl Default for CkptCampaignConfig {
    fn default() -> Self {
        CkptCampaignConfig {
            seed: 2007,
            faults: 100,
            kill_interval: SimDuration::from_millis(400),
            checkpointing: true,
        }
    }
}

/// Aggregate checkpoint-campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CkptCampaignResult {
    /// Whether the run had checkpointing on.
    pub checkpointing: bool,
    /// Kills executed.
    pub kills: u64,
    /// Kills after which a fresh incarnation came up in time.
    pub recovered_kills: u64,
    /// Bytes the printer committed to paper (device oracle).
    pub printed_bytes: u64,
    /// Bytes the print job contained.
    pub expected_printed: u64,
    /// The printed stream equals the job byte-for-byte — no duplicated
    /// page, no lost line.
    pub printer_byte_exact: bool,
    /// Bytes the DAC played (device oracle).
    pub samples_played: u64,
    /// Bytes the audio stream contained.
    pub expected_samples: u64,
    /// Errors that reached the applications: baseline job restarts /
    /// fatal reports / dropped blocks, or residual errors on the
    /// checkpointed path (must be 0 there).
    pub app_visible_errors: u64,
    /// Log replays the checkpointed apps performed (transparent).
    pub replays: u64,
    /// Char WRITE requests the drivers served.
    pub requests: u64,
    /// Snapshot saves the drivers issued.
    pub saves: u64,
    /// Snapshot restores completed.
    pub restores: u64,
    /// Replayed bytes deduplicated against restored watermarks.
    pub dedup_bytes: u64,
    /// Watermark jumps (lost/corrupt snapshot, caller log trusted).
    pub watermark_jumps: u64,
    /// Both workloads ran to completion.
    pub workloads_done: bool,
    /// MD5 over the canonical metrics dump (determinism handle).
    pub digest: String,
}

impl CkptCampaignResult {
    /// Fraction of kills fully transparent to the applications, in
    /// [0, 1]: recovery completed and no error surfaced.
    pub fn transparency_rate(&self) -> f64 {
        if self.kills == 0 {
            return 1.0;
        }
        let opaque = self.app_visible_errors.min(self.kills) + (self.kills - self.recovered_kills);
        (self.kills - opaque.min(self.kills)) as f64 / self.kills as f64
    }

    /// Extra DS messages (saves + restores) per served char request —
    /// the per-request logging overhead of the subsystem.
    pub fn overhead_msgs_per_request(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.saves + self.restores) as f64 / self.requests as f64
    }

    /// Renders the summary line.
    pub fn render(&self) -> String {
        format!(
            "ckpt={}: {} kills ({} recovered) -> transparency {:.0}%, \
             printer {}/{} bytes (byte-exact: {}), audio {}/{} bytes, \
             app errors {}, replays {}, saves {}, restores {}, \
             dedup {} B, watermark jumps {}, overhead {:.3} msg/req; digest {}",
            self.checkpointing,
            self.kills,
            self.recovered_kills,
            self.transparency_rate() * 100.0,
            self.printed_bytes,
            self.expected_printed,
            self.printer_byte_exact,
            self.samples_played,
            self.expected_samples,
            self.app_visible_errors,
            self.replays,
            self.saves,
            self.restores,
            self.dedup_bytes,
            self.watermark_jumps,
            self.overhead_msgs_per_request(),
            self.digest,
        )
    }
}

/// Deterministic pattern for the print job: a pure function of the seed,
/// so the byte-exactness oracle can regenerate it.
pub fn ckpt_print_job(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64 * 131) >> 3) as u8)
        .collect()
}

/// Runs the checkpoint campaign: boots the char-device machine (with or
/// without `phoenix-ckpt`), starts a print job and a paced audio stream,
/// then kills the printer and audio drivers alternately while both are in
/// flight. Returns the result plus the booted [`Os`] for trace/timeline
/// inspection.
pub fn run_ckpt_campaign(cfg: &CkptCampaignConfig) -> (CkptCampaignResult, Os) {
    let mut builder = Os::builder()
        .seed(cfg.seed)
        .heartbeat(SimDuration::from_millis(500), 3);
    builder = if cfg.checkpointing {
        builder.with_checkpointing()
    } else {
        builder.with_chardevs()
    };
    let mut os = builder.boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");

    // Workloads sized to stay in flight across the whole kill schedule.
    let job = ckpt_print_job(cfg.seed, (cfg.faults as usize).max(4) * 3072);
    let blocks_total = cfg.faults.max(4) * 6;
    let block_bytes = 4410usize; // 25 ms of CD stereo audio
    let block_period = SimDuration::from_millis(25);

    let ckpt_lpd = Rc::new(RefCell::new(CkptLpdStatus::default()));
    let ckpt_mp3 = Rc::new(RefCell::new(CkptMp3Status::default()));
    let legacy_lpd = Rc::new(RefCell::new(LpdStatus::default()));
    let legacy_mp3 = Rc::new(RefCell::new(Mp3Status::default()));
    if cfg.checkpointing {
        os.spawn_app(
            "ckpt-lpd",
            Box::new(CkptLpd::new(vfs, job.clone(), ckpt_lpd.clone())),
        );
        os.spawn_app(
            "ckpt-mp3",
            Box::new(CkptMp3Player::new(
                vfs,
                blocks_total,
                block_bytes,
                block_period,
                ckpt_mp3.clone(),
            )),
        );
    } else {
        os.spawn_app(
            "lpd",
            Box::new(Lpd::new(vfs, job.clone(), legacy_lpd.clone())),
        );
        os.spawn_app(
            "mp3",
            Box::new(Mp3Player::new(
                vfs,
                blocks_total,
                block_bytes,
                block_period,
                legacy_mp3.clone(),
            )),
        );
    }
    os.run_for(SimDuration::from_millis(100));

    let mut result = CkptCampaignResult {
        checkpointing: cfg.checkpointing,
        ..CkptCampaignResult::default()
    };
    for i in 0..cfg.faults {
        let target = if i % 2 == 0 {
            names::CHR_PRINTER
        } else {
            names::CHR_AUDIO
        };
        let mut guard = 0;
        while !os.is_up(target) && guard < 600 {
            os.run_for(SimDuration::from_millis(10));
            guard += 1;
        }
        let Some(before) = os.endpoint(target) else {
            result.kills += 1;
            continue;
        };
        os.kill_by_user(target);
        result.kills += 1;
        let mut guard = 0;
        while guard < 600 {
            os.run_for(SimDuration::from_millis(10));
            guard += 1;
            if os.endpoint(target).is_some_and(|ep| ep != before) {
                result.recovered_kills += 1;
                break;
            }
        }
        os.run_for(cfg.kill_interval);
    }

    // Drain: let both workloads run to completion (the DAC still has
    // queued blocks to play after the last ack).
    let mut guard = 0;
    loop {
        let done = if cfg.checkpointing {
            ckpt_lpd.borrow().done && ckpt_mp3.borrow().done
        } else {
            legacy_lpd.borrow().done && legacy_mp3.borrow().done
        };
        let played = os
            .device_mut::<AudioDac>(hwmap::AUDIO)
            .map_or(0, |d| d.samples_played());
        if (done && played >= blocks_total * block_bytes as u64) || guard >= 1200 {
            break;
        }
        os.run_for(SimDuration::from_millis(50));
        guard += 1;
    }
    // The apps' `done` means acked by the driver; the printer FIFO may
    // still be draining to paper. Let the hardware catch up.
    let mut guard = 0;
    while guard < 400 {
        let printed = os
            .device_mut::<Printer>(hwmap::PRINTER)
            .map_or(0, |p| p.printed().len());
        if printed >= job.len() {
            break;
        }
        os.run_for(SimDuration::from_millis(50));
        guard += 1;
    }

    result.expected_printed = job.len() as u64;
    result.expected_samples = blocks_total * block_bytes as u64;
    if let Some(printer) = os.device_mut::<Printer>(hwmap::PRINTER) {
        result.printed_bytes = printer.printed().len() as u64;
        result.printer_byte_exact = printer.printed() == &job[..];
    }
    if let Some(dac) = os.device_mut::<AudioDac>(hwmap::AUDIO) {
        result.samples_played = dac.samples_played();
    }
    if cfg.checkpointing {
        let lpd = ckpt_lpd.borrow();
        let mp3 = ckpt_mp3.borrow();
        result.app_visible_errors = lpd.app_errors + mp3.app_errors;
        result.replays = lpd.replays + mp3.replays;
        result.workloads_done = lpd.done && mp3.done;
    } else {
        let lpd = legacy_lpd.borrow();
        let mp3 = legacy_mp3.borrow();
        result.app_visible_errors = lpd.job_restarts + lpd.fatal + mp3.blocks_dropped;
        result.workloads_done = lpd.done && mp3.done;
    }

    // Fossilize the folded timeline (including the new replay phase) and
    // the trace-loss counter into the digest-covered registry.
    let timeline = os.timeline();
    timeline.record_into(os.metrics_mut());
    fossilize_trace_loss(&mut os);
    let m = os.metrics();
    result.requests = m.counter("cdev.writes");
    result.saves = m.counter("ckpt.saves");
    result.restores = m.counter("ckpt.restores");
    result.dedup_bytes = m.counter("ckpt.dedup_bytes");
    result.watermark_jumps = m.counter("ckpt.watermark_jumps");
    result.digest = metrics_digest(&os);
    (result, os)
}

// ------------------------------------------------------------------------
// Fail-silent campaign: mutations that do NOT crash the driver.

use phoenix_servers::fsfmt::{FileContent, FileSpec};

use crate::apps::{DdLoop, DdLoopStatus, LpdLoop, LpdLoopStatus};

/// The three driver classes the fail-silent campaign mutates, with the
/// workload class that observes each one.
const FAILSILENT_TARGETS: [(&str, &str); 3] = [
    ("net", names::ETH_DP8390),
    ("block", names::BLK_SATA),
    ("char", names::CHR_PRINTER),
];

/// Parameters of the fail-silent detection campaign.
#[derive(Debug, Clone)]
pub struct FailsilentConfig {
    /// Root seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Injection rounds. Each round mutates every driver class once.
    pub rounds: u64,
    /// Virtual time between an injection and the first classification
    /// check (the mutation needs live traffic to take effect).
    pub injection_interval: SimDuration,
    /// How long an injected driver may sit endpoint-stable with a frozen
    /// workload before we declare the defect *fail-silent survived*. Must
    /// exceed every detector's horizon (MFS deadline 5 s, kernel progress
    /// watchdog 8 s, RS audit 750 ms) so "survived" means "survived all
    /// of them".
    pub detect_window: SimDuration,
    /// With `false`, boots the machine via
    /// [`crate::os::OsBuilder::without_sentinels`]: the crash-only
    /// baseline arm (heartbeats and exceptions still fire; protocol
    /// sentinels, babble guards and RS guard polling do not).
    pub sentinels: bool,
}

impl Default for FailsilentConfig {
    fn default() -> Self {
        FailsilentConfig {
            seed: 2007,
            rounds: 40,
            injection_interval: SimDuration::from_millis(20),
            detect_window: SimDuration::from_secs(10),
            sentinels: true,
        }
    }
}

impl FailsilentConfig {
    /// CI-sized variant (seconds, not minutes).
    pub fn quick(mut self) -> Self {
        self.rounds = 8;
        self
    }
}

/// Per-driver-class outcome counts.
#[derive(Debug, Clone, Default)]
pub struct FailsilentClassStats {
    /// Workload class ("net" / "block" / "char").
    pub class: String,
    /// Driver service name.
    pub driver: String,
    /// Mutations actually applied to this driver.
    pub injections: u64,
    /// Defects detected by the system (any RS defect class) and followed
    /// by a successful restart attempt.
    pub detected: u64,
    /// Detected defects where complaint evidence participated.
    pub sentinel_detected: u64,
    /// Detected defects where ONLY the complaint counter moved: the
    /// crash-only detectors (exit / exception / heartbeat) saw nothing,
    /// so these are coverage strictly beyond the baseline.
    pub sentinel_only: u64,
    /// Mutations that froze the workload yet survived the whole detect
    /// window unnoticed; the user restarts the driver by hand (§5.1
    /// input 3). These are the defects the paper calls fail-silent.
    pub fail_silent: u64,
    /// Rounds that exhausted their mutation budget with every mutation
    /// shrugged off (progress continued, no detector fired). Individual
    /// benign mutations inside a round are visible as `injections` minus
    /// the round outcomes.
    pub benign: u64,
    /// Detected or user-restarted drivers that did not come back up
    /// within the recovery guard.
    pub unrecovered: u64,
}

/// Outcome of [`run_failsilent_campaign`].
#[derive(Debug, Clone, Default)]
pub struct FailsilentResult {
    /// Whether the sentinel layers were armed (vs the baseline arm).
    pub sentinels: bool,
    /// One entry per driver class, in [`FAILSILENT_TARGETS`] order.
    pub classes: Vec<FailsilentClassStats>,
    /// Trace events lost to ring eviction (0 means the folded timeline
    /// in the digest is complete).
    pub trace_dropped: u64,
    /// Per-event-kind breakdown of [`FailsilentResult::trace_dropped`].
    pub trace_dropped_by_kind: Vec<(String, u64)>,
    /// MD5 over the canonical metrics dump — byte-identical across two
    /// same-seed runs.
    pub digest: String,
}

impl FailsilentResult {
    fn sum(&self, f: impl Fn(&FailsilentClassStats) -> u64) -> u64 {
        self.classes.iter().map(f).sum()
    }

    /// Total mutations applied.
    pub fn injections(&self) -> u64 {
        self.sum(|c| c.injections)
    }

    /// Total system-detected defects.
    pub fn detected(&self) -> u64 {
        self.sum(|c| c.detected)
    }

    /// Detections with complaint evidence.
    pub fn sentinel_detected(&self) -> u64 {
        self.sum(|c| c.sentinel_detected)
    }

    /// Detections invisible to the crash-only baseline.
    pub fn sentinel_only(&self) -> u64 {
        self.sum(|c| c.sentinel_only)
    }

    /// Fail-silent survivors (user had to restart by hand).
    pub fn fail_silent(&self) -> u64 {
        self.sum(|c| c.fail_silent)
    }

    /// Mutations the workloads shrugged off.
    pub fn benign(&self) -> u64 {
        self.sum(|c| c.benign)
    }

    /// Restarts that did not complete within the guard.
    pub fn unrecovered(&self) -> u64 {
        self.sum(|c| c.unrecovered)
    }

    /// Detected / (detected + fail-silent), in [0, 1]. Benign mutations
    /// are excluded: there was nothing to detect.
    pub fn coverage(&self) -> f64 {
        let harmful = self.detected() + self.fail_silent();
        if harmful == 0 {
            return 1.0;
        }
        self.detected() as f64 / harmful as f64
    }

    /// Coverage with the sentinel-only detections reclassified as misses:
    /// what the crash-only baseline would have scored on the same defect
    /// population.
    pub fn crash_only_coverage(&self) -> f64 {
        let harmful = self.detected() + self.fail_silent();
        if harmful == 0 {
            return 1.0;
        }
        (self.detected() - self.sentinel_only()) as f64 / harmful as f64
    }

    /// Renders the per-class table plus the coverage summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.classes {
            out.push_str(&format!(
                "{:<5} {:<12} inj {:>3}: detected {:>3} (sentinel {:>3}, \
                 sentinel-only {:>3}), fail-silent {:>3}, benign {:>3}, \
                 unrecovered {}\n",
                c.class,
                c.driver,
                c.injections,
                c.detected,
                c.sentinel_detected,
                c.sentinel_only,
                c.fail_silent,
                c.benign,
                c.unrecovered,
            ));
        }
        out.push_str(&format!(
            "coverage {:.1}% (crash-only baseline {:.1}%); digest {}",
            self.coverage() * 100.0,
            self.crash_only_coverage() * 100.0,
            self.digest,
        ));
        if self.trace_dropped > 0 {
            out.push_str(&format!(
                "; WARNING: {} trace events lost{}",
                self.trace_dropped,
                render_trace_loss(&self.trace_dropped_by_kind),
            ));
        }
        out
    }
}

/// Outcome of [`run_failsilent_control`]: the no-fault arm. Anything RS
/// restarted here is by definition a false restart of a healthy driver.
#[derive(Debug, Clone, Default)]
pub struct FailsilentControl {
    /// Recoveries RS executed (must be 0).
    pub restarts: u64,
    /// Complaints RS accepted (must be 0 — healthy drivers never accrue
    /// evidence).
    pub complaints_accepted: u64,
    /// Net datagrams echoed end to end (liveness floor).
    pub echoed: u64,
    /// Bytes the block workload read (liveness floor).
    pub disk_bytes: u64,
    /// Bytes the printer driver accepted (liveness floor).
    pub printed: u64,
    /// Same determinism fingerprint as the campaign's.
    pub digest: String,
}

struct FailsilentRig {
    os: Os,
    udp: Rc<RefCell<UdpStatus>>,
    dd: Rc<RefCell<DdLoopStatus>>,
    lpd: Rc<RefCell<LpdLoopStatus>>,
}

impl FailsilentRig {
    /// The monotone per-class progress odometer the campaign uses to tell
    /// "driver quietly dead" from "mutation was benign".
    fn progress(&self, class: usize) -> u64 {
        match class {
            0 => self.udp.borrow().echoed,
            1 => self.dd.borrow().bytes,
            _ => self.lpd.borrow().accepted,
        }
    }

    fn fossilize(&mut self) -> (u64, Vec<(String, u64)>, String) {
        let timeline = self.os.timeline();
        timeline.record_into(self.os.metrics_mut());
        let (trace_dropped, by_kind) = fossilize_trace_loss(&mut self.os);
        (trace_dropped, by_kind, metrics_digest(&self.os))
    }
}

/// Boots the three-class machine with one always-on workload per driver
/// class.
fn failsilent_rig(cfg: &FailsilentConfig) -> FailsilentRig {
    let file_size = 256 * 1024u64;
    let files = vec![FileSpec {
        name: "stream".to_string(),
        content: FileContent::Synthetic { size: file_size },
    }];
    let mut builder = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Dp8390)
        .with_disk(file_size / 512 + 256, cfg.seed ^ 0xd15c, files)
        .with_chardevs()
        .heartbeat(SimDuration::from_millis(500), 2);
    if !cfg.sentinels {
        builder = builder.without_sentinels();
    }
    let mut os = builder.boot();
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");

    let udp = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app(
        "udp-traffic",
        Box::new(UdpPing::new(
            inet,
            2_000_000,
            SimDuration::from_millis(5),
            udp.clone(),
        )),
    );
    let dd = Rc::new(RefCell::new(DdLoopStatus::default()));
    os.spawn_app(
        "dd-loop",
        Box::new(DdLoop::new(vfs, "stream", 16 * 1024, dd.clone())),
    );
    let lpd = Rc::new(RefCell::new(LpdLoopStatus::default()));
    let page: Vec<u8> = (0..512u32).map(|i| (i * 7 + 13) as u8).collect();
    os.spawn_app("lpd-loop", Box::new(LpdLoop::new(vfs, page, lpd.clone())));
    os.run_for(SimDuration::from_millis(200));
    FailsilentRig { os, udp, dd, lpd }
}

/// Runs the fail-silent campaign: round-robin §7.2 mutations over the
/// net, block and char drivers while one workload per class keeps their
/// hot paths busy, classifying every injection as detected-and-recovered,
/// fail-silent-survived, or benign. Hands back the booted [`Os`] so
/// callers can inspect `sentinel.*` / `rs.complaints.*` counters and the
/// folded recovery timeline.
pub fn run_failsilent_campaign(cfg: &FailsilentConfig) -> (FailsilentResult, Os) {
    let mut rig = failsilent_rig(cfg);
    let mut result = FailsilentResult {
        sentinels: cfg.sentinels,
        classes: FAILSILENT_TARGETS
            .iter()
            .map(|(class, driver)| FailsilentClassStats {
                class: class.to_string(),
                driver: driver.to_string(),
                ..FailsilentClassStats::default()
            })
            .collect(),
        ..FailsilentResult::default()
    };

    for _ in 0..cfg.rounds {
        for (i, (_, driver)) in FAILSILENT_TARGETS.iter().enumerate() {
            // Make sure the victim is actually up before mutating it.
            let mut guard = 0;
            while !rig.os.is_up(driver) && guard < 300 {
                rig.os.run_for(SimDuration::from_millis(100));
                guard += 1;
            }
            let Some(before) = rig.os.endpoint(driver) else {
                result.classes[i].unrecovered += 1;
                continue;
            };
            let counts_before = defect_counts(&rig.os);

            // §7.2's method, per class: "repeatedly injected 1 randomly
            // selected fault into the running driver until it crashed" —
            // here, until any detector fires (endpoint replaced) or the
            // workload freezes with no detection (fail-silent). Most
            // single mutations land in cold code and change nothing; the
            // paper needed ~36 per visible defect.
            #[derive(PartialEq)]
            enum Outcome {
                Detected,
                Benign,
                FailSilent,
            }
            let mut outcome = Outcome::Benign;
            let mut mutations = 0u64;
            while outcome == Outcome::Benign && mutations < 200 {
                if rig.os.endpoint(driver) != Some(before) {
                    // A previous mutation's defect surfaced late.
                    outcome = Outcome::Detected;
                    break;
                }
                if rig.os.inject_fault(driver).is_none() {
                    break;
                }
                mutations += 1;
                result.classes[i].injections += 1;
                rig.os.run_for(cfg.injection_interval);

                // Classify: watch the endpoint (any detector fired -> RS
                // replaced the incarnation) against the workload odometer
                // (progress -> this mutation was benign so far).
                let p0 = rig.progress(i);
                let started = rig.os.now();
                outcome = Outcome::FailSilent;
                loop {
                    if rig.os.endpoint(driver) != Some(before) {
                        outcome = Outcome::Detected;
                        break;
                    }
                    if rig.progress(i) > p0 {
                        // Progress can race a complaint quorum that is
                        // still accumulating; give the arbiter a beat
                        // before calling the mutation benign.
                        rig.os.run_for(SimDuration::from_millis(100));
                        outcome = if rig.os.endpoint(driver) != Some(before) {
                            Outcome::Detected
                        } else {
                            Outcome::Benign
                        };
                        break;
                    }
                    if rig.os.now().since(started) >= cfg.detect_window {
                        break;
                    }
                    rig.os.run_for(SimDuration::from_millis(100));
                }
            }

            match outcome {
                Outcome::Benign => result.classes[i].benign += 1,
                Outcome::Detected => {
                    let mut recovered = false;
                    for _ in 0..300 {
                        if rig.os.endpoint(driver).is_some_and(|e| e != before) {
                            recovered = true;
                            break;
                        }
                        rig.os.run_for(SimDuration::from_millis(100));
                    }
                    let delta_complaint = defect_counts(&rig.os)[4] > counts_before[4];
                    let crash_classes_moved = {
                        let after = defect_counts(&rig.os);
                        // exit, exception, killed, heartbeat — everything
                        // the crash-only baseline can see.
                        [0usize, 1, 2, 3]
                            .iter()
                            .any(|&k| after[k] > counts_before[k])
                    };
                    result.classes[i].detected += 1;
                    if delta_complaint {
                        result.classes[i].sentinel_detected += 1;
                        if !crash_classes_moved {
                            result.classes[i].sentinel_only += 1;
                        }
                    }
                    if !recovered {
                        result.classes[i].unrecovered += 1;
                    }
                }
                Outcome::FailSilent => {
                    // Undetected by every layer: the §5.1-input-3 user
                    // notices the frozen workload and restarts by hand.
                    result.classes[i].fail_silent += 1;
                    rig.os.service_restart(driver);
                    let mut recovered = false;
                    for _ in 0..300 {
                        if rig.os.endpoint(driver).is_some_and(|e| e != before) {
                            recovered = true;
                            break;
                        }
                        rig.os.run_for(SimDuration::from_millis(100));
                    }
                    if !recovered {
                        result.classes[i].unrecovered += 1;
                    }
                }
            }
            // Let the workloads re-establish before the next mutation.
            rig.os.run_for(SimDuration::from_millis(100));
        }
    }

    // Drain, then fossilize the timeline and trace-loss into the digest.
    rig.os.run_for(SimDuration::from_secs(1));
    let (trace_dropped, by_kind, digest) = rig.fossilize();
    result.trace_dropped = trace_dropped;
    result.trace_dropped_by_kind = by_kind;
    result.digest = digest;
    (result, rig.os)
}

/// Runs the no-fault control arm: the same machine and workloads, zero
/// injections, fixed virtual duration. With the sentinels armed, every
/// restart or accepted complaint it reports is a false positive.
pub fn run_failsilent_control(cfg: &FailsilentConfig, run_for: SimDuration) -> FailsilentControl {
    let mut rig = failsilent_rig(cfg);
    rig.os.run_for(run_for);
    let (_, _, digest) = rig.fossilize();
    let control = FailsilentControl {
        restarts: rig.os.metrics().counter("rs.recoveries"),
        complaints_accepted: rig.os.metrics().counter("rs.complaints.accepted"),
        echoed: rig.udp.borrow().echoed,
        disk_bytes: rig.dd.borrow().bytes,
        printed: rig.lpd.borrow().accepted,
        digest,
    };
    control
}

// ------------------------------------------------------------------------
// Microreboot campaign: crash-only system servers under mutation.

use phoenix_servers::ServerFault;

use crate::apps::{Dd, DdStatus, Wget, WgetStatus};

/// The four system servers the microreboot campaign mutates. PM is not in
/// the RS service table — its recovery is the *recursive* path where RS
/// spawns the replacement itself.
const MICROREBOOT_TARGETS: [&str; 4] = [names::VFS, names::MFS, names::INET, "pm"];

/// Parameters of the server-microreboot campaign.
#[derive(Debug, Clone)]
pub struct MicrorebootConfig {
    /// Root seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Injection rounds. Each round mutates every system server once.
    pub rounds: u64,
    /// How long a mutated server may sit endpoint-stable before the
    /// defect is declared *fail-silent survived*. Must exceed every
    /// detector's horizon: the kernel request-age guard (8 s) plus one
    /// RS audit period, and three missed PM liveness pings.
    pub detect_window: SimDuration,
    /// Warn when a server's externalized session state exceeds this many
    /// bytes in the DS snapshot store — crash-only restarts are only
    /// cheap while the state that must be rehydrated stays small.
    pub snapshot_cap_bytes: u64,
}

impl Default for MicrorebootConfig {
    fn default() -> Self {
        MicrorebootConfig {
            seed: 2007,
            rounds: 10,
            detect_window: SimDuration::from_secs(12),
            snapshot_cap_bytes: 16 * 1024,
        }
    }
}

impl MicrorebootConfig {
    /// CI-sized variant (seconds, not minutes).
    pub fn quick(mut self) -> Self {
        self.rounds = 3;
        self
    }
}

/// Per-server outcome counts.
#[derive(Debug, Clone, Default)]
pub struct MicrorebootServerStats {
    /// Server name ("vfs" / "mfs" / "inet" / "pm").
    pub server: String,
    /// Mutations applied to this server.
    pub injections: u64,
    /// Injected defect mix.
    pub crashes: u64,
    /// Wedge defects (server swallows events without crashing).
    pub stalls: u64,
    /// Corruption defects (server garbles its replies).
    pub garbles: u64,
    /// Defects some detector noticed: the incarnation was replaced
    /// within the detect window.
    pub detected: u64,
    /// Detected rounds whose observer job still finished byte-exact
    /// with zero application-visible errors (microreboot transparency).
    pub transparent: u64,
    /// Mutations that froze the system yet survived the whole window
    /// unnoticed; the user restarts the server by hand.
    pub fail_silent: u64,
    /// Mutations that visibly changed nothing inside the window.
    pub benign: u64,
    /// Detected or user-restarted servers that did not come back up.
    pub unrecovered: u64,
}

/// Outcome of [`run_microreboot_campaign`].
#[derive(Debug, Clone, Default)]
pub struct MicrorebootResult {
    /// One entry per server, in [`MICROREBOOT_TARGETS`] order.
    pub servers: Vec<MicrorebootServerStats>,
    /// Recursive-escalation ladder counts over the whole campaign:
    /// single-server microreboots, dependency-group reboots, storm
    /// escalations (`rs.escalations.level{1,2,3}`).
    pub escalations: [u64; 3],
    /// Final `ds.snapshot_bytes` gauge (externalized server state).
    pub snapshot_bytes: u64,
    /// Final `ckpt.store_size` gauge (records in the DS snapshot store).
    pub snapshot_records: u64,
    /// The configured snapshot cap, echoed for the report.
    pub snapshot_cap_bytes: u64,
    /// Per-phase MTTR rows folded from the causal trace:
    /// `(phase, episodes, mean)`.
    pub phase_mttr: Vec<(String, usize, SimDuration)>,
    /// Trace events lost to ring eviction (0 = complete timeline).
    pub trace_dropped: u64,
    /// Per-event-kind breakdown of [`MicrorebootResult::trace_dropped`].
    pub trace_dropped_by_kind: Vec<(String, u64)>,
    /// MD5 over the canonical metrics dump — byte-identical across two
    /// same-seed runs.
    pub digest: String,
}

impl MicrorebootResult {
    fn sum(&self, f: impl Fn(&MicrorebootServerStats) -> u64) -> u64 {
        self.servers.iter().map(f).sum()
    }

    /// Total mutations applied.
    pub fn injections(&self) -> u64 {
        self.sum(|s| s.injections)
    }

    /// Total detected-and-replaced defects.
    pub fn detected(&self) -> u64 {
        self.sum(|s| s.detected)
    }

    /// Total fail-silent survivors.
    pub fn fail_silent(&self) -> u64 {
        self.sum(|s| s.fail_silent)
    }

    /// Total transparent recoveries.
    pub fn transparent(&self) -> u64 {
        self.sum(|s| s.transparent)
    }

    /// Detected / (detected + fail-silent), in [0, 1].
    pub fn coverage(&self) -> f64 {
        let harmful = self.detected() + self.fail_silent();
        if harmful == 0 {
            return 1.0;
        }
        self.detected() as f64 / harmful as f64
    }

    /// Transparent / detected, in [0, 1]: of the defects the system
    /// caught, how many the observer application never noticed.
    pub fn transparency(&self) -> f64 {
        if self.detected() == 0 {
            return 1.0;
        }
        self.transparent() as f64 / self.detected() as f64
    }

    /// `true` when the externalized state outgrew the configured cap.
    pub fn snapshot_over_cap(&self) -> bool {
        self.snapshot_bytes > self.snapshot_cap_bytes
    }

    /// Renders the per-server table, the escalation ladder, the phase
    /// MTTR table and the coverage summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.servers {
            out.push_str(&format!(
                "{:<5} inj {:>3} (crash {:>2} stall {:>2} garble {:>2}): \
                 detected {:>3}, transparent {:>3}, fail-silent {:>2}, \
                 benign {:>2}, unrecovered {}\n",
                s.server,
                s.injections,
                s.crashes,
                s.stalls,
                s.garbles,
                s.detected,
                s.transparent,
                s.fail_silent,
                s.benign,
                s.unrecovered,
            ));
        }
        out.push_str(&format!(
            "escalations: {} microreboots, {} group reboots, {} storm\n",
            self.escalations[0], self.escalations[1], self.escalations[2],
        ));
        for (phase, episodes, mean) in &self.phase_mttr {
            out.push_str(&format!(
                "phase {phase:<12} episodes {episodes:>3}  mean {mean}\n"
            ));
        }
        out.push_str(&format!(
            "snapshot store: {} bytes in {} records (cap {})",
            self.snapshot_bytes, self.snapshot_records, self.snapshot_cap_bytes,
        ));
        if self.snapshot_over_cap() {
            out.push_str(" -- WARNING: over cap, rehydration no longer cheap");
        }
        out.push('\n');
        out.push_str(&format!(
            "coverage {:.1}%, transparency {:.1}%; digest {}",
            self.coverage() * 100.0,
            self.transparency() * 100.0,
            self.digest,
        ));
        if self.trace_dropped > 0 {
            out.push_str(&format!(
                "; WARNING: {} trace events lost{}",
                self.trace_dropped,
                render_trace_loss(&self.trace_dropped_by_kind),
            ));
        }
        out
    }
}

/// Outcome of [`run_microreboot_control`]: the no-fault arm. Any restart
/// or escalation here is a false positive against a healthy server.
#[derive(Debug, Clone, Default)]
pub struct MicrorebootControl {
    /// Service recoveries RS executed (must be 0).
    pub restarts: u64,
    /// Recursive PM recoveries (must be 0).
    pub pm_recoveries: u64,
    /// Complaints RS accepted (must be 0).
    pub complaints_accepted: u64,
    /// Escalation-ladder activations (must all be 0).
    pub escalations: u64,
    /// Net datagrams echoed end to end (liveness floor).
    pub echoed: u64,
    /// Bytes the pristine reader hashed (liveness floor).
    pub disk_bytes: u64,
    /// Same determinism fingerprint as the campaign's.
    pub digest: String,
}

struct MicrorebootRig {
    os: Os,
    udp: Rc<RefCell<UdpStatus>>,
    /// SHA-1 a pristine, fault-free read of the stream file produces.
    expected_sha1: String,
    /// MD5 a pristine, fault-free download produces.
    expected_md5: String,
    /// Monotone suffix for observer process names (determinism: names
    /// are part of the spawn order the kernel sees).
    observer_seq: u64,
}

const MICROREBOOT_FILE: u64 = 128 * 1024;
const MICROREBOOT_DOWNLOAD: u64 = 32 * 1024;

/// What a per-round observer application watches.
enum Observer {
    Disk(Rc<RefCell<DdStatus>>),
    Net(Rc<RefCell<WgetStatus>>),
}

impl Observer {
    /// Monotone progress odometer.
    fn progress(&self) -> u64 {
        match self {
            Observer::Disk(st) => st.borrow().bytes,
            Observer::Net(st) => st.borrow().bytes,
        }
    }

    fn done(&self) -> bool {
        match self {
            Observer::Disk(st) => st.borrow().done,
            Observer::Net(st) => st.borrow().done,
        }
    }

    /// Completed byte-exact with no application-visible errors.
    fn byte_exact(&self, rig: &MicrorebootRig) -> bool {
        match self {
            Observer::Disk(st) => {
                let st = st.borrow();
                st.done && st.errors == 0 && st.sha1.as_deref() == Some(rig.expected_sha1.as_str())
            }
            Observer::Net(st) => {
                let st = st.borrow();
                st.done && st.md5.as_deref() == Some(rig.expected_md5.as_str())
            }
        }
    }
}

impl MicrorebootRig {
    /// Spawns the per-round observer job: a recovery-aware reader for the
    /// file-system servers (and PM, where it is a pure liveness witness),
    /// a recovery-aware download for INET.
    fn spawn_observer(&mut self, target: &str) -> Observer {
        self.observer_seq += 1;
        let rs = self.os.endpoint("rs").expect("rs is immortal");
        let allow = ["vfs", "pm", "inet", "rs"];
        if target == names::INET {
            let inet = self.os.endpoint(names::INET).expect("inet up");
            let st = Rc::new(RefCell::new(WgetStatus::default()));
            // Content seed 0 on every round: the pristine reference digest
            // is the one byte-exact expectation for all net observers.
            let app = Wget::new(inet, MICROREBOOT_DOWNLOAD, 0, st.clone()).recovery_aware(rs);
            self.os.spawn_app_with_ipc(
                &format!("wget-{}", self.observer_seq),
                Box::new(app),
                &allow,
            );
            Observer::Net(st)
        } else {
            let vfs = self.os.endpoint(names::VFS).expect("vfs up");
            let st = Rc::new(RefCell::new(DdStatus::default()));
            let app = Dd::new(vfs, "stream", 8 * 1024, st.clone()).recovery_aware(rs);
            self.os
                .spawn_app_with_ipc(&format!("dd-{}", self.observer_seq), Box::new(app), &allow);
            Observer::Disk(st)
        }
    }

    fn fossilize(&mut self) -> (u64, Vec<(String, u64)>, String) {
        let timeline = self.os.timeline();
        timeline.record_into(self.os.metrics_mut());
        let (trace_dropped, by_kind) = fossilize_trace_loss(&mut self.os);
        (trace_dropped, by_kind, metrics_digest(&self.os))
    }
}

/// Boots the crash-only machine (checkpointing servers, sticky slots,
/// PM guard) with always-on datagram traffic, and records the byte-exact
/// expectations from one pristine run of each observer job.
fn microreboot_rig(cfg: &MicrorebootConfig) -> MicrorebootRig {
    let files = vec![FileSpec {
        name: "stream".to_string(),
        content: FileContent::Synthetic {
            size: MICROREBOOT_FILE,
        },
    }];
    let mut os = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Dp8390)
        .with_disk(MICROREBOOT_FILE / 512 + 256, cfg.seed ^ 0xd15c, files)
        .with_checkpointing()
        .heartbeat(SimDuration::from_millis(500), 2)
        .boot();
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");

    let udp = Rc::new(RefCell::new(UdpStatus::default()));
    os.spawn_app(
        "udp-traffic",
        Box::new(UdpPing::new(
            inet,
            2_000_000,
            SimDuration::from_millis(5),
            udp.clone(),
        )),
    );

    // Pristine reference jobs: their digests define "byte-exact" for
    // every later observer, and they warm the mount tables and session
    // slabs so the first checkpoint save happens before any fault.
    let dd_ref = Rc::new(RefCell::new(DdStatus::default()));
    os.spawn_app(
        "dd-ref",
        Box::new(Dd::new(vfs, "stream", 8 * 1024, dd_ref.clone())),
    );
    let wget_ref = Rc::new(RefCell::new(WgetStatus::default()));
    os.spawn_app(
        "wget-ref",
        Box::new(Wget::new(inet, MICROREBOOT_DOWNLOAD, 0, wget_ref.clone())),
    );
    let mut guard = 0;
    while (!dd_ref.borrow().done || !wget_ref.borrow().done) && guard < 600 {
        os.run_for(SimDuration::from_millis(50));
        guard += 1;
    }
    let expected_sha1 = dd_ref.borrow().sha1.clone().expect("pristine read done");
    let expected_md5 = wget_ref
        .borrow()
        .md5
        .clone()
        .expect("pristine download done");
    MicrorebootRig {
        os,
        udp,
        expected_sha1,
        expected_md5,
        observer_seq: 0,
    }
}

/// Runs the microreboot campaign: round-robin crash/stall/garble
/// mutations over VFS, MFS, INET and PM while recovery-aware observer
/// jobs watch each one, classifying every injection as
/// detected-and-recovered (transparent or not), fail-silent-survived, or
/// benign. Hands back the booted [`Os`] for counter and timeline
/// inspection.
pub fn run_microreboot_campaign(cfg: &MicrorebootConfig) -> (MicrorebootResult, Os) {
    let mut rig = microreboot_rig(cfg);
    let mut result = MicrorebootResult {
        servers: MICROREBOOT_TARGETS
            .iter()
            .map(|server| MicrorebootServerStats {
                server: server.to_string(),
                ..MicrorebootServerStats::default()
            })
            .collect(),
        snapshot_cap_bytes: cfg.snapshot_cap_bytes,
        ..MicrorebootResult::default()
    };

    #[derive(PartialEq)]
    enum Outcome {
        Detected,
        Benign,
        FailSilent,
    }

    for _ in 0..cfg.rounds {
        for (i, target) in MICROREBOOT_TARGETS.iter().enumerate() {
            // Make sure the victim is actually up before mutating it.
            let mut guard = 0;
            while rig.os.endpoint(target).is_none() && guard < 300 {
                rig.os.run_for(SimDuration::from_millis(100));
                guard += 1;
            }
            let Some(before) = rig.os.endpoint(target) else {
                result.servers[i].unrecovered += 1;
                continue;
            };

            // The fault is armed *before* the observer starts so the
            // observer's own first request is what consumes it: a crash
            // lands mid-job, a stall leaves the observer's open call to
            // age into the kernel request-age guard, a garble corrupts a
            // reply the observer is actually waiting for. (PM's trigger
            // is the RS liveness ping instead.)
            let fault = rig.os.inject_server_fault(target);
            result.servers[i].injections += 1;
            match fault {
                ServerFault::Crash => result.servers[i].crashes += 1,
                ServerFault::Stall => result.servers[i].stalls += 1,
                ServerFault::Garble => result.servers[i].garbles += 1,
                ServerFault::Benign => {}
            }
            let observer = rig.spawn_observer(target);

            let started = rig.os.now();
            let mut outcome = Outcome::FailSilent;
            loop {
                if rig.os.endpoint(target) != Some(before) {
                    outcome = Outcome::Detected;
                    break;
                }
                // PM is not on the observer's path, so its completion
                // says nothing about PM's health; only the endpoint and
                // the window classify a PM round.
                if *target != "pm" && observer.done() {
                    // Give a still-accumulating complaint a beat before
                    // calling the mutation benign.
                    rig.os.run_for(SimDuration::from_millis(200));
                    outcome = if rig.os.endpoint(target) != Some(before) {
                        Outcome::Detected
                    } else {
                        Outcome::Benign
                    };
                    break;
                }
                if rig.os.now().since(started) >= cfg.detect_window {
                    break;
                }
                rig.os.run_for(SimDuration::from_millis(50));
            }

            let wait_recovered = |rig: &mut MicrorebootRig| {
                for _ in 0..300 {
                    if rig.os.endpoint(target).is_some_and(|e| e != before) {
                        return true;
                    }
                    rig.os.run_for(SimDuration::from_millis(100));
                }
                false
            };

            match outcome {
                Outcome::Benign => result.servers[i].benign += 1,
                Outcome::Detected => {
                    result.servers[i].detected += 1;
                    if !wait_recovered(&mut rig) {
                        result.servers[i].unrecovered += 1;
                    }
                    // Transparency: the observer must finish byte-exact
                    // across the microreboot. Progress-based cutoff so a
                    // wedged job does not burn the whole budget.
                    let mut idle = 0;
                    while !observer.done() && idle < 100 {
                        let p0 = observer.progress();
                        rig.os.run_for(SimDuration::from_millis(100));
                        idle = if observer.progress() > p0 {
                            0
                        } else {
                            idle + 1
                        };
                    }
                    if observer.byte_exact(&rig) {
                        result.servers[i].transparent += 1;
                    }
                }
                Outcome::FailSilent => {
                    result.servers[i].fail_silent += 1;
                    if *target == "pm" {
                        // No user-facing restart handle exists for PM —
                        // that is exactly why RS must guard it.
                        result.servers[i].unrecovered += 1;
                    } else {
                        rig.os.service_restart(target);
                        if !wait_recovered(&mut rig) {
                            result.servers[i].unrecovered += 1;
                        }
                    }
                }
            }
            // Let the machine settle before the next mutation.
            rig.os.run_for(SimDuration::from_millis(100));
        }
    }

    // Drain, then fossilize the timeline and trace-loss into the digest.
    rig.os.run_for(SimDuration::from_secs(1));
    let (trace_dropped, by_kind, digest) = rig.fossilize();
    result.trace_dropped = trace_dropped;
    result.trace_dropped_by_kind = by_kind;
    result.digest = digest;
    for (k, slot) in ["level1", "level2", "level3"].iter().zip(0..) {
        result.escalations[slot] = rig.os.metrics().counter(&format!("rs.escalations.{k}"));
    }
    result.snapshot_bytes = rig.os.metrics().counter("ds.snapshot_bytes");
    result.snapshot_records = rig.os.metrics().counter("ckpt.store_size");
    for phase in ["detect", "repair", "reintegrate", "replay", "total"] {
        if let Some(h) = rig
            .os
            .metrics()
            .histogram(&format!("recovery.phase.{phase}"))
        {
            if let Some(mean) = h.mean_duration() {
                result.phase_mttr.push((phase.to_string(), h.count(), mean));
            }
        }
    }
    (result, rig.os)
}

/// Runs the no-fault control arm: the same crash-only machine and
/// workloads, zero injections, fixed virtual duration. Every restart,
/// accepted complaint or escalation it reports is a false positive.
pub fn run_microreboot_control(
    cfg: &MicrorebootConfig,
    run_for: SimDuration,
) -> MicrorebootControl {
    let mut rig = microreboot_rig(cfg);
    // One fault-free observer per server keeps the exact campaign
    // traffic pattern on the wire while nothing is injected.
    let observers: Vec<Observer> = MICROREBOOT_TARGETS
        .iter()
        .map(|target| rig.spawn_observer(target))
        .collect();
    rig.os.run_for(run_for);
    let disk_bytes = observers.iter().map(Observer::progress).sum();
    let echoed = rig.udp.borrow().echoed;
    let (_, _, digest) = rig.fossilize();
    let m = rig.os.metrics();
    MicrorebootControl {
        restarts: m.counter("rs.recoveries"),
        pm_recoveries: m.counter("rs.pm_recoveries"),
        complaints_accepted: m.counter("rs.complaints.accepted"),
        escalations: m.counter("rs.escalations.level1")
            + m.counter("rs.escalations.level2")
            + m.counter("rs.escalations.level3"),
        echoed,
        disk_bytes,
        digest,
    }
}

// ------------------------------------------------------------------------
// SLO campaign: phase-attributed latency under open-loop load and chaos.

use phoenix_simcore::obs::phase;

use crate::loadgen::{InetLoadConfig, InetLoadGen, LoadStatus, VfsJobMix, VfsLoadConfig};

/// Parameters of the SLO campaign: an open-loop INET client fleet plus a
/// multi-client VFS job mix run against a machine whose network and block
/// drivers are repeatedly killed (optionally under fabric chaos), with
/// every completed request attributed to steady state or a recovery
/// phase.
#[derive(Debug, Clone)]
pub struct SloCampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// INET fleet tuning (session count, interarrival, sizes, linger).
    pub inet: InetLoadConfig,
    /// VFS job-mix tuning (client count, interarrival, chunk sizes).
    pub vfs: VfsLoadConfig,
    /// Chaos intensity for the `driver_traffic` preset; 0 disables the
    /// chaos layer entirely (pure kill campaign).
    pub intensity: f64,
    /// Kills per target driver (network and block, alternating).
    pub kills_per_target: u32,
    /// Virtual time between consecutive kills.
    pub kill_interval: SimDuration,
    /// Size of the on-disk file the VFS mix reads.
    pub file_size: u64,
}

impl Default for SloCampaignConfig {
    fn default() -> Self {
        SloCampaignConfig {
            seed: 2007,
            inet: InetLoadConfig::default(),
            vfs: VfsLoadConfig::default(),
            intensity: 0.3,
            kills_per_target: 2,
            kill_interval: SimDuration::from_secs(2),
            file_size: 256 * 1024,
        }
    }
}

/// Per-phase SLO row: latency percentiles, goodput and head-of-line
/// depth for one recovery phase (or steady state).
#[derive(Debug, Clone)]
pub struct SloPhaseRow {
    /// Phase name (`phoenix_simcore::obs::phase`).
    pub phase: String,
    /// Requests whose completion fell in this phase.
    pub requests: u64,
    /// Failed (or shed) requests attributed to this phase.
    pub failed: u64,
    /// Response payload bytes delivered in this phase.
    pub goodput_bytes: u64,
    /// Total virtual time spent in this phase across all episodes.
    pub phase_us: u64,
    /// Peak head-of-line depth (requests in flight) seen in this phase.
    pub hol_depth: u64,
    /// Successful-request latency samples behind the percentiles.
    pub samples: u64,
    /// Latency percentiles over successful requests, microseconds.
    pub p50_us: u64,
    /// See [`SloPhaseRow::p50_us`].
    pub p99_us: u64,
    /// See [`SloPhaseRow::p50_us`].
    pub p999_us: u64,
}

/// Aggregate SLO-campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct SloCampaignResult {
    /// Chaos intensity the campaign ran at.
    pub intensity: f64,
    /// INET session slots the fleet multiplexed.
    pub sessions: u32,
    /// Every kill in order.
    pub kills: Vec<ChaosKillRecord>,
    /// Requests admitted (INET + VFS).
    pub started: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed.
    pub failed: u64,
    /// Arrivals shed at a full slot backlog.
    pub shed: u64,
    /// Peak concurrently-open INET connections.
    pub peak_live: u64,
    /// The INET fleet drained every scheduled arrival.
    pub inet_drained: bool,
    /// The VFS mix drained every scheduled arrival.
    pub vfs_drained: bool,
    /// Recovery episodes the trace fold could not fully account for.
    pub unaccounted_episodes: u64,
    /// One row per phase that saw requests or wall time, in
    /// detection → repair → reintegration → replay → steady order.
    pub phases: Vec<SloPhaseRow>,
    /// Trace events lost to ring eviction (see [`ChaosCampaignResult`]).
    pub trace_dropped: u64,
    /// Per-event-kind breakdown of [`SloCampaignResult::trace_dropped`].
    pub trace_dropped_by_kind: Vec<(String, u64)>,
    /// MD5 over the canonical metrics dump (determinism handle).
    pub digest: String,
}

impl SloCampaignResult {
    /// Fraction of kills that recovered, in [0, 1].
    pub fn recovery_rate(&self) -> f64 {
        if self.kills.is_empty() {
            return 1.0;
        }
        self.kills.iter().filter(|k| k.recovered).count() as f64 / self.kills.len() as f64
    }

    /// The row for a phase, if it saw requests or wall time.
    pub fn phase(&self, name: &str) -> Option<&SloPhaseRow> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Renders the summary: one header line plus one line per phase.
    pub fn render(&self) -> String {
        let mut out = format!(
            "slo under chaos {:.2}: {} sessions, {} kills -> recovery {:.0}%; \
             {} started / {} completed / {} failed / {} shed, peak live {}; \
             digest {}",
            self.intensity,
            self.sessions,
            self.kills.len(),
            self.recovery_rate() * 100.0,
            self.started,
            self.completed,
            self.failed,
            self.shed,
            self.peak_live,
            self.digest,
        );
        if self.trace_dropped > 0 {
            out.push_str(&format!(
                "; WARNING: {} trace events lost{} (timeline may be incomplete)",
                self.trace_dropped,
                render_trace_loss(&self.trace_dropped_by_kind),
            ));
        }
        for p in &self.phases {
            out.push_str(&format!(
                "\n  {:<12} {:>8} req {:>6} failed  p50 {:>8}us p99 {:>8}us \
                 p999 {:>8}us  goodput {:>10} B  hol {:>4}  span {}",
                p.phase,
                p.requests,
                p.failed,
                p.p50_us,
                p.p99_us,
                p.p999_us,
                p.goodput_bytes,
                p.hol_depth,
                SimDuration::from_micros(p.phase_us),
            ));
        }
        out
    }
}

/// Runs the SLO campaign: boots the RTL8139 network stack and a SATA disk
/// carrying the job-mix file, spawns the open-loop INET fleet and the VFS
/// reader mix, then kills the network and block drivers in alternation
/// (under fabric chaos when `intensity > 0`) while the load keeps
/// arriving. After the load drains, the recovery timeline is folded and
/// every request is attributed to steady state or the phase its
/// completion fell into.
///
/// Checkpointing is deliberately left off: the campaign kills drivers
/// only (INET and VFS survive and keep their state), and per-dispatch
/// INET snapshots would be quadratic in the 10⁴-connection slab.
pub fn run_slo_campaign(cfg: &SloCampaignConfig) -> (SloCampaignResult, Os) {
    let eth = names::ETH_RTL8139;
    let blk = names::BLK_SATA;
    let files = vec![FileSpec {
        name: cfg.vfs.path.clone(),
        content: FileContent::Synthetic {
            size: cfg.file_size,
        },
    }];
    let mut builder = Os::builder()
        .seed(cfg.seed)
        .with_network(NicKind::Rtl8139)
        .with_disk(cfg.file_size / 512 + 256, cfg.seed ^ 0xd15c, files)
        .heartbeat(SimDuration::from_millis(500), 3);
    if cfg.intensity > 0.0 {
        builder = builder.chaos(ChaosPlan::driver_traffic(cfg.intensity));
    }
    let mut os = builder.boot();

    let inet_status = Rc::new(RefCell::new(LoadStatus::default()));
    let vfs_status = Rc::new(RefCell::new(LoadStatus::default()));
    let inet = os.endpoint(names::INET).expect("inet up after boot");
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");
    os.spawn_app(
        "slo-inet-fleet",
        Box::new(InetLoadGen::new(
            inet,
            cfg.inet.clone(),
            inet_status.clone(),
        )),
    );
    os.spawn_app(
        "slo-vfs-mix",
        Box::new(VfsJobMix::new(vfs, cfg.vfs.clone(), vfs_status.clone())),
    );

    // Let the fleet ramp to steady state before the first kill, so the
    // steady-state row has samples to compare the recovery rows against.
    os.run_for(cfg.inet.ramp);

    let mut result = SloCampaignResult {
        intensity: cfg.intensity,
        sessions: cfg.inet.sessions,
        ..SloCampaignResult::default()
    };
    for _ in 0..cfg.kills_per_target {
        for target in [eth, blk] {
            let mut guard = 0;
            while !os.is_up(target) && guard < 3000 {
                os.run_for(SimDuration::from_millis(10));
                guard += 1;
            }
            let Some(before) = os.endpoint(target) else {
                result.kills.push(ChaosKillRecord {
                    target: target.to_string(),
                    recovered: false,
                    mttr: SimDuration::ZERO,
                });
                continue;
            };
            let t0 = os.now();
            os.kill_by_user(target);
            let mut recovered = false;
            let mut guard = 0;
            while guard < 3000 {
                os.run_for(SimDuration::from_millis(10));
                guard += 1;
                if os.endpoint(target).is_some_and(|ep| ep != before) {
                    recovered = true;
                    break;
                }
            }
            result.kills.push(ChaosKillRecord {
                target: target.to_string(),
                recovered,
                mttr: os.now().since(t0),
            });
            os.run_for(cfg.kill_interval);
        }
    }

    // Drain: run until both generators report every scheduled arrival
    // admitted, shed or completed (bounded — a wedged run still returns,
    // with `*_drained` false in the result).
    let mut guard = 0;
    while guard < 600 {
        let done = inet_status.borrow().drained && vfs_status.borrow().drained;
        if done {
            break;
        }
        os.run_for(SimDuration::from_millis(100));
        guard += 1;
    }
    os.run_for(SimDuration::from_secs(1));

    // Fold the recovery timeline, join the request log against it, and
    // fossilize everything (including trace loss) into the digest-covered
    // registry. The INET records come first, then VFS — a fixed order, so
    // two same-seed runs fold byte-identically.
    let timeline = os.timeline();
    timeline.record_into(os.metrics_mut());
    let mut requests: Vec<phoenix_simcore::obs::RequestRecord> = Vec::new();
    requests.extend(inet_status.borrow().records.iter().copied());
    requests.extend(vfs_status.borrow().records.iter().copied());
    timeline.record_requests_into(&requests, os.metrics_mut());
    let (trace_dropped, trace_by_kind) = fossilize_trace_loss(&mut os);
    result.trace_dropped = trace_dropped;
    result.trace_dropped_by_kind = trace_by_kind;
    result.unaccounted_episodes = timeline.unaccounted().len() as u64;

    {
        let ist = inet_status.borrow();
        let vst = vfs_status.borrow();
        result.started = ist.started + vst.started;
        result.completed = ist.completed + vst.completed;
        result.failed = ist.failed + vst.failed;
        result.shed = ist.shed + vst.shed;
        result.peak_live = ist.peak_live;
        result.inet_drained = ist.drained;
        result.vfs_drained = vst.drained;
    }
    // Phase rows in recovery-first order; steady last as the baseline.
    let order = [
        phase::DETECT,
        phase::REPAIR,
        phase::REINTEGRATE,
        phase::REPLAY,
        phase::STEADY,
    ];
    for ph in order {
        let m = os.metrics();
        let requests = m.counter(&format!("slo.requests.{ph}"));
        let phase_us = m.counter(&format!("slo.phase_us.{ph}"));
        if requests == 0 && phase_us == 0 {
            continue;
        }
        let (samples, p50, p99, p999) =
            m.log_histogram(&format!("slo.latency.{ph}"))
                .map_or((0, 0, 0, 0), |h| {
                    (
                        h.count(),
                        h.quantile(0.5).unwrap_or(0),
                        h.quantile(0.99).unwrap_or(0),
                        h.quantile(0.999).unwrap_or(0),
                    )
                });
        result.phases.push(SloPhaseRow {
            phase: ph.to_string(),
            requests,
            failed: m.counter(&format!("slo.failed.{ph}")),
            goodput_bytes: m.counter(&format!("slo.goodput_bytes.{ph}")),
            phase_us,
            hol_depth: m.counter(&format!("slo.hol_depth.{ph}")),
            samples,
            p50_us: p50,
            p99_us: p99,
            p999_us: p999,
        });
    }
    result.digest = metrics_digest(&os);
    (result, os)
}

// ------------------------------------------------------------------------
// Standby campaign: hot-standby failover vs cold restart+replay.

use phoenix_servers::policy::{AdaptParam, PolicyScript};

/// The canonical self-tuning recovery policy: one clamped bang-bang
/// controller per adaptable [`phoenix_servers::policy::PolicyParams`]
/// field, driven by the failure rate, the complaint rate and the p95 of
/// recent repair times. Every clamp band contains the baseline value, so
/// an idle system parks each parameter at a band edge and a failure burst
/// walks it deterministically toward the other. Campaigns assert the
/// `rs.adapt.trace.*` trajectory histograms never leave these bands.
pub const STANDBY_ADAPT_POLICY: &str = "\
adapt heartbeat_period when failures >= 1 halve else double clamp 250ms 2s
adapt backoff_base when failures >= 1 halve else double clamp 100ms 1s
adapt backoff_cap when failures >= 2 add 1 else sub 1 clamp 3 8
adapt restart_budget when failures >= 1 add 5 else sub 1 clamp 5 40
adapt budget_window when mttr_p95 > 5 halve else double clamp 10s 60s
adapt quorum_complaints when complaints >= 2 add 1 else sub 1 clamp 2 6
";

/// Parses [`STANDBY_ADAPT_POLICY`].
pub fn standby_adapt_script() -> PolicyScript {
    // analyze:allow(unwrap-recovery): parses a const known-good script;
    // covered by the policy unit tests, cannot fail at runtime.
    PolicyScript::parse(STANDBY_ADAPT_POLICY).expect("canonical adapt policy parses")
}

/// The live `rs.adapt.*` gauge values, in [`AdaptParam::ALL`] order.
/// They live in the counter registry, so every campaign digest already
/// covers them; this helper surfaces them for the human-readable line.
pub fn adapt_gauges(os: &Os) -> Vec<(String, u64)> {
    AdaptParam::ALL
        .iter()
        .map(|p| (p.gauge().to_string(), os.metrics().counter(p.gauge())))
        .collect()
}

/// Renders the adapted-parameter line printed next to campaign digests.
pub fn render_adapt_gauges(os: &Os) -> String {
    let parts: Vec<String> = adapt_gauges(os)
        .into_iter()
        .map(|(k, v)| format!("{}={v}", k.trim_start_matches("rs.adapt.")))
        .collect();
    format!("adapt: {}", parts.join(" "))
}

/// Parameters of the standby campaign: repeated deterministic defects
/// (wedge loops and checksum garbles, alternating) against the printer
/// and audio drivers while checkpointed workloads stream through them,
/// with hot-standby failover and the adapt controllers on or off.
#[derive(Debug, Clone)]
pub struct StandbyCampaignConfig {
    /// Root seed.
    pub seed: u64,
    /// Faults to inject, alternating printer / audio, and within each
    /// driver alternating wedge (heartbeat defect) / garble (complaint
    /// defect).
    pub faults: u64,
    /// Virtual settle time after each recovery.
    pub fault_interval: SimDuration,
    /// `true` = warm spares tail the WAL and are promoted at detection
    /// time; `false` = the cold restart+replay baseline.
    pub hot_standby: bool,
    /// Install [`STANDBY_ADAPT_POLICY`] on RS.
    pub adapt: bool,
}

impl Default for StandbyCampaignConfig {
    fn default() -> Self {
        StandbyCampaignConfig {
            seed: 2007,
            faults: 100,
            fault_interval: SimDuration::from_millis(400),
            hot_standby: true,
            adapt: true,
        }
    }
}

/// Per-driver-class outcome of the standby campaign.
#[derive(Debug, Clone, Default)]
pub struct StandbyClassStats {
    /// Driver service name.
    pub driver: String,
    /// Faults injected into this driver.
    pub faults: u64,
    /// Faults followed by a completed recovery inside the guard.
    pub recovered: u64,
    /// Faults whose recovery never completed.
    pub unrecovered: u64,
    /// Repair-phase episodes folded from the trace for this driver.
    pub repair_episodes: usize,
    /// Mean repair phase (noticed -> alive), microseconds.
    pub repair_mean_us: u64,
    /// Worst repair phase, microseconds.
    pub repair_max_us: u64,
}

/// Aggregate standby-campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct StandbyCampaignResult {
    /// Whether warm spares were armed.
    pub hot_standby: bool,
    /// Whether the adapt controllers ran.
    pub adapt: bool,
    /// Faults injected.
    pub faults: u64,
    /// Recoveries RS completed (`rs.recoveries`).
    pub recoveries: u64,
    /// Spare promotions (`rs.standby.promotions`).
    pub promotions: u64,
    /// Warm spares spawned (`rs.standby.spares_started`).
    pub spares_started: u64,
    /// Checkpoint tail polls the spares issued (`ckpt.tail_polls`).
    pub tail_polls: u64,
    /// Tail replies that advanced a spare's cursor (`ckpt.tail_adopted`).
    pub tail_adopted: u64,
    /// One entry per driver class, printer then audio.
    pub classes: Vec<StandbyClassStats>,
    /// Bytes the printer committed to paper (device oracle).
    pub printed_bytes: u64,
    /// Bytes the print job contained.
    pub expected_printed: u64,
    /// The printed stream equals the job byte-for-byte.
    pub printer_byte_exact: bool,
    /// Bytes the DAC played (device oracle).
    pub samples_played: u64,
    /// Bytes the audio stream contained.
    pub expected_samples: u64,
    /// Samples played twice (§6.3: audio recovery is not transparent —
    /// a promoted spare's tailed watermark may lag the primary by up to
    /// one tail period, so the replayed suffix can duplicate a block).
    pub audio_dup_bytes: u64,
    /// Errors that surfaced to the applications (must be 0).
    pub app_visible_errors: u64,
    /// Log replays the checkpointed apps performed.
    pub replays: u64,
    /// Watermark jumps (lost/stale snapshot, caller log trusted).
    pub watermark_jumps: u64,
    /// Both workloads ran to completion.
    pub workloads_done: bool,
    /// Controller steps that changed a parameter (`rs.adapt.updates`).
    pub adapt_updates: u64,
    /// Final adapted values, in [`AdaptParam::ALL`] order.
    pub adapt_gauges: Vec<(String, u64)>,
    /// Per-parameter trajectory range `(param, min, max)` observed by the
    /// audit-sweep trace histograms — the whole range must sit inside the
    /// rule's clamp band.
    pub adapt_trace: Vec<(String, u64, u64)>,
    /// Clamp-band violations found in the `rs.adapt.trace.*`
    /// trajectories (must be empty).
    pub adapt_out_of_band: Vec<String>,
    /// Trace events lost to ring eviction (0 = complete timeline).
    pub trace_dropped: u64,
    /// Per-event-kind breakdown of trace loss.
    pub trace_dropped_by_kind: Vec<(String, u64)>,
    /// MD5 over the canonical metrics dump — byte-identical across two
    /// same-seed runs.
    pub digest: String,
}

impl StandbyCampaignResult {
    /// The stats row for a driver class.
    pub fn class(&self, driver: &str) -> Option<&StandbyClassStats> {
        self.classes.iter().find(|c| c.driver == driver)
    }

    /// Renders the summary: mode line, per-class repair rows, workload
    /// integrity, and the adapted-parameter line next to the digest.
    pub fn render(&self) -> String {
        let mut out = format!(
            "standby={} adapt={}: {} faults -> {} recoveries \
             ({} promotions, {} spares, {} tail polls / {} adopted)\n",
            self.hot_standby,
            self.adapt,
            self.faults,
            self.recoveries,
            self.promotions,
            self.spares_started,
            self.tail_polls,
            self.tail_adopted,
        );
        for c in &self.classes {
            out.push_str(&format!(
                "{:<12} faults {:>3} recovered {:>3} unrecovered {}  \
                 repair mean {} max {} over {} episodes\n",
                c.driver,
                c.faults,
                c.recovered,
                c.unrecovered,
                SimDuration::from_micros(c.repair_mean_us),
                SimDuration::from_micros(c.repair_max_us),
                c.repair_episodes,
            ));
        }
        out.push_str(&format!(
            "printer {}/{} bytes (byte-exact: {}), audio {}/{} bytes \
             ({} duplicated), app errors {}, replays {}, watermark jumps {}\n",
            self.printed_bytes,
            self.expected_printed,
            self.printer_byte_exact,
            self.samples_played,
            self.expected_samples,
            self.audio_dup_bytes,
            self.app_visible_errors,
            self.replays,
            self.watermark_jumps,
        ));
        let gauges: Vec<String> = self
            .adapt_gauges
            .iter()
            .map(|(k, v)| format!("{}={v}", k.trim_start_matches("rs.adapt.")))
            .collect();
        out.push_str(&format!(
            "adapt updates {}, {}; digest {}",
            self.adapt_updates,
            gauges.join(" "),
            self.digest,
        ));
        if !self.adapt_trace.is_empty() {
            let ranges: Vec<String> = self
                .adapt_trace
                .iter()
                .map(|(p, lo, hi)| format!("{p}={lo}..{hi}"))
                .collect();
            out.push_str(&format!("\nadapt trajectory: {}", ranges.join(" ")));
        }
        for v in &self.adapt_out_of_band {
            out.push_str(&format!("\nWARNING: {v}"));
        }
        if self.trace_dropped > 0 {
            out.push_str(&format!(
                "\nWARNING: {} trace events lost{}",
                self.trace_dropped,
                render_trace_loss(&self.trace_dropped_by_kind),
            ));
        }
        out
    }
}

/// Outcome of [`run_standby_control`]: the no-fault arm with hot standby
/// armed. Any promotion or recovery here is a false failover of a
/// healthy driver.
#[derive(Debug, Clone, Default)]
pub struct StandbyControl {
    /// Spare promotions (must be 0).
    pub promotions: u64,
    /// Recoveries RS executed (must be 0).
    pub recoveries: u64,
    /// Complaints RS accepted (must be 0).
    pub complaints_accepted: u64,
    /// Warm spares spawned (liveness floor: both classes covered).
    pub spares_started: u64,
    /// Tail polls issued (liveness floor: the tail loop actually runs).
    pub tail_polls: u64,
    /// Bytes the printer workload got acknowledged (liveness floor).
    pub printed_acked: u64,
    /// Bytes the audio workload got acknowledged (liveness floor).
    pub audio_acked: u64,
    /// Same determinism fingerprint as the campaign's.
    pub digest: String,
}

struct StandbyRig {
    os: Os,
    lpd: Rc<RefCell<CkptLpdStatus>>,
    mp3: Rc<RefCell<CkptMp3Status>>,
    job_len: u64,
    blocks_total: u64,
    block_bytes: usize,
}

impl StandbyRig {
    /// Monotone per-class progress odometer (driver-acked bytes).
    fn progress(&self, class: usize) -> u64 {
        if class == 0 {
            self.lpd.borrow().acked
        } else {
            self.mp3.borrow().acked
        }
    }

    fn done(&self, class: usize) -> bool {
        if class == 0 {
            self.lpd.borrow().done
        } else {
            self.mp3.borrow().done
        }
    }
}

/// Boots the char-device machine (checkpointing on, warm spares and the
/// adapt controllers per `cfg`) with the checkpointed print and audio
/// workloads sized to stay in flight across the whole fault schedule.
fn standby_rig(cfg: &StandbyCampaignConfig) -> StandbyRig {
    let mut builder = Os::builder()
        .seed(cfg.seed)
        .heartbeat(SimDuration::from_millis(500), 3);
    builder = if cfg.hot_standby {
        builder.with_hot_standby()
    } else {
        builder.with_checkpointing()
    };
    if cfg.adapt {
        builder = builder.adapt_policy(standby_adapt_script());
    }
    let mut os = builder.boot();
    let vfs = os.endpoint(names::VFS).expect("vfs up after boot");

    // The drivers deduplicate replayed WAL writes against an absolute
    // stream watermark, so each class runs ONE long job sized to outlast
    // the whole schedule: a wedge is detected by heartbeat alone, but a
    // garbled checksum only trips the sentinels while requests flow.
    // Budget ~8 s of stream per fault (worst-case wedge detection is
    // 3 misses at the 2 s heartbeat-period clamp ceiling, plus backoff
    // and pacing) — the printer eats 32 KB/s, the DAC 176.4 KB/s.
    let secs = cfg.faults * 8 + 20;
    let job = ckpt_print_job(cfg.seed, (secs * 32 * 1024) as usize);
    let job_len = job.len() as u64;
    let blocks_total = secs * 40;
    let block_bytes = 4410usize; // 25 ms of CD stereo audio
    let block_period = SimDuration::from_millis(25);

    let lpd = Rc::new(RefCell::new(CkptLpdStatus::default()));
    let mp3 = Rc::new(RefCell::new(CkptMp3Status::default()));
    os.spawn_app("ckpt-lpd", Box::new(CkptLpd::new(vfs, job, lpd.clone())));
    os.spawn_app(
        "ckpt-mp3",
        Box::new(CkptMp3Player::new(
            vfs,
            blocks_total,
            block_bytes,
            block_period,
            mp3.clone(),
        )),
    );
    // Let the workloads open their devices and the spares start tailing.
    os.run_for(SimDuration::from_millis(300));
    StandbyRig {
        os,
        lpd,
        mp3,
        job_len,
        blocks_total,
        block_bytes,
    }
}

/// Fills the result fields shared by the campaign and its render: folds
/// the timeline (per-class repair phases), snapshots the standby and
/// adapt counters, audits the `rs.adapt.trace.*` trajectories against
/// the declared clamp bands, and computes the digest.
fn standby_fossilize(rig: &mut StandbyRig, cfg: &StandbyCampaignConfig) -> StandbyCampaignResult {
    let timeline = rig.os.timeline();
    timeline.record_into(rig.os.metrics_mut());
    let (trace_dropped, trace_by_kind) = fossilize_trace_loss(&mut rig.os);

    let mut classes = Vec::new();
    for driver in [names::CHR_PRINTER, names::CHR_AUDIO] {
        let repairs: Vec<u64> = timeline
            .episodes
            .iter()
            .filter(|e| e.service == driver)
            .filter_map(|e| e.repair().map(|d| d.as_micros()))
            .collect();
        let mean = if repairs.is_empty() {
            0
        } else {
            repairs.iter().sum::<u64>() / repairs.len() as u64
        };
        classes.push(StandbyClassStats {
            driver: driver.to_string(),
            repair_episodes: repairs.len(),
            repair_mean_us: mean,
            repair_max_us: repairs.iter().copied().max().unwrap_or(0),
            ..StandbyClassStats::default()
        });
    }

    // Clamp-band audit: the per-parameter trajectory histograms must
    // never leave the band their rule declared.
    let mut out_of_band = Vec::new();
    let mut adapt_trace = Vec::new();
    if cfg.adapt {
        for rule in standby_adapt_script().adapt_rules() {
            let (lo, hi) = rule.clamp_band();
            let name = format!("rs.adapt.trace.{}", rule.param.name());
            if let Some(h) = rig.os.metrics().histogram(&name) {
                let min = h.min().unwrap_or(lo as f64);
                let max = h.max().unwrap_or(hi as f64);
                adapt_trace.push((rule.param.name().to_string(), min as u64, max as u64));
                if min < lo as f64 || max > hi as f64 {
                    out_of_band.push(format!(
                        "{name} left clamp band [{lo}, {hi}]: saw [{min}, {max}]"
                    ));
                }
            }
        }
    }

    let m = rig.os.metrics();
    StandbyCampaignResult {
        hot_standby: cfg.hot_standby,
        adapt: cfg.adapt,
        recoveries: m.counter("rs.recoveries"),
        promotions: m.counter("rs.standby.promotions"),
        spares_started: m.counter("rs.standby.spares_started"),
        tail_polls: m.counter("ckpt.tail_polls"),
        tail_adopted: m.counter("ckpt.tail_adopted"),
        classes,
        watermark_jumps: m.counter("ckpt.watermark_jumps"),
        adapt_updates: m.counter("rs.adapt.updates"),
        adapt_gauges: adapt_gauges(&rig.os),
        adapt_trace,
        adapt_out_of_band: out_of_band,
        trace_dropped,
        trace_dropped_by_kind: trace_by_kind,
        digest: metrics_digest(&rig.os),
        ..StandbyCampaignResult::default()
    }
}

/// Runs the standby campaign: boots the char-device machine with warm
/// spares on or off, streams the checkpointed print job and audio stream
/// through the drivers, and injects deterministic defects — wedge loops
/// (heartbeat class) alternating with checksum garbles (complaint class)
/// — into the printer and audio drivers in turn. Each fault waits for
/// the recovery counter to move before the next, so the repair-phase
/// histograms compare promotion against cold restart+replay on the same
/// defect schedule. Hands back the booted [`Os`] for inspection.
pub fn run_standby_campaign(cfg: &StandbyCampaignConfig) -> (StandbyCampaignResult, Os) {
    let mut rig = standby_rig(cfg);
    let mut class_faults = [0u64; 2];
    let mut class_recovered = [0u64; 2];
    let mut class_unrecovered = [0u64; 2];

    for i in 0..cfg.faults {
        let class = (i % 2) as usize;
        let target = if class == 0 {
            names::CHR_PRINTER
        } else {
            names::CHR_AUDIO
        };
        if rig.done(class) {
            // Safety valve: the stream is sized to outlast the schedule,
            // but a wedged driver with no traffic cannot trip the
            // complaint sentinels, so never inject into a dead class.
            continue;
        }
        // Wait until the (possibly just-recovered) driver is actually
        // serving again: the class odometer must move.
        let p0 = rig.progress(class);
        let mut guard = 0;
        while rig.progress(class) == p0 && !rig.done(class) && guard < 1200 {
            rig.os.run_for(SimDuration::from_millis(10));
            guard += 1;
        }
        if rig.done(class) {
            continue;
        }
        // Deterministic defect: wedge -> heartbeat miss, garble ->
        // complaint quorum. Both end in RS replacing the incarnation.
        let wedge = (i / 2) % 2 == 0;
        let injected = if wedge {
            rig.os.wedge_driver_in_loop(target)
        } else {
            rig.os.garble_driver_checksum(target)
        };
        if !injected {
            rig.os.run_for(SimDuration::from_millis(100));
            continue;
        }
        class_faults[class] += 1;
        let rec_before = rig.os.metrics().counter("rs.recoveries");
        let mut guard = 0;
        let mut recovered = false;
        while guard < 2000 {
            rig.os.run_for(SimDuration::from_millis(10));
            guard += 1;
            if rig.os.metrics().counter("rs.recoveries") > rec_before {
                recovered = true;
                break;
            }
        }
        if recovered {
            class_recovered[class] += 1;
        } else {
            class_unrecovered[class] += 1;
        }
        rig.os.run_for(cfg.fault_interval);
    }

    // Drain: the streams are sized to outlast the schedule, so let both
    // run to completion and the devices catch up (the DAC still has
    // queued blocks, the printer FIFO is draining). The guard is sized
    // for the leftover stream, not wall-clock comfort — the sim is fast.
    let expected_printed = rig.job_len;
    let expected_samples = rig.blocks_total * rig.block_bytes as u64;
    let mut guard: u64 = 0;
    let guard_max = (cfg.faults + 4) * 8 * 20 * 2; // 2x budget, 50 ms steps
    loop {
        let done = rig.lpd.borrow().done && rig.mp3.borrow().done;
        let played = rig
            .os
            .device_mut::<AudioDac>(hwmap::AUDIO)
            .map_or(0, |d| d.samples_played());
        let printed = rig
            .os
            .device_mut::<Printer>(hwmap::PRINTER)
            .map_or(0, |p| p.printed().len() as u64);
        if (done && played >= expected_samples && printed >= expected_printed) || guard >= guard_max
        {
            break;
        }
        rig.os.run_for(SimDuration::from_millis(50));
        guard += 1;
    }

    let mut result = standby_fossilize(&mut rig, cfg);
    result.faults = class_faults.iter().sum();
    for (i, c) in result.classes.iter_mut().enumerate() {
        c.faults = class_faults[i];
        c.recovered = class_recovered[i];
        c.unrecovered = class_unrecovered[i];
    }
    result.expected_printed = expected_printed;
    result.expected_samples = expected_samples;
    let job = ckpt_print_job(cfg.seed, rig.job_len as usize);
    if let Some(printer) = rig.os.device_mut::<Printer>(hwmap::PRINTER) {
        result.printed_bytes = printer.printed().len() as u64;
        result.printer_byte_exact = printer.printed() == &job[..];
    }
    if let Some(dac) = rig.os.device_mut::<AudioDac>(hwmap::AUDIO) {
        result.samples_played = dac.samples_played();
        result.audio_dup_bytes = result.samples_played.saturating_sub(expected_samples);
    }
    {
        let lpd = rig.lpd.borrow();
        let mp3 = rig.mp3.borrow();
        result.app_visible_errors = lpd.app_errors + mp3.app_errors;
        result.replays = lpd.replays + mp3.replays;
        result.workloads_done = lpd.done && mp3.done;
    }
    (result, rig.os)
}

/// Runs the no-fault control arm: hot standby armed, the same workloads,
/// zero injections, fixed virtual duration. Every promotion, recovery or
/// accepted complaint it reports is a false failover.
pub fn run_standby_control(cfg: &StandbyCampaignConfig, run_for: SimDuration) -> StandbyControl {
    let mut rig = standby_rig(cfg);
    rig.os.run_for(run_for);
    let result = standby_fossilize(&mut rig, cfg);
    let printed_acked = rig.progress(0);
    let audio_acked = rig.progress(1);
    StandbyControl {
        promotions: result.promotions,
        recoveries: result.recoveries,
        complaints_accepted: rig.os.metrics().counter("rs.complaints.accepted"),
        spares_started: result.spares_started,
        tail_polls: result.tail_polls,
        printed_acked,
        audio_acked,
        digest: result.digest,
    }
}
