//! Device-model integration tests: each device is driven through the real
//! kernel (privileges, IOMMU, IRQ routing) by a minimal scripted process.

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_hw::bus::{Bus, WireConfig};
use phoenix_hw::chardev::{audio_regs, printer_regs, scsi_cmd, scsi_regs, scsi_status};
use phoenix_hw::disk::{self, cmd as dcmd, disk_isr, regs as dregs, synth_sector, SECTOR};
use phoenix_hw::dp8390::{self, Dp8390, Dp8390Config};
use phoenix_hw::rtl8139::{self, Rtl8139, Rtl8139Config};
use phoenix_hw::{AudioDac, DiskDevice, Printer, ScsiCdBurner};
use phoenix_kernel::privileges::Privileges;
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::{Ctx, System, SystemConfig};
use phoenix_kernel::types::DeviceId;
use phoenix_simcore::time::SimDuration;

type Hook = Box<dyn FnMut(&mut Ctx<'_>, &ProcEvent)>;

struct Driver {
    hook: Hook,
}

impl Process for Driver {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        (self.hook)(ctx, &event);
    }
}

fn boot_driver(sys: &mut System, dev: DeviceId, irq: u8, hook: Hook) {
    sys.spawn_boot(
        "drv",
        Privileges::driver(dev, irq),
        Box::new(Driver { hook }),
    );
}

const DEV: DeviceId = DeviceId(1);
const IRQ: u8 = 5;

#[test]
fn sata_read_roundtrip_via_dma_and_irq() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(DiskDevice::sata(1024, 7)));
    let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                ctx.irq_enable(IRQ).unwrap();
                // Map 8 KB of our memory as the DMA window at device
                // address 0x1000 and read 4 sectors at LBA 10.
                ctx.iommu_map(DEV, 0x1000, 0, 8192).unwrap();
                ctx.devio_write(DEV, dregs::LBA, 10).unwrap();
                ctx.devio_write(DEV, dregs::COUNT, 4).unwrap();
                ctx.devio_write(DEV, dregs::DMA_ADDR, 0x1000).unwrap();
                ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
                assert_eq!(
                    ctx.devio_read(DEV, dregs::STATUS).unwrap() & disk::status::BUSY,
                    disk::status::BUSY
                );
            }
            ProcEvent::Irq { .. } => {
                let isr = ctx.devio_read(DEV, dregs::ISR).unwrap();
                assert_eq!(isr & disk_isr::DONE, disk_isr::DONE);
                ctx.devio_write(DEV, dregs::ISR, isr).unwrap();
                *got2.borrow_mut() = ctx.mem_read(0, 4 * SECTOR).unwrap();
            }
            _ => {}
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    let data = got.borrow();
    assert_eq!(data.len(), 4 * SECTOR);
    for i in 0..4u64 {
        assert_eq!(
            &data[i as usize * SECTOR..(i as usize + 1) * SECTOR],
            synth_sector(7, 10 + i).as_slice(),
            "sector {i} content"
        );
    }
    // Timing: 150us overhead + 2048B @ 33MB/s ≈ 212us, plus small latencies.
    assert!(sys.now().as_micros() > 150 && sys.now().as_micros() < 1000);
}

#[test]
fn sata_write_then_read_back() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(DiskDevice::sata(64, 1)));
    let phase = Rc::new(RefCell::new(0));
    let ph = phase.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                ctx.irq_enable(IRQ).unwrap();
                ctx.iommu_map(DEV, 0, 0, 4096).unwrap();
                ctx.mem_write(0, &vec![0x5A; SECTOR]).unwrap();
                ctx.devio_write(DEV, dregs::LBA, 3).unwrap();
                ctx.devio_write(DEV, dregs::COUNT, 1).unwrap();
                ctx.devio_write(DEV, dregs::DMA_ADDR, 0).unwrap();
                ctx.devio_write(DEV, dregs::CMD, dcmd::WRITE).unwrap();
            }
            ProcEvent::Irq { .. } => {
                let isr = ctx.devio_read(DEV, dregs::ISR).unwrap();
                ctx.devio_write(DEV, dregs::ISR, isr).unwrap();
                let mut p = ph.borrow_mut();
                if *p == 0 {
                    *p = 1;
                    // Clear our buffer, then read the sector back.
                    ctx.mem_write(0, &vec![0u8; SECTOR]).unwrap();
                    ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
                } else {
                    let data = ctx.mem_read(0, SECTOR).unwrap();
                    assert!(data.iter().all(|&b| b == 0x5A));
                    *p = 2;
                }
            }
            _ => {}
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    assert_eq!(*phase.borrow(), 2);
}

#[test]
fn sata_bad_lba_fails_and_dma_fault_detected() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(DiskDevice::sata(16, 1)));
    let fails: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let f2 = fails.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                ctx.irq_enable(IRQ).unwrap();
                // No IOMMU window mapped: the DMA will fault.
                ctx.devio_write(DEV, dregs::LBA, 0).unwrap();
                ctx.devio_write(DEV, dregs::COUNT, 1).unwrap();
                ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
            }
            ProcEvent::Irq { .. } => {
                let isr = ctx.devio_read(DEV, dregs::ISR).unwrap();
                ctx.devio_write(DEV, dregs::ISR, isr).unwrap();
                if isr & disk_isr::FAIL != 0 {
                    let mut f = f2.borrow_mut();
                    *f += 1;
                    if *f == 1 {
                        // Now try an out-of-range LBA (fails immediately).
                        ctx.devio_write(DEV, dregs::LBA, 99).unwrap();
                        ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
                    }
                }
            }
            _ => {}
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    assert_eq!(*fails.borrow(), 2);
}

#[test]
fn floppy_requires_motor() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(DiskDevice::floppy(3)));
    let outcome: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let oc = outcome.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                ctx.irq_enable(IRQ).unwrap();
                ctx.iommu_map(DEV, 0, 0, 4096).unwrap();
                ctx.devio_write(DEV, dregs::LBA, 0).unwrap();
                ctx.devio_write(DEV, dregs::COUNT, 1).unwrap();
                // Motor off: must fail.
                ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
            }
            ProcEvent::Irq { .. } => {
                let isr = ctx.devio_read(DEV, dregs::ISR).unwrap();
                ctx.devio_write(DEV, dregs::ISR, isr).unwrap();
                oc.borrow_mut().push(isr);
                if isr & disk_isr::FAIL != 0 {
                    ctx.devio_write(DEV, dregs::MOTOR, 1).unwrap();
                    ctx.devio_write(DEV, dregs::CMD, dcmd::READ).unwrap();
                }
            }
            _ => {}
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    let oc = outcome.borrow();
    assert_eq!(oc.len(), 2);
    assert_eq!(oc[0], disk_isr::FAIL);
    assert_eq!(oc[1], disk_isr::DONE);
}

#[test]
fn rtl8139_tx_rx_through_wire() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Rtl8139::new(Rtl8139Config::default())));
    // Echo peer bounces frames back with a marker byte appended.
    struct Echo;
    impl phoenix_hw::RemotePeer for Echo {
        fn frame_from_host(&mut self, ctx: &mut phoenix_hw::PeerCtx<'_, '_>, frame: &[u8]) {
            let mut f = frame.to_vec();
            f.push(0xEE);
            ctx.send_to_host(f);
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Echo));
    let received: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let rx = received.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| match ev {
            ProcEvent::Start => {
                ctx.irq_enable(IRQ).unwrap();
                // Reset, map the rx ring at device address 0, offset 0.
                ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RST)
                    .unwrap();
                ctx.iommu_map(DEV, 0, 0, rtl8139::RX_RING_LEN + 4096)
                    .unwrap();
                ctx.devio_write(DEV, rtl8139::regs::RBSTART, 0).unwrap();
                ctx.devio_write(DEV, rtl8139::regs::RCR, rtl8139::rcr::AAP)
                    .unwrap();
                ctx.devio_write(DEV, rtl8139::regs::IMR, 0xFFFF).unwrap();
                ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RE | rtl8139::cr::TE)
                    .unwrap();
                // Stage a frame just past the ring and transmit it.
                ctx.mem_write(rtl8139::RX_RING_LEN, b"ping").unwrap();
                ctx.devio_write(DEV, rtl8139::regs::TSAD0, rtl8139::RX_RING_LEN as u32)
                    .unwrap();
                ctx.devio_write(DEV, rtl8139::regs::TSD0, 4).unwrap();
            }
            ProcEvent::Irq { .. } => {
                let isr = ctx.devio_read(DEV, rtl8139::regs::ISR).unwrap();
                ctx.devio_write(DEV, rtl8139::regs::ISR, isr).unwrap();
                if isr & rtl8139::isr::ROK != 0 {
                    // Parse the ring: status(2) len(2) payload.
                    let hdr = ctx.mem_read(0, 4).unwrap();
                    let len = u16::from_le_bytes([hdr[2], hdr[3]]) as usize;
                    *rx.borrow_mut() = ctx.mem_read(4, len).unwrap();
                }
            }
            _ => {}
        }),
    );
    sys.run_until_idle(&mut bus, 200);
    assert_eq!(received.borrow().as_slice(), b"ping\xEE");
    let nic: &mut Rtl8139 = bus.device_mut(DEV).unwrap();
    assert_eq!(nic.tx_ok(), 1);
    assert_eq!(nic.rx_ok(), 1);
}

#[test]
fn rtl8139_drops_frames_while_unconfigured_and_wedge_blocks_reset() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Rtl8139::new(Rtl8139Config::default())));
    struct Quiet;
    impl phoenix_hw::RemotePeer for Quiet {
        fn frame_from_host(&mut self, _: &mut phoenix_hw::PeerCtx<'_, '_>, _: &[u8]) {}
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    bus.attach_peer(DEV, WireConfig::default(), Box::new(Quiet));
    // Inject a frame from the wire before any driver configured the card.
    sys.schedule_external(
        SimDuration::from_micros(10),
        (u64::from(DEV.0) << 16) | 3,
        b"lost".to_vec(),
    );
    sys.run_until_idle(&mut bus, 10);
    {
        let nic: &mut Rtl8139 = bus.device_mut(DEV).unwrap();
        assert_eq!(nic.rx_dropped(), 1);
        assert_eq!(nic.rx_ok(), 0);
        // Wedge the card: software reset must no longer work.
        nic.force_wedge();
    }
    let reset_ok: Rc<RefCell<Option<bool>>> = Rc::new(RefCell::new(None));
    let ro = reset_ok.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                ctx.devio_write(DEV, rtl8139::regs::CR, rtl8139::cr::RST)
                    .unwrap();
                let cr = ctx.devio_read(DEV, rtl8139::regs::CR).unwrap();
                *ro.borrow_mut() = Some(cr & rtl8139::cr::RST == 0);
            }
        }),
    );
    sys.run_until_idle(&mut bus, 10);
    assert_eq!(
        *reset_ok.borrow(),
        Some(false),
        "wedged card stays in reset"
    );
    // The BIOS-level hard reset clears the wedge.
    bus.hard_reset(DEV);
    let nic: &mut Rtl8139 = bus.device_mut(DEV).unwrap();
    assert!(!nic.is_wedged());
}

#[test]
fn dp8390_remote_dma_and_tx() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Dp8390::new(Dp8390Config::default())));
    struct Capture {
        frames: Vec<Vec<u8>>,
    }
    impl phoenix_hw::RemotePeer for Capture {
        fn frame_from_host(&mut self, _: &mut phoenix_hw::PeerCtx<'_, '_>, frame: &[u8]) {
            self.frames.push(frame.to_vec());
        }
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    bus.attach_peer(
        DEV,
        WireConfig::default(),
        Box::new(Capture { frames: Vec::new() }),
    );
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                use dp8390::{cr, regs};
                ctx.devio_write(DEV, regs::CR, cr::RST).unwrap();
                // Configure ring pages 16..64, tx page 0, start the NIC.
                ctx.devio_write(DEV, regs::PSTART, 16).unwrap();
                ctx.devio_write(DEV, regs::PSTOP, 64).unwrap();
                ctx.devio_write(DEV, regs::BNRY, 16).unwrap();
                ctx.devio_write(DEV, regs::CURR, 16).unwrap();
                ctx.devio_write(DEV, regs::TPSR, 0).unwrap();
                ctx.devio_write(DEV, regs::IMR, 0xFF).unwrap();
                ctx.devio_write(DEV, regs::CR, cr::STA).unwrap();
                // Remote-DMA the frame into card memory at page 0.
                ctx.devio_write(DEV, regs::RSAR0, 0).unwrap();
                ctx.devio_write(DEV, regs::RSAR1, 0).unwrap();
                ctx.devio_write(DEV, regs::RBCR0, 5).unwrap();
                ctx.devio_write(DEV, regs::RBCR1, 0).unwrap();
                ctx.devio_write(DEV, regs::CR, cr::STA | cr::RD_WRITE)
                    .unwrap();
                ctx.devio_write_block(DEV, regs::DATA, b"hello").unwrap();
                // Transmit 5 bytes from page 0.
                ctx.devio_write(DEV, regs::TBCR0, 5).unwrap();
                ctx.devio_write(DEV, regs::TBCR1, 0).unwrap();
                ctx.devio_write(DEV, regs::CR, cr::STA | cr::TXP).unwrap();
            }
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    let peer: &mut Capture = bus.peer_mut(DEV).unwrap();
    assert_eq!(peer.frames, vec![b"hello".to_vec()]);
    let nic: &mut Dp8390 = bus.device_mut(DEV).unwrap();
    assert_eq!(nic.tx_ok(), 1);
}

#[test]
fn printer_prints_fifo_contents_in_order() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(Printer::new(2048)));
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                ctx.irq_enable(IRQ).unwrap();
                ctx.devio_write_block(DEV, printer_regs::DATA, b"page one\n")
                    .unwrap();
            }
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    let p: &mut Printer = bus.device_mut(DEV).unwrap();
    assert_eq!(p.printed(), b"page one\n");
    // 9 bytes at 2048 B/s ≈ 4.4ms.
    assert!(sys.now().as_micros() >= 4000);
}

#[test]
fn audio_underrun_recorded_when_starved() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(DEV, IRQ, Box::new(AudioDac::new(176_400)));
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                ctx.irq_enable(IRQ).unwrap();
                ctx.iommu_map(DEV, 0, 0, 8192).unwrap();
                ctx.mem_write(0, &vec![1u8; 4096]).unwrap();
                ctx.devio_write(DEV, audio_regs::BUF_ADDR, 0).unwrap();
                ctx.devio_write(DEV, audio_regs::BUF_LEN, 4096).unwrap();
                ctx.devio_write(DEV, audio_regs::CTRL, 1).unwrap();
                ctx.devio_write(DEV, audio_regs::START, 1).unwrap();
                // Only one block queued; after it plays the DAC starves.
            }
        }),
    );
    sys.run_until_idle(&mut bus, 100);
    let dac: &mut AudioDac = bus.device_mut(DEV).unwrap();
    assert_eq!(dac.samples_played(), 4096);
    assert_eq!(dac.underruns(), 1, "starvation after the only block");
}

#[test]
fn cd_burn_completes_with_steady_feed_and_ruins_on_gap() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(
        DEV,
        IRQ,
        Box::new(ScsiCdBurner::new(SimDuration::from_millis(100), 1_000_000)),
    );
    let chunk_count = 4u32;
    let sent = Rc::new(RefCell::new(0u32));
    let s2 = sent.clone();
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            let send_chunk = |ctx: &mut Ctx<'_>, seq: u32| {
                ctx.devio_write(DEV, scsi_regs::CHUNK_SEQ, seq).unwrap();
                ctx.devio_write(DEV, scsi_regs::DMA_ADDR, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::CHUNK_LEN, 512).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK)
                    .unwrap();
            };
            match ev {
                ProcEvent::Start => {
                    ctx.irq_enable(IRQ).unwrap();
                    ctx.iommu_map(DEV, 0, 0, 4096).unwrap();
                    ctx.mem_write(0, &vec![0xCD; 512]).unwrap();
                    ctx.devio_write(DEV, scsi_regs::TOTAL_CHUNKS, chunk_count)
                        .unwrap();
                    ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::START_BURN)
                        .unwrap();
                    send_chunk(ctx, 0);
                    *s2.borrow_mut() = 1;
                }
                ProcEvent::Irq { .. } => {
                    let mut s = s2.borrow_mut();
                    if *s < chunk_count {
                        send_chunk(ctx, *s);
                        *s += 1;
                    } else if *s == chunk_count {
                        ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::FINALIZE)
                            .unwrap();
                        *s += 1;
                    }
                }
                _ => {}
            }
        }),
    );
    sys.run_until_idle(&mut bus, 200);
    {
        let cd: &mut ScsiCdBurner = bus.device_mut(DEV).unwrap();
        assert_eq!(cd.discs_completed(), 1);
        assert_eq!(cd.discs_ruined(), 0);
        assert_eq!(cd.burned().len(), 4 * 512);
    }

    // Second burn: start it, feed one chunk, then go silent — the deadline
    // passes and the disc is ruined (the driver "crashed").
    let mut sys2 = System::new(SystemConfig::default());
    let mut bus2 = Bus::new();
    bus2.add_device(
        DEV,
        IRQ,
        Box::new(ScsiCdBurner::new(SimDuration::from_millis(100), 1_000_000)),
    );
    boot_driver(
        &mut sys2,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                ctx.iommu_map(DEV, 0, 0, 4096).unwrap();
                ctx.devio_write(DEV, scsi_regs::TOTAL_CHUNKS, 8).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::START_BURN)
                    .unwrap();
                ctx.devio_write(DEV, scsi_regs::CHUNK_SEQ, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::DMA_ADDR, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::CHUNK_LEN, 512).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK)
                    .unwrap();
                // ... and then silence.
            }
        }),
    );
    sys2.run_until_idle(&mut bus2, 200);
    let cd: &mut ScsiCdBurner = bus2.device_mut(DEV).unwrap();
    assert_eq!(cd.discs_ruined(), 1);
    assert_eq!(cd.discs_completed(), 0, "status: {}", cd.discs_completed());
}

#[test]
fn scsi_out_of_order_chunk_ruins_disc() {
    let mut sys = System::new(SystemConfig::default());
    let mut bus = Bus::new();
    bus.add_device(
        DEV,
        IRQ,
        Box::new(ScsiCdBurner::new(SimDuration::from_secs(10), 1_000_000)),
    );
    boot_driver(
        &mut sys,
        DEV,
        IRQ,
        Box::new(move |ctx, ev| {
            if matches!(ev, ProcEvent::Start) {
                ctx.iommu_map(DEV, 0, 0, 4096).unwrap();
                ctx.devio_write(DEV, scsi_regs::TOTAL_CHUNKS, 4).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::START_BURN)
                    .unwrap();
                // A restarted driver that lost track restarts at chunk 0...
                // after chunk 0 was already burned once: burn 0, then 0 again.
                ctx.devio_write(DEV, scsi_regs::CHUNK_SEQ, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::DMA_ADDR, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::CHUNK_LEN, 16).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK)
                    .unwrap();
                ctx.devio_write(DEV, scsi_regs::CHUNK_SEQ, 0).unwrap();
                ctx.devio_write(DEV, scsi_regs::CMD, scsi_cmd::WRITE_CHUNK)
                    .unwrap();
                assert_eq!(
                    ctx.devio_read(DEV, scsi_regs::STATUS).unwrap(),
                    scsi_status::RUINED
                );
            }
        }),
    );
    sys.run_until_idle(&mut bus, 50);
    let cd: &mut ScsiCdBurner = bus.device_mut(DEV).unwrap();
    assert_eq!(cd.discs_ruined(), 1);
}
