//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use phoenix_fault::isa::{decode, encode, Instr};
use phoenix_fault::mutate::{apply_fault, ALL_FAULT_TYPES};
use phoenix_fault::vm::Vm;
use phoenix_hw::disk::{DiskModel, SECTOR};
use phoenix_servers::fsfmt::{Extent, Inode, Superblock};
use phoenix_servers::netproto::{stream_chunk, Segment};
use phoenix_servers::policy::{PolicyInput, PolicyScript};
use phoenix_simcore::digest::{Md5, Sha1};
use phoenix_simcore::event::EventQueue;
use phoenix_simcore::rng::SimRng;
use phoenix_simcore::time::SimTime;

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = 0u8..8;
    let imm = any::<u16>();
    prop_oneof![
        Just(Instr::Nop),
        (r.clone(), imm).prop_map(|(d, i)| Instr::MovImm(d, i)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Mov(d, s)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Add(d, s)),
        (r.clone(), imm).prop_map(|(d, i)| Instr::AddImm(d, i)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Sub(d, s)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Mul(d, s)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Div(d, s)),
        (r.clone(), r.clone()).prop_map(|(d, s)| Instr::Xor(d, s)),
        (r.clone(), imm).prop_map(|(d, i)| Instr::Shl(d, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::Load(d, s, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::Store(d, s, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::LoadB(d, s, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::StoreB(d, s, i)),
        imm.prop_map(Instr::Jmp),
        (r.clone(), imm).prop_map(|(s, i)| Instr::Jz(s, i)),
        (r.clone(), imm).prop_map(|(s, i)| Instr::Jnz(s, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::Jlt(d, s, i)),
        (r.clone(), r.clone(), imm).prop_map(|(d, s, i)| Instr::Jge(d, s, i)),
        r.prop_map(Instr::Assert),
        Just(Instr::Halt),
    ]
}

proptest! {
    /// Every valid instruction round-trips through its binary encoding.
    #[test]
    fn isa_encode_decode_roundtrip(i in arb_instr()) {
        prop_assert_eq!(decode(encode(i)), i);
    }

    /// Decoding is total: any 32-bit word decodes (possibly to Invalid)
    /// and re-encoding an Invalid preserves the word.
    #[test]
    fn isa_decode_total(w in any::<u32>()) {
        let d = decode(w);
        if let Instr::Invalid(x) = d {
            prop_assert_eq!(x, w);
            prop_assert_eq!(encode(d), w);
        }
    }

    /// The VM never panics and always terminates within the step budget,
    /// whatever garbage it executes — the foundation of the fault
    /// injection methodology (a mutated driver can crash *as a process*,
    /// never crash the analysis).
    #[test]
    fn vm_is_total_on_arbitrary_code(
        code in proptest::collection::vec(any::<u32>(), 1..64),
        regs in proptest::collection::vec(any::<u32>(), 8),
        gas in 1u64..20_000,
    ) {
        let mut vm = Vm::new(256);
        vm.regs.copy_from_slice(&regs);
        let _ = vm.run(&code, gas);
    }

    /// Every mutation operator changes at most one instruction word and
    /// never changes the program length.
    #[test]
    fn mutations_touch_exactly_one_word(
        code in proptest::collection::vec(any::<u32>(), 1..128),
        seed in any::<u64>(),
        which in 0usize..7,
    ) {
        let mut rng = SimRng::new(seed);
        let mut mutated = code.clone();
        let m = apply_fault(&mut mutated, ALL_FAULT_TYPES[which], &mut rng);
        prop_assert_eq!(mutated.len(), code.len());
        let diffs = mutated.iter().zip(&code).filter(|(a, b)| a != b).count();
        match m {
            Some(rec) => {
                prop_assert!(diffs <= 1);
                prop_assert_eq!(mutated[rec.index], rec.after);
            }
            None => prop_assert_eq!(diffs, 0),
        }
    }

    /// Streaming digests equal one-shot digests for any chunking.
    #[test]
    fn digests_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let mut md5 = Md5::new();
        let mut sha = Sha1::new();
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c as usize % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            md5.update(&data[prev..c]);
            sha.update(&data[prev..c]);
            prev = c;
        }
        md5.update(&data[prev..]);
        sha.update(&data[prev..]);
        prop_assert_eq!(md5.finish(), Md5::digest(&data));
        prop_assert_eq!(sha.finish(), Sha1::digest(&data));
    }

    /// The event queue delivers in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Disk overlay semantics: what you write is what you read; what you
    /// never wrote is the deterministic base pattern.
    #[test]
    fn disk_model_read_your_writes(
        writes in proptest::collection::vec((0u64..64, any::<u8>()), 0..32),
        probe in 0u64..64,
        seed in any::<u64>(),
    ) {
        let mut disk = DiskModel::new(64, seed);
        let mut expected = std::collections::HashMap::new();
        for (lba, fill) in &writes {
            let sector = vec![*fill; SECTOR];
            prop_assert!(disk.write(*lba, &sector));
            expected.insert(*lba, sector);
        }
        let got = disk.read(probe).unwrap();
        match expected.get(&probe) {
            Some(sector) => prop_assert_eq!(&got, sector),
            None => prop_assert_eq!(got, phoenix_hw::disk::synth_sector(seed, probe)),
        }
    }

    /// Inodes round-trip through the on-disk format.
    #[test]
    fn inode_roundtrip(
        name in "[a-z][a-z0-9_.-]{0,30}",
        size in any::<u64>(),
        extents in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..6),
    ) {
        let ino = Inode {
            name,
            size,
            extents: extents.into_iter().map(|(start, sectors)| Extent { start, sectors }).collect(),
        };
        prop_assert_eq!(Inode::decode(&ino.encode()), Some(ino));
    }

    /// Superblocks round-trip.
    #[test]
    fn superblock_roundtrip(count in any::<u32>(), lba in any::<u64>(), sectors in any::<u32>()) {
        let sb = Superblock { inode_count: count, inode_table_lba: lba, inode_table_sectors: sectors };
        prop_assert_eq!(Superblock::decode(&sb.encode()), Some(sb));
    }

    /// Transport segments round-trip, and decode rejects any truncation.
    #[test]
    fn segment_roundtrip_and_truncation(
        flags in any::<u8>(),
        conn in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1460),
        cut in 1usize..14,
    ) {
        let s = Segment { flags, conn, seq, ack, payload };
        let wire = s.encode();
        prop_assert_eq!(Segment::decode(&wire), Some(s));
        prop_assert_eq!(Segment::decode(&wire[..wire.len() - cut.min(wire.len())]), None);
    }

    /// Download content is a pure function of (seed, offset): any split
    /// reassembles identically.
    #[test]
    fn stream_chunk_split_invariant(
        seed in any::<u64>(),
        offset in 0u64..10_000,
        len in 1usize..512,
        split in any::<u16>(),
    ) {
        let whole = stream_chunk(seed, offset, len);
        let split = usize::from(split) % (len + 1);
        let mut parts = stream_chunk(seed, offset, split);
        parts.extend(stream_chunk(seed, offset + split as u64, len - split));
        prop_assert_eq!(parts, whole);
    }

    /// The policy parser never panics on arbitrary input.
    #[test]
    fn policy_parser_total(src in "\\PC{0,200}") {
        let _ = PolicyScript::parse(&src);
    }

    /// A well-formed conditional policy always terminates and produces a
    /// decision whose backoff grows monotonically with the failure count.
    #[test]
    fn policy_backoff_monotone(reps in proptest::collection::vec(1u32..40, 2..10)) {
        let p = PolicyScript::generic();
        let mut sorted = reps.clone();
        sorted.sort_unstable();
        let mut last = None;
        for rep in sorted {
            let d = p.run(&PolicyInput {
                component: "x".into(),
                reason: phoenix_servers::policy::reason::EXIT,
                repetition: rep,
                params: vec![],
            });
            prop_assert!(d.restart);
            if let Some(prev) = last {
                prop_assert!(d.delay >= prev);
            }
            last = Some(d.delay);
        }
    }
}
