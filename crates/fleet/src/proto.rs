//! Fleet gossip protocol: the message kinds and frame shapes spoken
//! between per-node fleet agents on the watchdog ring, plus the wire
//! encoding of a peer-held node snapshot.
//!
//! The kinds live in their own proto module (scanned by the
//! `phoenix-analyze` conformance pass alongside the driver, server and
//! checkpoint protocols) because the fleet backbone is a protocol
//! surface like any other: every kind an agent can emit must have a
//! dispatch arm somewhere, or it is a message dropped on the floor.

use phoenix_servers::netproto::crc16;

/// Inter-node fleet backbone kinds (0x0F00 range). All fire-and-forget:
/// the backbone rides an unreliable datagram wire and tolerates loss by
/// periodic re-send, never by blocking — a wedged peer must not be able
/// to wedge its watchdog.
pub mod gossip {
    /// Agent -> ring neighbors: liveness beat carrying the sender's
    /// whole gossip vector (freshest known stat per fleet node).
    /// proto: oneway
    pub const HEARTBEAT: u32 = 0x0F00;
    /// Agent -> all peers: typed accusation that `subject` (at
    /// `subject_gen`) is failing, with the evidence kind attached.
    /// proto: oneway
    pub const COMPLAIN: u32 = 0x0F01;
    /// Arbiter -> all peers: quorum reached, `subject` is convicted and
    /// will be reincarnated at `subject_gen + 1`.
    /// proto: oneway
    pub const CONVICT: u32 = 0x0F02;
    /// Accused -> all peers: liveness rebuttal (I am reachable / my RS
    /// beacon still advances) that clears ghost complaints.
    /// proto: oneway
    pub const ALIVE: u32 = 0x0F03;
}

/// One node's freshest known state, as carried in heartbeat gossip
/// vectors. Comparisons are monotone: a stat only supersedes a view
/// when its generation or sequence is strictly newer, so stale gossip
/// echoing around the ring can never roll a view backward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeStat {
    /// Which node this stat describes.
    pub node: u8,
    /// That node's boot generation.
    pub gen: u32,
    /// Its heartbeat sequence (advances every beat while alive).
    pub hb_seq: u64,
    /// Its local RS liveness beacon (the `rs.beacon` counter, advanced
    /// by every RS audit sweep — a dead or wedged RS stops it).
    pub beacon: u64,
    /// Whether its RS endpoint was up when the stat was sampled.
    pub rs_up: bool,
}

/// One fleet backbone frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// [`gossip`] kind.
    pub kind: u32,
    /// Sending node.
    pub from: u8,
    /// Sender's boot generation.
    pub gen: u32,
    /// Subject node of a complaint / conviction / rebuttal.
    pub subject: u8,
    /// Subject generation the accusation targets (ghost rejection: a
    /// complaint about a generation older than the reborn one is about
    /// a corpse and must not convict the successor).
    pub subject_gen: u32,
    /// Evidence kind ([`phoenix_servers::proto::evidence`]) for
    /// complaints and convictions.
    pub evidence: u32,
    /// Gossip vector (heartbeats) or the sender's own stat (rebuttals).
    pub view: Vec<NodeStat>,
}

impl Frame {
    /// A heartbeat carrying the sender's gossip vector.
    pub fn heartbeat(from: u8, gen: u32, view: Vec<NodeStat>) -> Frame {
        Frame {
            kind: gossip::HEARTBEAT,
            from,
            gen,
            subject: from,
            subject_gen: gen,
            evidence: 0,
            view,
        }
    }

    /// A typed complaint against `subject`.
    pub fn complain(from: u8, gen: u32, subject: u8, subject_gen: u32, evidence: u32) -> Frame {
        Frame {
            kind: gossip::COMPLAIN,
            from,
            gen,
            subject,
            subject_gen,
            evidence,
            view: Vec::new(),
        }
    }

    /// A conviction verdict from the arbiter.
    pub fn convict(from: u8, gen: u32, subject: u8, subject_gen: u32, evidence: u32) -> Frame {
        Frame {
            kind: gossip::CONVICT,
            from,
            gen,
            subject,
            subject_gen,
            evidence,
            view: Vec::new(),
        }
    }

    /// A liveness rebuttal from an accused node, carrying its own stat.
    pub fn alive(from: u8, gen: u32, stat: NodeStat) -> Frame {
        Frame {
            kind: gossip::ALIVE,
            from,
            gen,
            subject: from,
            subject_gen: gen,
            evidence: 0,
            view: vec![stat],
        }
    }
}

/// A peer-held snapshot of one node's recoverable state: its checkpoint
/// store records and its DS private-state records. Replicated to the
/// node's ring successor over the go-back-N transfer link; adopted into
/// a reborn node during recover-the-recoverer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// The node whose state this is.
    pub node: u8,
    /// Its boot generation at export time.
    pub gen: u32,
    /// Checkpoint-store records: `(owner, key, snapshot wire frame)`.
    pub ckpt: Vec<(String, String, Vec<u8>)>,
    /// DS private records: `(key, owner, value)`.
    pub ds: Vec<(String, String, Vec<u8>)>,
}

const SNAP_MAGIC: &[u8; 4] = b"FSNP";

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = u16::from_le_bytes(buf.get(*at..*at + 2)?.try_into().ok()?) as usize;
    *at += 2;
    let s = std::str::from_utf8(buf.get(*at..*at + len)?)
        .ok()?
        .to_string();
    *at += len;
    Some(s)
}

fn get_bytes(buf: &[u8], at: &mut usize) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes(buf.get(*at..*at + 4)?.try_into().ok()?) as usize;
    *at += 4;
    let b = buf.get(*at..*at + len)?.to_vec();
    *at += len;
    Some(b)
}

impl NodeSnapshot {
    /// Serializes to the transfer wire format (magic + body + CRC-16,
    /// the same checksum family the transport segments use).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SNAP_MAGIC);
        out.push(self.node);
        out.extend_from_slice(&self.gen.to_le_bytes());
        out.extend_from_slice(&(self.ckpt.len() as u32).to_le_bytes());
        for (owner, key, wire) in &self.ckpt {
            put_str(&mut out, owner);
            put_str(&mut out, key);
            put_bytes(&mut out, wire);
        }
        out.extend_from_slice(&(self.ds.len() as u32).to_le_bytes());
        for (key, owner, value) in &self.ds {
            put_str(&mut out, key);
            put_str(&mut out, owner);
            put_bytes(&mut out, value);
        }
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses the transfer wire format; `None` for truncated or
    /// corrupted images (bad magic / CRC) — a damaged snapshot must be
    /// detected, not adopted.
    pub fn decode(buf: &[u8]) -> Option<NodeSnapshot> {
        if buf.len() < SNAP_MAGIC.len() + 2 || &buf[..4] != SNAP_MAGIC {
            return None;
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 2);
        if crc16(body) != u16::from_le_bytes(crc_bytes.try_into().ok()?) {
            return None;
        }
        let mut at = 4;
        let node = *body.get(at)?;
        at += 1;
        let gen = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        let ckpt_count = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        let mut ckpt = Vec::new();
        for _ in 0..ckpt_count {
            let owner = get_str(body, &mut at)?;
            let key = get_str(body, &mut at)?;
            let wire = get_bytes(body, &mut at)?;
            ckpt.push((owner, key, wire));
        }
        let ds_count = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?);
        at += 4;
        let mut ds = Vec::new();
        for _ in 0..ds_count {
            let key = get_str(body, &mut at)?;
            let owner = get_str(body, &mut at)?;
            let value = get_bytes(body, &mut at)?;
            ds.push((key, owner, value));
        }
        if at != body.len() {
            return None;
        }
        Some(NodeSnapshot {
            node,
            gen,
            ckpt,
            ds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips() {
        let snap = NodeSnapshot {
            node: 2,
            gen: 5,
            ckpt: vec![(
                "chr.printer".to_string(),
                "printer".to_string(),
                vec![1, 2, 3],
            )],
            ds: vec![(
                "fleet.identity".to_string(),
                "fleet".to_string(),
                vec![9, 9],
            )],
        };
        let wire = snap.encode();
        assert_eq!(NodeSnapshot::decode(&wire), Some(snap));
    }

    #[test]
    fn corrupt_snapshot_is_rejected() {
        let snap = NodeSnapshot {
            node: 0,
            gen: 1,
            ckpt: vec![],
            ds: vec![("k".to_string(), "o".to_string(), vec![7])],
        };
        let mut wire = snap.encode();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x10;
        assert_eq!(NodeSnapshot::decode(&wire), None);
        assert_eq!(NodeSnapshot::decode(b"FSNPxx"), None);
        assert_eq!(NodeSnapshot::decode(b""), None);
    }
}
