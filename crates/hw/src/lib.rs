//! Emulated hardware for the Phoenix failure-resilient OS.
//!
//! The paper's experiments run against real devices (a RealTek 8139 NIC, a
//! DP8390 NIC inside Bochs, a SATA disk); this crate provides register-level
//! models of those devices plus the character devices of §6.3, all behind a
//! [`bus::Bus`] that implements the kernel's `Platform` trait.
//!
//! * [`bus`] — the device bus, the [`bus::Device`] trait, and the wire +
//!   [`bus::RemotePeer`] plumbing that connects a NIC model to a simulated
//!   far end (the "Internet server" of Fig. 7).
//! * [`rtl8139`] — RealTek 8139 with a DMA rx ring in driver memory.
//! * [`dp8390`] — DP8390/NE2000 with card-local memory and remote DMA.
//! * [`disk`] — SATA disk and floppy with synthetic content and realistic
//!   timing; disk I/O is idempotent, which is what makes transparent block
//!   driver recovery possible (§6.2).
//! * [`chardev`] — printer, audio DAC, and SCSI CD burner, whose streams
//!   cannot be transparently replayed (§6.3).
//!
//! Device models can be *wedged* by buggy driver writes (configurable
//! probability) such that only [`bus::Bus::hard_reset`] — the "low-level
//! BIOS reset" of §7.2 — revives them.

pub mod bus;
pub mod chardev;
pub mod disk;
pub mod dp8390;
pub mod rtl8139;
pub mod uart;

pub use bus::{Bus, DevCtx, Device, PeerCtx, RemotePeer, WireChaos, WireConfig};
pub use chardev::{AudioDac, Printer, ScsiCdBurner};
pub use disk::{DiskDevice, DiskModel, DiskTiming};
pub use dp8390::Dp8390;
pub use rtl8139::Rtl8139;
pub use uart::Uart;
