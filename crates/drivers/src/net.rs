//! Network (Ethernet) drivers: RTL8139 and DP8390.
//!
//! Network drivers are stateless (§6.1): the network server re-sends
//! [`crate::proto::eth::INIT`] after every recovery, which re-enables
//! promiscuous mode and resumes I/O, "closely mimicking the steps that are
//! taken when the driver is first started". Frames lost while the driver
//! was dead are retransmitted end-to-end by the reliable transport.

use phoenix_hw::dp8390;
use phoenix_hw::rtl8139::{cr, isr as nic_isr, rcr, regs, RX_RING_LEN};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{CallId, DeviceId, Endpoint, IrqLine, Message};
use phoenix_simcore::trace::TraceLevel;

use crate::libdriver::{DriverLogic, FaultPort, GuardedRoutine};
use crate::proto::{eth, status};
use crate::routines;

/// Maximum Ethernet frame size accepted by the drivers.
pub const MAX_FRAME: usize = 1518;

/// Driver for the RTL8139: DMA rx ring in driver memory, DMA tx slots.
pub struct Rtl8139Driver {
    dev: DeviceId,
    irq: IrqLine,
    client: Option<Endpoint>,
    capr: usize,
    rx_routine: GuardedRoutine,
    tx_routine: GuardedRoutine,
    fault_port: FaultPort,
}

const TX_STAGE: usize = RX_RING_LEN; // tx staging right after the rx ring
const TX_STAGE_LEN: usize = 2048;

impl Rtl8139Driver {
    /// Creates the driver for device `dev` on IRQ line `irq`.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        Rtl8139Driver {
            dev,
            irq,
            client: None,
            capr: 0,
            rx_routine: GuardedRoutine::new(&routines::with_cold_section(routines::net_rx(), 30)),
            tx_routine: GuardedRoutine::new(&routines::net_tx()),
            fault_port,
        }
    }

    fn ring_read(&mut self, ctx: &mut Ctx<'_>, off: usize, len: usize) -> Vec<u8> {
        // The ring lives in our own memory; reads may wrap.
        let off = off % RX_RING_LEN;
        if off + len <= RX_RING_LEN {
            ctx.mem_read(off, len).expect("ring in own space")
        } else {
            let first = RX_RING_LEN - off;
            let mut v = ctx.mem_read(off, first).expect("ring head");
            v.extend(ctx.mem_read(0, len - first).expect("ring tail"));
            v
        }
    }

    fn drain_ring(&mut self, ctx: &mut Ctx<'_>) {
        // Bound the per-interrupt work: a corrupted read pointer must not
        // turn the drain into an unbounded loop (a real driver processes
        // at most one ring's worth per IRQ).
        for _ in 0..64 {
            let cbr = match ctx.devio_read(self.dev, regs::CBR) {
                Ok(v) => v as usize,
                Err(_) => return,
            };
            if cbr == self.capr {
                return;
            }
            let hdr = self.ring_read(ctx, self.capr, 4);
            let frame_len = usize::from(u16::from_le_bytes([hdr[2], hdr[3]]));
            let frame = self.ring_read(ctx, self.capr + 4, frame_len.min(MAX_FRAME));
            // Validate the header and checksum the payload on the
            // (possibly mutated) receive path.
            let ok = self.rx_routine.run(ctx, 4 + MAX_FRAME + 16, |vm| {
                vm.mem[0..4].copy_from_slice(&hdr);
                vm.mem[4..4 + frame.len()].copy_from_slice(&frame);
                vm.regs[routines::reg::A0 as usize] = frame_len as u32;
                vm.regs[routines::reg::A1 as usize] =
                    frame.len().min(routines::HEADER_SUM_BYTES) as u32;
            });
            if ok.is_none() {
                return; // driver dying
            }
            self.capr = (self.capr + 4 + frame_len) % RX_RING_LEN;
            let _ = ctx.devio_write(self.dev, regs::CAPR, self.capr as u32);
            if let Some(client) = self.client {
                let _ = ctx.send(client, Message::new(eth::RECV).with_data(frame));
            }
        }
    }
}

impl DriverLogic for Rtl8139Driver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.fault_port
            .publish(ctx.self_name(), self.rx_routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.devio_write(self.dev, regs::CR, cr::RST).expect("reset");
        let st = ctx.devio_read(self.dev, regs::CR).expect("read CR");
        if st & cr::RST != 0 {
            // §7.2: the card is confused and cannot be reinitialized by a
            // restarted driver — only a BIOS-level reset can help.
            ctx.panic("rtl8139: card stuck in reset, reinitialization failed");
            return;
        }
        ctx.iommu_map(self.dev, 0, 0, RX_RING_LEN + TX_STAGE_LEN)
            .expect("map rx ring + tx staging");
        ctx.devio_write(self.dev, regs::RBSTART, 0)
            .expect("rbstart");
        ctx.devio_write(self.dev, regs::IMR, 0xFFFF).expect("imr");
        self.capr = 0;
        ctx.trace(TraceLevel::Info, "rtl8139 reset complete".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        match msg.mtype {
            eth::INIT => {
                // (Re)initialization on behalf of the network server:
                // promiscuous mode, rx/tx enabled, I/O resumed (§6.1).
                self.client = Some(msg.source);
                let ok = ctx.devio_write(self.dev, regs::RCR, rcr::AAP).is_ok()
                    && ctx.devio_write(self.dev, regs::CR, cr::RE | cr::TE).is_ok();
                let st = if ok { status::OK } else { status::EIO };
                let _ = ctx.reply(call, Message::new(eth::INIT_REPLY).with_param(0, st));
            }
            eth::WRITE => {
                let frame = &msg.data;
                if frame.is_empty() || frame.len() > MAX_FRAME {
                    let _ = ctx.reply(
                        call,
                        Message::new(eth::WRITE_REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.tx_routine.run(ctx, MAX_FRAME + 16, |vm| {
                    vm.mem[0..frame.len()].copy_from_slice(frame);
                    vm.regs[routines::reg::A0 as usize] = frame.len() as u32;
                    vm.regs[routines::reg::A1 as usize] =
                        frame.len().min(routines::HEADER_SUM_BYTES) as u32;
                });
                if ok.is_none() {
                    return; // dying
                }
                // Stage the frame and launch tx slot 0.
                if ctx.mem_write(TX_STAGE, frame).is_err() {
                    let _ = ctx.reply(
                        call,
                        Message::new(eth::WRITE_REPLY).with_param(0, status::EIO),
                    );
                    return;
                }
                let ok = ctx
                    .devio_write(self.dev, regs::TSAD0, TX_STAGE as u32)
                    .is_ok()
                    && ctx
                        .devio_write(self.dev, regs::TSD0, frame.len() as u32)
                        .is_ok();
                let st = if ok { status::OK } else { status::EIO };
                let _ = ctx.reply(call, Message::new(eth::WRITE_REPLY).with_param(0, st));
            }
            eth::GET_STAT => {
                let _ = ctx.reply(call, Message::new(eth::STAT_REPLY));
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(eth::WRITE_REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        let isr = ctx.devio_read(self.dev, regs::ISR).unwrap_or(0);
        let _ = ctx.devio_write(self.dev, regs::ISR, isr);
        if isr & nic_isr::ROK != 0 {
            self.drain_ring(ctx);
        }
    }
}

/// Driver for the DP8390: card-local packet memory, remote DMA data port,
/// page-based rx ring — a genuinely different code path from the RTL8139.
pub struct Dp8390Driver {
    dev: DeviceId,
    irq: IrqLine,
    client: Option<Endpoint>,
    bnry: u8,
    rx_routine: GuardedRoutine,
    tx_routine: GuardedRoutine,
    fault_port: FaultPort,
}

// Ring layout inside the card's 16 KB: tx pages 0..16, rx ring 16..64.
const TX_PAGE: u8 = 0;
const PSTART: u8 = 16;
const PSTOP: u8 = 64;

impl Dp8390Driver {
    /// Creates the driver for device `dev` on IRQ line `irq`.
    pub fn new(dev: DeviceId, irq: IrqLine, fault_port: FaultPort) -> Self {
        Dp8390Driver {
            dev,
            irq,
            client: None,
            bnry: PSTART,
            rx_routine: GuardedRoutine::new(&routines::with_cold_section(routines::net_rx(), 30)),
            tx_routine: GuardedRoutine::new(&routines::net_tx()),
            fault_port,
        }
    }

    fn remote_read(&mut self, ctx: &mut Ctx<'_>, addr: u16, len: usize) -> Vec<u8> {
        use dp8390::{cr as dcr, regs as dregs};
        let _ = ctx.devio_write(self.dev, dregs::RSAR0, u32::from(addr & 0xFF));
        let _ = ctx.devio_write(self.dev, dregs::RSAR1, u32::from(addr >> 8));
        let _ = ctx.devio_write(self.dev, dregs::RBCR0, (len & 0xFF) as u32);
        let _ = ctx.devio_write(self.dev, dregs::RBCR1, (len >> 8) as u32);
        let _ = ctx.devio_write(self.dev, dregs::CR, dcr::STA | dcr::RD_READ);
        ctx.devio_read_block(self.dev, dregs::DATA, len)
            .unwrap_or_default()
    }

    fn drain_ring(&mut self, ctx: &mut Ctx<'_>) {
        use dp8390::regs as dregs;
        // Bounded per-IRQ work: with a corrupted BNRY (a mutated driver
        // programming garbage into the chip) the ring never converges;
        // a real driver processes at most PSTOP-PSTART pages per IRQ.
        for _ in 0..usize::from(PSTOP - PSTART) {
            let curr = match ctx.devio_read(self.dev, dregs::CURR) {
                Ok(v) => v as u8,
                Err(_) => return,
            };
            if curr == self.bnry {
                return;
            }
            let hdr = self.remote_read(ctx, u16::from(self.bnry) * 256, 4);
            let next_page = hdr[1];
            let total = usize::from(u16::from_le_bytes([hdr[2], hdr[3]]));
            let frame_len = total.saturating_sub(4).min(MAX_FRAME);
            // Payload may wrap at PSTOP; read in up to two pieces.
            let payload_start = u16::from(self.bnry) * 256 + 4;
            let end_of_ring = u16::from(PSTOP) * 256;
            let frame = if payload_start + frame_len as u16 <= end_of_ring {
                self.remote_read(ctx, payload_start, frame_len)
            } else {
                let first = usize::from(end_of_ring - payload_start);
                let mut v = self.remote_read(ctx, payload_start, first);
                v.extend(self.remote_read(ctx, u16::from(PSTART) * 256, frame_len - first));
                v
            };
            let vm = self.rx_routine.run(ctx, 4 + MAX_FRAME + 16, |vm| {
                vm.mem[0..4].copy_from_slice(&hdr);
                vm.mem[4..4 + frame.len()].copy_from_slice(&frame);
                vm.regs[routines::reg::A0 as usize] = frame_len as u32;
                vm.regs[routines::reg::A1 as usize] =
                    frame.len().min(routines::HEADER_SUM_BYTES) as u32;
            });
            let Some(vm) = vm else {
                return; // dying
            };
            // The routine computed the next ring page (A2); program it
            // into BNRY. If a mutation corrupted the computation, this is
            // exactly how a faulty driver confuses the card (§7.2).
            let computed_next = vm.regs[routines::reg::A2 as usize] as u8;
            // For pristine code computed_next == next_page; a mutated
            // routine may diverge, and the bogus value goes to the chip —
            // that divergence IS the modeled driver bug.
            let _ = next_page;
            self.bnry = computed_next;
            let _ = ctx.devio_write(self.dev, dregs::BNRY, u32::from(self.bnry));
            if let Some(client) = self.client {
                let _ = ctx.send(client, Message::new(eth::RECV).with_data(frame));
            }
        }
    }
}

impl DriverLogic for Dp8390Driver {
    fn init(&mut self, ctx: &mut Ctx<'_>) {
        use dp8390::{cr as dcr, regs as dregs};
        self.fault_port
            .publish(ctx.self_name(), self.rx_routine.live());
        ctx.irq_enable(self.irq)
            .expect("driver privilege grants its IRQ");
        ctx.devio_write(self.dev, dregs::CR, dcr::RST)
            .expect("reset");
        let st = ctx.devio_read(self.dev, dregs::CR).expect("read CR");
        if st & dcr::RST != 0 {
            ctx.panic("dp8390: card stuck in reset, reinitialization failed");
            return;
        }
        ctx.devio_write(self.dev, dregs::PSTART, u32::from(PSTART))
            .expect("pstart");
        ctx.devio_write(self.dev, dregs::PSTOP, u32::from(PSTOP))
            .expect("pstop");
        ctx.devio_write(self.dev, dregs::BNRY, u32::from(PSTART))
            .expect("bnry");
        ctx.devio_write(self.dev, dregs::CURR, u32::from(PSTART))
            .expect("curr");
        ctx.devio_write(self.dev, dregs::TPSR, u32::from(TX_PAGE))
            .expect("tpsr");
        ctx.devio_write(self.dev, dregs::IMR, 0xFF).expect("imr");
        self.bnry = PSTART;
        ctx.trace(TraceLevel::Info, "dp8390 reset complete".to_string());
    }

    fn request(&mut self, ctx: &mut Ctx<'_>, call: CallId, msg: &Message) {
        use dp8390::{cr as dcr, rcr as drcr, regs as dregs};
        match msg.mtype {
            eth::INIT => {
                self.client = Some(msg.source);
                let ok = ctx.devio_write(self.dev, dregs::RCR, drcr::PRO).is_ok()
                    && ctx.devio_write(self.dev, dregs::CR, dcr::STA).is_ok();
                let st = if ok { status::OK } else { status::EIO };
                let _ = ctx.reply(call, Message::new(eth::INIT_REPLY).with_param(0, st));
            }
            eth::WRITE => {
                let frame = msg.data.clone();
                if frame.is_empty() || frame.len() > MAX_FRAME {
                    let _ = ctx.reply(
                        call,
                        Message::new(eth::WRITE_REPLY).with_param(0, status::EINVAL),
                    );
                    return;
                }
                let ok = self.tx_routine.run(ctx, MAX_FRAME + 16, |vm| {
                    vm.mem[0..frame.len()].copy_from_slice(&frame);
                    vm.regs[routines::reg::A0 as usize] = frame.len() as u32;
                    vm.regs[routines::reg::A1 as usize] =
                        frame.len().min(routines::HEADER_SUM_BYTES) as u32;
                });
                if ok.is_none() {
                    return;
                }
                // Remote-DMA the frame into the tx pages, then launch.
                let _ = ctx.devio_write(self.dev, dregs::RSAR0, u32::from(TX_PAGE) * 256);
                let _ = ctx.devio_write(self.dev, dregs::RSAR1, 0);
                let _ = ctx.devio_write(self.dev, dregs::RBCR0, (frame.len() & 0xFF) as u32);
                let _ = ctx.devio_write(self.dev, dregs::RBCR1, (frame.len() >> 8) as u32);
                let _ = ctx.devio_write(self.dev, dregs::CR, dcr::STA | dcr::RD_WRITE);
                let _ = ctx.devio_write_block(self.dev, dregs::DATA, &frame);
                let _ = ctx.devio_write(self.dev, dregs::TBCR0, (frame.len() & 0xFF) as u32);
                let _ = ctx.devio_write(self.dev, dregs::TBCR1, (frame.len() >> 8) as u32);
                let ok = ctx
                    .devio_write(self.dev, dregs::CR, dcr::STA | dcr::TXP)
                    .is_ok();
                let st = if ok { status::OK } else { status::EIO };
                let _ = ctx.reply(call, Message::new(eth::WRITE_REPLY).with_param(0, st));
            }
            eth::GET_STAT => {
                let _ = ctx.reply(call, Message::new(eth::STAT_REPLY));
            }
            _ => {
                let _ = ctx.reply(
                    call,
                    Message::new(eth::WRITE_REPLY).with_param(0, status::EINVAL),
                );
            }
        }
    }

    fn irq(&mut self, ctx: &mut Ctx<'_>) {
        use dp8390::{isr as disr, regs as dregs};
        let isr = ctx.devio_read(self.dev, dregs::ISR).unwrap_or(0);
        let _ = ctx.devio_write(self.dev, dregs::ISR, isr);
        if isr & disr::PRX != 0 {
            self.drain_ring(ctx);
        }
    }
}
