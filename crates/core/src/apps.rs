//! Workload applications.
//!
//! These are the `wget`, `dd`, printer-daemon, MP3-player and CD-burner
//! programs the paper's evaluation and examples are built around. Each app
//! shares an observable state cell with the harness (single-threaded
//! simulation, so `Rc<RefCell<..>>`).

use std::cell::RefCell;
use std::rc::Rc;

use phoenix_ckpt::proto::{reply_ack, tag_request};
use phoenix_ckpt::WriteAheadLog;
use phoenix_drivers::proto::{cdev, status};
use phoenix_kernel::process::{ProcEvent, Process};
use phoenix_kernel::system::Ctx;
use phoenix_kernel::types::{Endpoint, Message};
use phoenix_servers::proto::{evidence, fs, pack_endpoint, rs as rsp, sock};
use phoenix_servers::vfs::DRIVER_DIED_PARAM;
use phoenix_simcore::digest::{Md5, Sha1};
use phoenix_simcore::time::{SimDuration, SimTime};
use phoenix_simcore::trace::TraceLevel;

/// Shared observable state of a [`Wget`] download.
#[derive(Debug, Default)]
pub struct WgetStatus {
    /// Bytes received so far.
    pub bytes: u64,
    /// Download complete (FIN received).
    pub done: bool,
    /// MD5 of the received stream (set when done).
    pub md5: Option<String>,
    /// Virtual time of the last data arrival.
    pub last_data_at: Option<SimTime>,
    /// Data-flow gaps larger than the gap threshold: `(start, length)`.
    pub gaps: Vec<(SimTime, SimDuration)>,
    /// Completion time.
    pub finished_at: Option<SimTime>,
    /// Recovery-aware mode only: reissued connects/requests after a
    /// server failure.
    pub retries: u64,
    /// Recovery-aware mode only: garbled-reply complaints filed with RS.
    pub complaints: u64,
}

/// `wget`: downloads `size` bytes over a reliable stream and MD5-sums them
/// (Fig. 7).
pub struct Wget {
    inet: Endpoint,
    size: u64,
    content_seed: u64,
    conn: Option<u64>,
    md5: Md5,
    status: Rc<RefCell<WgetStatus>>,
    gap_threshold: SimDuration,
    /// Recovery-aware mode: where to file complaints about garbled INET
    /// replies (`None` = the paper's recovery-unaware baseline, which
    /// simply wedges when its server fails silently).
    rs: Option<Endpoint>,
    /// The GET request was acknowledged; data flow resumes by itself
    /// after a server microreboot, no reissue needed.
    request_acked: bool,
}

impl Wget {
    /// Creates the app; observe progress through `status`.
    pub fn new(
        inet: Endpoint,
        size: u64,
        content_seed: u64,
        status: Rc<RefCell<WgetStatus>>,
    ) -> Self {
        Wget {
            inet,
            size,
            content_seed,
            conn: None,
            md5: Md5::new(),
            status,
            gap_threshold: SimDuration::from_millis(50),
            rs: None,
            request_acked: false,
        }
    }

    /// Makes the download survive INET microreboots: aborted or
    /// error-status calls are reissued, and garbled replies are reported
    /// to RS as `BAD_REPLY` evidence before retrying.
    pub fn recovery_aware(mut self, rs: Endpoint) -> Self {
        self.rs = Some(rs);
        self
    }

    fn complain(&mut self, ctx: &mut Ctx<'_>, accused: Endpoint) {
        let Some(rs) = self.rs else { return };
        let (s, g) = pack_endpoint(accused);
        let _ = ctx.sendrec(
            rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(evidence::BAD_REPLY))
                .with_param(1, s)
                .with_param(2, g)
                .with_data(b"inet".to_vec()),
        );
        self.status.borrow_mut().complaints += 1;
    }

    /// Reissues whatever call the download is blocked on. The connection
    /// handle survives a microreboot (INET's session slab is
    /// externalized), so only the not-yet-acknowledged step is redone.
    /// During the dead window the sendrec itself fails synchronously, so
    /// a retry alarm keeps knocking until the sticky slot routes
    /// somewhere live.
    fn resume(&mut self, ctx: &mut Ctx<'_>) {
        if self.status.borrow().done {
            return;
        }
        self.status.borrow_mut().retries += 1;
        let sent = match self.conn {
            None => ctx.sendrec(self.inet, Message::new(sock::CONNECT)).is_ok(),
            Some(conn) if !self.request_acked => {
                let req = format!("GET {} {}", self.size, self.content_seed);
                ctx.sendrec(
                    self.inet,
                    Message::new(sock::SEND)
                        .with_param(0, conn)
                        .with_data(req.into_bytes()),
                )
                .is_ok()
            }
            Some(_) => true,
        };
        if !sent {
            let _ = ctx.set_alarm(SimDuration::from_millis(50), 0);
        }
    }
}

impl Process for Wget {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let _ = ctx.sendrec(self.inet, Message::new(sock::CONNECT));
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if reply.mtype == sock::CONNECT_REPLY && reply.param(0) == 0 => {
                let conn = reply.param(1);
                self.conn = Some(conn);
                let req = format!("GET {} {}", self.size, self.content_seed);
                let _ = ctx.sendrec(
                    self.inet,
                    Message::new(sock::SEND)
                        .with_param(0, conn)
                        .with_data(req.into_bytes()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if reply.mtype == sock::ACK => {
                if reply.param(0) == 0 {
                    self.request_acked = true;
                } else if self.rs.is_some() {
                    // The restored session slab does not know this
                    // connection (it died before the first quiescent-point
                    // save): start the download over.
                    self.conn = None;
                    self.request_acked = false;
                    self.resume(ctx);
                }
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if reply.mtype == rsp::ACK => {
                // RS acknowledged a complaint; nothing to do.
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } if self.rs.is_some() => {
                if reply.mtype == sock::CONNECT_REPLY {
                    // Error-status connect: reissue.
                    self.resume(ctx);
                } else {
                    // A reply type this app never asked for: fail-silent
                    // evidence against the incarnation that sent it.
                    self.complain(ctx, reply.source);
                    self.resume(ctx);
                }
            }
            ProcEvent::Reply { result: Err(_), .. } if self.rs.is_some() => {
                // The call was aborted by the server's death; reissue once
                // the sticky slot routes to the replacement incarnation.
                self.resume(ctx);
            }
            ProcEvent::Alarm { .. } if self.rs.is_some() => {
                // Retry knock from the dead window.
                self.resume(ctx);
            }
            ProcEvent::Message(msg) if msg.mtype == sock::DATA => {
                self.md5.update(&msg.data);
                let now = ctx.now();
                let mut st = self.status.borrow_mut();
                if let Some(prev) = st.last_data_at {
                    let gap = now.since(prev);
                    if gap >= self.gap_threshold {
                        st.gaps.push((prev, gap));
                    }
                }
                st.last_data_at = Some(now);
                st.bytes += msg.data.len() as u64;
            }
            ProcEvent::Message(msg) if msg.mtype == sock::CLOSED => {
                let mut st = self.status.borrow_mut();
                st.done = true;
                st.finished_at = Some(ctx.now());
                st.md5 = Some(self.md5.clone().finish_hex());
                ctx.trace(
                    TraceLevel::Info,
                    format!("wget complete: {} bytes", st.bytes),
                );
            }
            ProcEvent::Message(msg) if self.rs.is_some() => {
                // A push of a type this app cannot parse: garbled stream
                // traffic from a corrupting server.
                self.complain(ctx, msg.source);
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`Dd`] run.
#[derive(Debug, Default)]
pub struct DdStatus {
    /// Bytes read so far.
    pub bytes: u64,
    /// Read complete.
    pub done: bool,
    /// SHA-1 of the data (set when done).
    pub sha1: Option<String>,
    /// Completion time.
    pub finished_at: Option<SimTime>,
    /// I/O errors observed (should stay 0: block recovery is transparent).
    pub errors: u64,
    /// Recovery-aware mode only: reads/opens reissued at the same offset
    /// after a server failure (progress is never lost, so the SHA-1 stays
    /// byte-exact across microreboots).
    pub retries: u64,
    /// Recovery-aware mode only: garbled-reply complaints filed with RS.
    pub complaints: u64,
}

/// `dd`: sequentially reads a file through VFS/MFS in fixed-size chunks
/// and pipes it into `sha1sum` (Fig. 8).
pub struct Dd {
    vfs: Endpoint,
    path: String,
    chunk: u64,
    ino: Option<u64>,
    size: u64,
    offset: u64,
    /// Which mounted file server the handle belongs to (0 = root/MFS,
    /// 1 = the `/fat/` mount).
    fs_id: u64,
    sha1: Sha1,
    status: Rc<RefCell<DdStatus>>,
    /// Recovery-aware mode: where to file complaints about garbled VFS
    /// replies (`None` = recovery-unaware baseline).
    rs: Option<Endpoint>,
}

impl Dd {
    /// Creates the app reading `path` in `chunk`-byte reads. Paths under
    /// `/fat/` read from the FAT mount.
    pub fn new(vfs: Endpoint, path: &str, chunk: u64, status: Rc<RefCell<DdStatus>>) -> Self {
        Dd {
            vfs,
            path: path.to_string(),
            chunk,
            ino: None,
            size: 0,
            offset: 0,
            fs_id: u64::from(path.starts_with("/fat/")),
            sha1: Sha1::new(),
            status,
            rs: None,
        }
    }

    /// Makes the read survive VFS/MFS microreboots: aborted or
    /// error-status calls are reissued at the *same* offset (so the SHA-1
    /// stays byte-exact), and garbled replies are reported to RS as
    /// `BAD_REPLY` evidence before retrying.
    pub fn recovery_aware(mut self, rs: Endpoint) -> Self {
        self.rs = Some(rs);
        self
    }

    fn complain(&mut self, ctx: &mut Ctx<'_>, accused: Endpoint) {
        let Some(rs) = self.rs else { return };
        let (s, g) = pack_endpoint(accused);
        let _ = ctx.sendrec(
            rs,
            Message::new(rsp::COMPLAIN)
                .with_param(0, u64::from(evidence::BAD_REPLY))
                .with_param(1, s)
                .with_param(2, g)
                .with_data(b"vfs".to_vec()),
        );
        self.status.borrow_mut().complaints += 1;
    }

    /// Reissues whatever call the read is blocked on: the OPEN if no
    /// handle exists yet, otherwise the READ at the unchanged offset.
    /// During the dead window — the old incarnation is gone, the
    /// replacement not yet spawned — the sendrec itself fails
    /// synchronously, so a retry alarm keeps knocking until the sticky
    /// slot routes somewhere live.
    fn resume(&mut self, ctx: &mut Ctx<'_>) {
        if self.status.borrow().done {
            return;
        }
        self.status.borrow_mut().retries += 1;
        let sent = if self.ino.is_some() {
            self.next_read(ctx)
        } else {
            let path = self.path.clone();
            ctx.sendrec(
                self.vfs,
                Message::new(fs::OPEN).with_data(path.into_bytes()),
            )
            .is_ok()
        };
        if !sent {
            let _ = ctx.set_alarm(SimDuration::from_millis(50), 0);
        }
    }

    fn next_read(&mut self, ctx: &mut Ctx<'_>) -> bool {
        let ino = self.ino.expect("opened");
        let want = self.chunk.min(self.size - self.offset);
        ctx.sendrec(
            self.vfs,
            Message::new(fs::READ)
                .with_param(0, ino)
                .with_param(1, self.offset)
                .with_param(2, want)
                .with_param(7, self.fs_id),
        )
        .is_ok()
    }
}

impl Process for Dd {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let path = self.path.clone();
                let _ = ctx.sendrec(
                    self.vfs,
                    Message::new(fs::OPEN).with_data(path.into_bytes()),
                );
            }
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match reply.mtype {
                fs::OPEN_REPLY => {
                    if reply.param(0) == status::OK {
                        self.ino = Some(reply.param(1));
                        self.size = reply.param(2);
                        if self.size == 0 {
                            let mut st = self.status.borrow_mut();
                            st.done = true;
                            st.finished_at = Some(ctx.now());
                            st.sha1 = Some(self.sha1.clone().finish_hex());
                            return;
                        }
                        self.next_read(ctx);
                    } else if self.rs.is_some() {
                        // Error-status open during a server microreboot
                        // (e.g. the mount table is still rehydrating):
                        // reissue rather than give up.
                        self.resume(ctx);
                    } else {
                        self.status.borrow_mut().errors += 1;
                    }
                }
                fs::DATA_REPLY => {
                    if reply.param(0) != status::OK {
                        if self.rs.is_some() {
                            // Same offset, so no bytes are skipped or
                            // double-hashed.
                            self.resume(ctx);
                        } else {
                            self.status.borrow_mut().errors += 1;
                        }
                        return;
                    }
                    self.sha1.update(&reply.data);
                    self.offset += reply.data.len() as u64;
                    let mut st = self.status.borrow_mut();
                    st.bytes = self.offset;
                    if self.offset >= self.size {
                        st.done = true;
                        st.finished_at = Some(ctx.now());
                        st.sha1 = Some(self.sha1.clone().finish_hex());
                        drop(st);
                        ctx.trace(
                            TraceLevel::Info,
                            format!("dd complete: {} bytes", self.offset),
                        );
                    } else {
                        drop(st);
                        self.next_read(ctx);
                    }
                }
                rsp::ACK => {
                    // RS acknowledged a complaint; nothing to do.
                }
                _ => {
                    if self.rs.is_some() {
                        // A reply type this app never asked for: garbled
                        // server output. File the evidence, then retry the
                        // in-flight call (the garbage consumed its reply).
                        self.complain(ctx, reply.source);
                        self.resume(ctx);
                    }
                }
            },
            ProcEvent::Reply { result: Err(_), .. } => {
                if self.rs.is_some() {
                    // The call was aborted by the server's death; reissue
                    // once the sticky slot routes to the replacement.
                    self.resume(ctx);
                } else {
                    // Recovery-unaware baseline: a server death is an I/O
                    // error the application reports to the user.
                    self.status.borrow_mut().errors += 1;
                }
            }
            ProcEvent::Alarm { .. } if self.rs.is_some() => {
                // Retry knock from the dead window.
                self.resume(ctx);
            }
            _ => {}
        }
    }
}

/// Shared observable state of an [`Lpd`] print job.
#[derive(Debug, Default)]
pub struct LpdStatus {
    /// Bytes the printer driver accepted.
    pub accepted: u64,
    /// Whole-job restarts after a driver failure (§6.3: recovery-aware,
    /// duplicates possible).
    pub job_restarts: u64,
    /// The daemon reached a terminal state: job committed, or (for the
    /// recovery-unaware variant) abandoned after a fatal error.
    pub done: bool,
    /// Unrecoverable errors.
    pub fatal: u64,
}

/// A recovery-aware printer daemon: on a driver failure it *reissues the
/// whole job* rather than bothering the user (§6.3) — at the price of
/// possibly duplicated output. The recovery-*unaware* variant
/// ([`Lpd::new_unaware`]) instead gives up and reports the failure, the
/// paper's baseline for applications that were never taught about driver
/// recovery.
pub struct Lpd {
    vfs: Endpoint,
    job: Vec<u8>,
    sent: usize,
    state: LpdState,
    status: Rc<RefCell<LpdStatus>>,
    retry_delay: SimDuration,
    recovery_aware: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LpdState {
    /// OPEN request outstanding.
    Opening,
    /// WRITE request outstanding.
    Writing,
    /// Waiting for the retry alarm, then reopen from scratch.
    BackoffOpen,
    /// Waiting for the FIFO to drain, then write more.
    BackoffWrite,
    /// Job finished.
    Done,
}

const PRINTER_DEV_INDEX: u64 = 0; // /dev/lp in the VFS device table

impl Lpd {
    /// Creates the daemon with one `job` to print.
    pub fn new(vfs: Endpoint, job: Vec<u8>, status: Rc<RefCell<LpdStatus>>) -> Self {
        Lpd {
            vfs,
            job,
            sent: 0,
            state: LpdState::Opening,
            status,
            retry_delay: SimDuration::from_millis(100),
            recovery_aware: true,
        }
    }

    /// Creates a recovery-*unaware* daemon: a driver failure is fatal and
    /// reported to the user instead of retried.
    pub fn new_unaware(vfs: Endpoint, job: Vec<u8>, status: Rc<RefCell<LpdStatus>>) -> Self {
        let mut lpd = Self::new(vfs, job, status);
        lpd.recovery_aware = false;
        lpd
    }

    fn open(&mut self, ctx: &mut Ctx<'_>) {
        self.state = LpdState::Opening;
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(fs::OPEN).with_data(b"/dev/lp".to_vec()),
        );
    }

    fn send_chunk(&mut self, ctx: &mut Ctx<'_>) {
        self.state = LpdState::Writing;
        let chunk = &self.job[self.sent..(self.sent + 1024).min(self.job.len())];
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(cdev::WRITE)
                .with_param(7, PRINTER_DEV_INDEX)
                .with_data(chunk.to_vec()),
        );
    }

    fn restart_job(&mut self, ctx: &mut Ctx<'_>) {
        if !self.recovery_aware {
            // The baseline app: it has no recovery logic, so the driver
            // failure surfaces to the user and the job is abandoned.
            self.state = LpdState::Done;
            let mut st = self.status.borrow_mut();
            st.fatal += 1;
            st.done = true;
            ctx.trace(
                TraceLevel::Error,
                "printer failed; job abandoned, user notified".to_string(),
            );
            return;
        }
        // The driver died: nobody can tell how much of the stream made it
        // to paper, so redo the job from the start after a grace period.
        self.sent = 0;
        self.state = LpdState::BackoffOpen;
        self.status.borrow_mut().job_restarts += 1;
        ctx.trace(
            TraceLevel::Warn,
            "printer failed; reissuing job".to_string(),
        );
        let _ = ctx.set_alarm(self.retry_delay, 0);
    }
}

impl Process for Lpd {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.open(ctx),
            ProcEvent::Alarm { .. } => match self.state {
                LpdState::BackoffOpen => self.open(ctx),
                LpdState::BackoffWrite => self.send_chunk(ctx),
                _ => {}
            },
            ProcEvent::Reply { result: Err(_), .. } => self.restart_job(ctx),
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match self.state {
                LpdState::Opening => {
                    if reply.param(0) == status::OK {
                        self.send_chunk(ctx);
                    } else {
                        // Driver not back yet; try again shortly.
                        self.state = LpdState::BackoffOpen;
                        let _ = ctx.set_alarm(self.retry_delay, 0);
                    }
                }
                LpdState::Writing => match reply.param(0) {
                    status::OK if reply.param(1) > 0 => {
                        let accepted = reply.param(1) as usize;
                        self.sent += accepted;
                        self.status.borrow_mut().accepted += accepted as u64;
                        if self.sent >= self.job.len() {
                            self.state = LpdState::Done;
                            self.status.borrow_mut().done = true;
                            ctx.trace(TraceLevel::Info, "print job done".to_string());
                        } else {
                            self.send_chunk(ctx);
                        }
                    }
                    status::OK | status::EAGAIN => {
                        // Printer FIFO full: wait for it to drain a bit.
                        self.state = LpdState::BackoffWrite;
                        let _ = ctx.set_alarm(SimDuration::from_millis(20), 1);
                    }
                    _ if reply.param(DRIVER_DIED_PARAM) == 1 => self.restart_job(ctx),
                    _ => {
                        self.status.borrow_mut().fatal += 1;
                    }
                },
                _ => {}
            },
            _ => {}
        }
    }
}

/// Shared observable state of an [`Mp3Player`].
#[derive(Debug, Default)]
pub struct Mp3Status {
    /// Sample blocks delivered to the driver.
    pub blocks_played: u64,
    /// Blocks dropped across driver failures ("small hiccups", §6.3).
    pub blocks_dropped: u64,
    /// Playback finished.
    pub done: bool,
}

/// An MP3 player that keeps playing through audio-driver recoveries,
/// accepting hiccups (§6.3).
pub struct Mp3Player {
    vfs: Endpoint,
    blocks_total: u64,
    block_bytes: usize,
    block_period: SimDuration,
    next_block: u64,
    status: Rc<RefCell<Mp3Status>>,
}

const AUDIO_DEV_INDEX: u64 = 1; // /dev/audio in the VFS device table

impl Mp3Player {
    /// Plays `blocks_total` blocks of `block_bytes` bytes, one per
    /// `block_period` (matched to the DAC's consumption rate).
    pub fn new(
        vfs: Endpoint,
        blocks_total: u64,
        block_bytes: usize,
        block_period: SimDuration,
        status: Rc<RefCell<Mp3Status>>,
    ) -> Self {
        Mp3Player {
            vfs,
            blocks_total,
            block_bytes,
            block_period,
            next_block: 0,
            status,
        }
    }

    fn feed(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_block >= self.blocks_total {
            self.status.borrow_mut().done = true;
            ctx.trace(TraceLevel::Info, "playback finished".to_string());
            return;
        }
        let block = vec![(self.next_block & 0xFF) as u8; self.block_bytes];
        self.next_block += 1;
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(cdev::WRITE)
                .with_param(7, AUDIO_DEV_INDEX)
                .with_data(block),
        );
        let _ = ctx.set_alarm(self.block_period, 0);
    }
}

impl Process for Mp3Player {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.feed(ctx),
            ProcEvent::Alarm { .. } => self.feed(ctx),
            ProcEvent::Reply { result, .. } => {
                let ok = matches!(&result, Ok(reply) if reply.param(0) == status::OK);
                let mut st = self.status.borrow_mut();
                if ok {
                    st.blocks_played += 1;
                } else {
                    // Hiccup: the block is gone; keep playing (§6.3).
                    st.blocks_dropped += 1;
                }
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`CdBurn`].
#[derive(Debug, Default)]
pub struct CdBurnStatus {
    /// Chunks written successfully.
    pub chunks_written: u64,
    /// The burn completed and was finalized.
    pub completed: bool,
    /// The burn failed; the user must be told the disc is ruined (§6.3).
    pub reported_to_user: bool,
}

/// A CD burning application. Burning cannot survive a driver failure: on
/// any error the app stops and reports to the user.
pub struct CdBurn {
    vfs: Endpoint,
    chunks: u64,
    chunk_bytes: usize,
    state: BurnState,
    status: Rc<RefCell<CdBurnStatus>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BurnState {
    Starting,
    Writing(u64),
    Finalizing,
    Done,
}

const SCSI_DEV_INDEX: u64 = 2; // /dev/cd in the VFS device table

impl CdBurn {
    /// Burns `chunks` chunks of `chunk_bytes` each.
    pub fn new(
        vfs: Endpoint,
        chunks: u64,
        chunk_bytes: usize,
        status: Rc<RefCell<CdBurnStatus>>,
    ) -> Self {
        CdBurn {
            vfs,
            chunks,
            chunk_bytes,
            state: BurnState::Starting,
            status,
        }
    }

    fn fail(&mut self, ctx: &mut Ctx<'_>) {
        self.state = BurnState::Done;
        self.status.borrow_mut().reported_to_user = true;
        ctx.trace(
            TraceLevel::Error,
            "cd burn failed: disc ruined, user notified".to_string(),
        );
    }
}

impl Process for CdBurn {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => {
                let _ = ctx.sendrec(
                    self.vfs,
                    Message::new(cdev::BURN_START)
                        .with_param(0, self.chunks)
                        .with_param(7, SCSI_DEV_INDEX),
                );
            }
            ProcEvent::Reply { result, .. } => {
                let ok = matches!(&result, Ok(reply) if reply.param(0) == status::OK);
                if !ok {
                    self.fail(ctx);
                    return;
                }
                match self.state {
                    BurnState::Starting => {
                        self.state = BurnState::Writing(0);
                        let chunk = vec![0xCD; self.chunk_bytes];
                        let _ = ctx.sendrec(
                            self.vfs,
                            Message::new(cdev::BURN_CHUNK)
                                .with_param(0, 0)
                                .with_param(7, SCSI_DEV_INDEX)
                                .with_data(chunk),
                        );
                    }
                    BurnState::Writing(seq) => {
                        self.status.borrow_mut().chunks_written = seq + 1;
                        let next = seq + 1;
                        if next >= self.chunks {
                            self.state = BurnState::Finalizing;
                            let _ = ctx.sendrec(
                                self.vfs,
                                Message::new(cdev::BURN_FINALIZE).with_param(7, SCSI_DEV_INDEX),
                            );
                        } else {
                            self.state = BurnState::Writing(next);
                            let chunk = vec![0xCD; self.chunk_bytes];
                            let _ = ctx.sendrec(
                                self.vfs,
                                Message::new(cdev::BURN_CHUNK)
                                    .with_param(0, next)
                                    .with_param(7, SCSI_DEV_INDEX)
                                    .with_data(chunk),
                            );
                        }
                    }
                    BurnState::Finalizing => {
                        self.state = BurnState::Done;
                        self.status.borrow_mut().completed = true;
                        ctx.trace(TraceLevel::Info, "cd burn complete".to_string());
                    }
                    BurnState::Done => {}
                }
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`UdpPing`] app.
#[derive(Debug, Default)]
pub struct UdpStatus {
    /// Datagrams sent (including application-level resends).
    pub sent: u64,
    /// Distinct sequence numbers acknowledged by echo.
    pub echoed: u64,
    /// Application-level resends of unacknowledged datagrams (Fig. 4's
    /// "UDP recovery" at the application layer).
    pub resent: u64,
    /// Target sequence count reached.
    pub done: bool,
}

/// An application using unreliable datagrams with its *own* recovery: it
/// resends datagrams whose echo never arrived, demonstrating
/// application-level UDP recovery (Fig. 4).
pub struct UdpPing {
    inet: Endpoint,
    total: u64,
    period: SimDuration,
    next_seq: u64,
    acked: Vec<bool>,
    status: Rc<RefCell<UdpStatus>>,
}

impl UdpPing {
    /// Sends `total` datagrams, one per `period`, resending unacked ones.
    pub fn new(
        inet: Endpoint,
        total: u64,
        period: SimDuration,
        status: Rc<RefCell<UdpStatus>>,
    ) -> Self {
        UdpPing {
            inet,
            total,
            period,
            next_seq: 0,
            acked: vec![false; total as usize],
            status,
        }
    }

    fn send_seq(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let payload = seq.to_le_bytes().to_vec();
        let _ = ctx.sendrec(
            self.inet,
            Message::new(sock::DGRAM_SEND)
                .with_param(1, seq)
                .with_data(payload),
        );
        self.status.borrow_mut().sent += 1;
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_seq < self.total {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_seq(ctx, seq);
        } else {
            // All first attempts out: application-level recovery resends
            // the ones whose echoes were lost during driver outages.
            if let Some(seq) = self.acked.iter().position(|&a| !a) {
                self.status.borrow_mut().resent += 1;
                self.send_seq(ctx, seq as u64);
            } else {
                self.status.borrow_mut().done = true;
                return;
            }
        }
        let _ = ctx.set_alarm(self.period, 0);
    }
}

impl Process for UdpPing {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start | ProcEvent::Alarm { .. } => self.tick(ctx),
            ProcEvent::Message(msg) if msg.mtype == sock::DGRAM_DATA && msg.data.len() == 8 => {
                let seq = u64::from_le_bytes(msg.data[..8].try_into().expect("8 bytes"));
                if let Some(slot) = self.acked.get_mut(seq as usize) {
                    if !*slot {
                        *slot = true;
                        self.status.borrow_mut().echoed += 1;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`TtyReader`].
#[derive(Debug, Default)]
pub struct TtyStatus {
    /// Every byte the application received, in order.
    pub received: Vec<u8>,
    /// Driver-died errors observed while polling.
    pub driver_errors: u64,
}

/// A terminal reader polling `/dev/kbd` (§6.3's input case).
///
/// Input that the keyboard driver drained from the hardware FIFO but had
/// not yet delivered when it crashed is *gone* — the reader observes a gap
/// in the stream and simply keeps reading after recovery.
pub struct TtyReader {
    vfs: Endpoint,
    poll: SimDuration,
    status: Rc<RefCell<TtyStatus>>,
}

const KBD_DEV_INDEX: u64 = 3; // /dev/kbd in the VFS device table

impl TtyReader {
    /// Creates a reader polling every `poll`.
    pub fn new(vfs: Endpoint, poll: SimDuration, status: Rc<RefCell<TtyStatus>>) -> Self {
        TtyReader { vfs, poll, status }
    }

    fn read(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(cdev::READ)
                .with_param(0, 256)
                .with_param(7, KBD_DEV_INDEX),
        );
    }
}

impl Process for TtyReader {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.read(ctx),
            ProcEvent::Alarm { .. } => self.read(ctx),
            ProcEvent::Reply { result, .. } => {
                match result {
                    Ok(reply) if reply.param(0) == status::OK => {
                        self.status
                            .borrow_mut()
                            .received
                            .extend_from_slice(&reply.data);
                    }
                    _ => {
                        // Driver dead or erroring: note it and keep polling
                        // — the stream resumes after recovery (§6.3).
                        self.status.borrow_mut().driver_errors += 1;
                    }
                }
                let _ = ctx.set_alarm(self.poll, 0);
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`CkptLpd`].
#[derive(Debug, Default)]
pub struct CkptLpdStatus {
    /// Bytes of the job appended to the write-ahead log.
    pub appended: u64,
    /// Bytes the driver has acknowledged as committed to the device.
    pub acked: u64,
    /// Driver failures survived by replaying from the log (no job
    /// restart, no duplicate output).
    pub replays: u64,
    /// Errors that surfaced to the application anyway.
    pub app_errors: u64,
    /// The whole job is committed.
    pub done: bool,
}

/// A checkpoint-aware printer daemon: the job lives in a caller-held
/// write-ahead log, every WRITE is tagged with its log sequence and
/// absolute stream offset, and the driver's consumed-progress
/// acknowledgment advances the log. When the driver dies the daemon
/// replays from the first unacknowledged entry — the restarted driver's
/// restored watermark deduplicates anything that already reached the
/// device, so the printed stream is byte-exact: no duplicated page, no
/// lost line (contrast with [`Lpd`], which reissues the whole job).
pub struct CkptLpd {
    vfs: Endpoint,
    wal: WriteAheadLog,
    state: CkptLpdState,
    status: Rc<RefCell<CkptLpdStatus>>,
    retry_delay: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CkptLpdState {
    /// OPEN request outstanding.
    Opening,
    /// Logged WRITE outstanding.
    Writing,
    /// Waiting out a driver recovery, then reopen and replay.
    BackoffOpen,
    /// Waiting for the FIFO to drain, then resend the unacked entry.
    BackoffWrite,
    /// Job fully committed.
    Done,
}

impl CkptLpd {
    /// Creates the daemon; `job` is chunked into the write-ahead log up
    /// front.
    pub fn new(vfs: Endpoint, job: Vec<u8>, status: Rc<RefCell<CkptLpdStatus>>) -> Self {
        let mut wal = WriteAheadLog::new();
        for chunk in job.chunks(1024) {
            wal.append(chunk.to_vec());
        }
        status.borrow_mut().appended = wal.appended();
        CkptLpd {
            vfs,
            wal,
            state: CkptLpdState::Opening,
            status,
            retry_delay: SimDuration::from_millis(100),
        }
    }

    fn open(&mut self, ctx: &mut Ctx<'_>) {
        self.state = CkptLpdState::Opening;
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(fs::OPEN).with_data(b"/dev/lp".to_vec()),
        );
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        let Some(entry) = self.wal.next_unacked() else {
            self.state = CkptLpdState::Done;
            self.status.borrow_mut().done = true;
            ctx.trace(
                TraceLevel::Info,
                "print job committed byte-exact".to_string(),
            );
            return;
        };
        let msg = tag_request(
            Message::new(cdev::WRITE)
                .with_param(7, PRINTER_DEV_INDEX)
                .with_data(entry.data.clone()),
            entry.seq,
            entry.offset,
        );
        self.state = CkptLpdState::Writing;
        let _ = ctx.sendrec(self.vfs, msg);
    }

    fn replay(&mut self, ctx: &mut Ctx<'_>) {
        // The driver died mid-request. The log knows exactly what is
        // unacknowledged; wait out the restart, then replay from there.
        self.status.borrow_mut().replays += 1;
        self.state = CkptLpdState::BackoffOpen;
        ctx.trace(
            TraceLevel::Warn,
            "printer failed; replaying write-ahead log".to_string(),
        );
        let _ = ctx.set_alarm(self.retry_delay, 0);
    }
}

impl Process for CkptLpd {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.open(ctx),
            ProcEvent::Alarm { .. } => match self.state {
                CkptLpdState::BackoffOpen => self.open(ctx),
                CkptLpdState::BackoffWrite => self.send_next(ctx),
                _ => {}
            },
            ProcEvent::Reply { result: Err(_), .. } => self.replay(ctx),
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match self.state {
                CkptLpdState::Opening => {
                    if reply.param(0) == status::OK {
                        self.send_next(ctx);
                    } else {
                        // Driver not republished yet; try again shortly.
                        self.state = CkptLpdState::BackoffOpen;
                        let _ = ctx.set_alarm(self.retry_delay, 0);
                    }
                }
                CkptLpdState::Writing => {
                    if reply.param(DRIVER_DIED_PARAM) == 1 {
                        self.replay(ctx);
                        return;
                    }
                    let before = self.wal.acked();
                    if let Some((consumed, _seq)) = reply_ack(&reply) {
                        self.wal.ack(consumed);
                        self.status.borrow_mut().acked = self.wal.acked();
                    }
                    match reply.param(0) {
                        status::OK if self.wal.acked() > before => self.send_next(ctx),
                        status::OK | status::EAGAIN => {
                            // FIFO full: wait for it to drain a bit.
                            self.state = CkptLpdState::BackoffWrite;
                            let _ = ctx.set_alarm(SimDuration::from_millis(20), 1);
                        }
                        _ => {
                            self.status.borrow_mut().app_errors += 1;
                            self.state = CkptLpdState::BackoffWrite;
                            let _ = ctx.set_alarm(self.retry_delay, 1);
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
}

/// Shared observable state of a [`CkptMp3Player`].
#[derive(Debug, Default)]
pub struct CkptMp3Status {
    /// Sample blocks appended to the write-ahead log.
    pub appended_blocks: u64,
    /// Bytes the driver has acknowledged as queued to the DAC.
    pub acked: u64,
    /// Driver failures survived by replaying from the log.
    pub replays: u64,
    /// Errors that surfaced to the application anyway.
    pub app_errors: u64,
    /// Every block is committed.
    pub done: bool,
}

/// A checkpoint-aware MP3 player: sample blocks are paced into a
/// write-ahead log and drained to the driver with sequence/offset tags.
/// Across a driver failure it replays unacknowledged blocks instead of
/// dropping them — the restored watermark deduplicates, so playback
/// resumes exactly past the last sample the DAC consumed (contrast with
/// [`Mp3Player`], which accepts hiccups).
pub struct CkptMp3Player {
    vfs: Endpoint,
    blocks_total: u64,
    block_bytes: usize,
    block_period: SimDuration,
    wal: WriteAheadLog,
    appended: u64,
    in_flight: bool,
    status: Rc<RefCell<CkptMp3Status>>,
}

impl CkptMp3Player {
    /// Plays `blocks_total` blocks of `block_bytes` bytes, one appended
    /// per `block_period` (matched to the DAC's consumption rate).
    pub fn new(
        vfs: Endpoint,
        blocks_total: u64,
        block_bytes: usize,
        block_period: SimDuration,
        status: Rc<RefCell<CkptMp3Status>>,
    ) -> Self {
        CkptMp3Player {
            vfs,
            blocks_total,
            block_bytes,
            block_period,
            wal: WriteAheadLog::new(),
            appended: 0,
            in_flight: false,
            status,
        }
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        if self.in_flight {
            return;
        }
        let Some(entry) = self.wal.next_unacked() else {
            if self.appended >= self.blocks_total {
                let mut st = self.status.borrow_mut();
                if !st.done {
                    st.done = true;
                    ctx.trace(
                        TraceLevel::Info,
                        "playback committed byte-exact".to_string(),
                    );
                }
            }
            return;
        };
        let msg = tag_request(
            Message::new(cdev::WRITE)
                .with_param(7, AUDIO_DEV_INDEX)
                .with_data(entry.data.clone()),
            entry.seq,
            entry.offset,
        );
        self.in_flight = ctx.sendrec(self.vfs, msg).is_ok();
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.appended < self.blocks_total {
            let block = vec![(self.appended & 0xFF) as u8; self.block_bytes];
            self.appended += 1;
            self.wal.append(block);
            self.status.borrow_mut().appended_blocks = self.appended;
            let _ = ctx.set_alarm(self.block_period, 0);
        } else if !self.wal.is_drained() {
            // All blocks are in the log; keep ticking until the driver
            // has acknowledged every one (it may be mid-restart).
            let _ = ctx.set_alarm(self.block_period, 0);
        }
        self.pump(ctx);
    }
}

impl Process for CkptMp3Player {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start | ProcEvent::Alarm { .. } => self.tick(ctx),
            ProcEvent::Reply { result, .. } => {
                self.in_flight = false;
                match result {
                    Ok(reply) if reply.param(0) == status::OK => {
                        if let Some((consumed, _seq)) = reply_ack(&reply) {
                            self.wal.ack(consumed);
                            self.status.borrow_mut().acked = self.wal.acked();
                        }
                        self.pump(ctx);
                    }
                    Ok(reply) if reply.param(DRIVER_DIED_PARAM) == 1 => {
                        // Replayed on a later tick, once the driver is back.
                        self.status.borrow_mut().replays += 1;
                    }
                    Err(_) => {
                        self.status.borrow_mut().replays += 1;
                    }
                    Ok(_) => {
                        self.status.borrow_mut().app_errors += 1;
                    }
                }
            }
            _ => {}
        }
    }
}

/// Shared observable state of a [`DdLoop`].
#[derive(Debug, Default)]
pub struct DdLoopStatus {
    /// Total bytes read across all passes.
    pub bytes: u64,
    /// Completed full-file passes.
    pub passes: u64,
    /// I/O errors surfaced to the app (sentinel-rejected transfers,
    /// server deaths); the loop retries after each one.
    pub errors: u64,
}

/// Endless sequential reader: like [`Dd`] but wraps to offset 0 after
/// each pass and retries after errors instead of stopping — the
/// block-class traffic source of the fail-silent campaign, where the
/// *rate of progress* (not completion) is the liveness signal.
pub struct DdLoop {
    vfs: Endpoint,
    path: String,
    chunk: u64,
    ino: Option<u64>,
    size: u64,
    offset: u64,
    status: Rc<RefCell<DdLoopStatus>>,
}

impl DdLoop {
    /// Creates the looping reader over `path` in `chunk`-byte reads.
    pub fn new(vfs: Endpoint, path: &str, chunk: u64, status: Rc<RefCell<DdLoopStatus>>) -> Self {
        DdLoop {
            vfs,
            path: path.to_string(),
            chunk,
            ino: None,
            size: 0,
            offset: 0,
            status,
        }
    }

    fn open(&mut self, ctx: &mut Ctx<'_>) {
        self.ino = None;
        let path = self.path.clone();
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(fs::OPEN).with_data(path.into_bytes()),
        );
    }

    fn next_read(&mut self, ctx: &mut Ctx<'_>) {
        let Some(ino) = self.ino else { return };
        let want = self.chunk.min(self.size - self.offset);
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(fs::READ)
                .with_param(0, ino)
                .with_param(1, self.offset)
                .with_param(2, want),
        );
    }

    fn backoff(&mut self, ctx: &mut Ctx<'_>) {
        self.status.borrow_mut().errors += 1;
        let _ = ctx.set_alarm(SimDuration::from_millis(100), 0);
    }
}

impl Process for DdLoop {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.open(ctx),
            ProcEvent::Alarm { .. } => self.open(ctx),
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match reply.mtype {
                fs::OPEN_REPLY => {
                    if reply.param(0) == status::OK && reply.param(2) > 0 {
                        self.ino = Some(reply.param(1));
                        self.size = reply.param(2);
                        self.offset = 0;
                        self.next_read(ctx);
                    } else {
                        self.backoff(ctx);
                    }
                }
                fs::DATA_REPLY => {
                    if reply.param(0) != status::OK || reply.data.is_empty() {
                        self.backoff(ctx);
                        return;
                    }
                    self.offset += reply.data.len() as u64;
                    {
                        let mut st = self.status.borrow_mut();
                        st.bytes += reply.data.len() as u64;
                        if self.offset >= self.size {
                            st.passes += 1;
                        }
                    }
                    if self.offset >= self.size {
                        self.offset = 0;
                    }
                    self.next_read(ctx);
                }
                _ => self.backoff(ctx),
            },
            ProcEvent::Reply { result: Err(_), .. } => self.backoff(ctx),
            _ => {}
        }
    }
}

/// Shared observable state of an [`LpdLoop`].
#[derive(Debug, Default)]
pub struct LpdLoopStatus {
    /// Bytes the printer driver accepted.
    pub accepted: u64,
    /// Errors surfaced to the app; the loop reopens and retries.
    pub errors: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LpdLoopState {
    Opening,
    Writing,
    BackoffOpen,
    BackoffWrite,
}

/// Endless printer feeder: writes a fixed chunk to `/dev/lp` forever,
/// backing off on a full FIFO and reopening after errors or driver
/// deaths — the char-class traffic source of the fail-silent campaign.
pub struct LpdLoop {
    vfs: Endpoint,
    chunk: Vec<u8>,
    state: LpdLoopState,
    status: Rc<RefCell<LpdLoopStatus>>,
}

impl LpdLoop {
    /// Creates the feeder writing `chunk` repeatedly.
    pub fn new(vfs: Endpoint, chunk: Vec<u8>, status: Rc<RefCell<LpdLoopStatus>>) -> Self {
        LpdLoop {
            vfs,
            chunk,
            state: LpdLoopState::Opening,
            status,
        }
    }

    fn open(&mut self, ctx: &mut Ctx<'_>) {
        self.state = LpdLoopState::Opening;
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(fs::OPEN).with_data(b"/dev/lp".to_vec()),
        );
    }

    fn write(&mut self, ctx: &mut Ctx<'_>) {
        self.state = LpdLoopState::Writing;
        let _ = ctx.sendrec(
            self.vfs,
            Message::new(cdev::WRITE)
                .with_param(7, PRINTER_DEV_INDEX)
                .with_data(self.chunk.clone()),
        );
    }

    fn reopen_later(&mut self, ctx: &mut Ctx<'_>) {
        self.state = LpdLoopState::BackoffOpen;
        self.status.borrow_mut().errors += 1;
        let _ = ctx.set_alarm(SimDuration::from_millis(100), 0);
    }
}

impl Process for LpdLoop {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: ProcEvent) {
        match event {
            ProcEvent::Start => self.open(ctx),
            ProcEvent::Alarm { .. } => match self.state {
                LpdLoopState::BackoffOpen => self.open(ctx),
                LpdLoopState::BackoffWrite => self.write(ctx),
                _ => {}
            },
            ProcEvent::Reply { result: Err(_), .. } => self.reopen_later(ctx),
            ProcEvent::Reply {
                result: Ok(reply), ..
            } => match self.state {
                LpdLoopState::Opening => {
                    if reply.param(0) == status::OK {
                        self.write(ctx);
                    } else {
                        self.state = LpdLoopState::BackoffOpen;
                        let _ = ctx.set_alarm(SimDuration::from_millis(100), 0);
                    }
                }
                LpdLoopState::Writing => match reply.param(0) {
                    status::OK if reply.param(1) > 0 => {
                        self.status.borrow_mut().accepted += reply.param(1);
                        self.write(ctx);
                    }
                    status::OK | status::EAGAIN => {
                        // FIFO full: wait for it to drain a bit.
                        self.state = LpdLoopState::BackoffWrite;
                        let _ = ctx.set_alarm(SimDuration::from_millis(20), 1);
                    }
                    _ => self.reopen_later(ctx),
                },
                _ => {}
            },
            _ => {}
        }
    }
}
